"""Ablation: account-pool size vs collection completeness.

The full packed plan needs ~2,154 unique queries per rolling 24 hours
against a 50-unique-query per-account quota.  This bench shows the failed
query count as the pool grows from starved to sufficient.
"""

from repro import AccountPool, SimulatedCloud
from repro.core import SpotLakeArchive, SpsCollector, plan_for_offering_map


def test_ablation_account_pool(benchmark):
    cloud = SimulatedCloud(seed=0)
    # a quarter-catalog slice keeps the bench quick but over-quota for one
    # account
    offering = dict(list(cloud.catalog.offering_map().items())[:140])
    plan = plan_for_offering_map(offering)
    needed = AccountPool.size_for(plan.optimized_query_count)
    print(f"\nAblation: account pool sizing "
          f"({plan.optimized_query_count} unique queries, quota 50/account, "
          f"{needed} accounts needed)")

    outcomes = {}

    def run_sweep():
        for size in (1, max(1, needed // 2), needed):
            pool = AccountPool(size)
            collector = SpsCollector(cloud, SpotLakeArchive(), pool, plan)
            outcomes[size] = collector.collect()
        return outcomes

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print(f"  {'accounts':>9s} {'issued':>8s} {'failed':>8s} {'written':>9s}")
    for size, report in sorted(outcomes.items()):
        print(f"  {size:9d} {report.queries_issued:8d} "
              f"{report.queries_failed:8d} {report.records_written:9d}")

    sizes = sorted(outcomes)
    assert outcomes[sizes[0]].queries_failed > 0         # starved pool fails
    assert outcomes[sizes[-1]].queries_failed == 0       # sized pool succeeds
    # failures decrease monotonically with pool size
    failures = [outcomes[s].queries_failed for s in sizes]
    assert failures == sorted(failures, reverse=True)
