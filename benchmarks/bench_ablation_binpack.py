"""Ablation: packing algorithm for the SPS query plan.

Compares the exact branch-and-bound (the paper's MIP/CBC stand-in), the
first-fit-decreasing heuristic, and the unpacked naive plan, on query count
and planning time.
"""

import time

from repro.cloudsim import Catalog
from repro.core import plan_for_catalog


def test_ablation_binpack_algorithms(benchmark):
    catalog = Catalog(seed=0)
    offering = catalog.offering_map()

    results = {}

    def run_all():
        for algorithm in ("naive", "ffd", "exact"):
            start = time.perf_counter()
            plan = plan_for_catalog(catalog, algorithm=algorithm)
            results[algorithm] = (plan, time.perf_counter() - start)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nAblation: query-plan packing algorithm")
    print(f"  {'algorithm':10s} {'queries':>8s} {'reduction':>10s} "
          f"{'plan time':>10s}")
    for algorithm in ("naive", "ffd", "exact"):
        plan, elapsed = results[algorithm]
        print(f"  {algorithm:10s} {plan.optimized_query_count:8d} "
              f"{plan.reduction_factor:9.2f}x {elapsed:9.2f}s")

    naive = results["naive"][0]
    ffd = results["ffd"][0]
    exact = results["exact"][0]
    assert exact.optimized_query_count <= ffd.optimized_query_count
    assert ffd.optimized_query_count < naive.optimized_query_count
    # FFD is near-optimal on this item mix; exact must not be worse
    assert exact.optimized_query_count <= ffd.optimized_query_count
