"""Ablation: change-point (dedup) compression of the archive.

Spot datasets are step functions; storing only value changes shrinks the
archive by an order of magnitude at the paper's 10-minute cadence.  This
bench measures the stored-to-written ratio per dataset on the shared
181-day archive and on a fine-grained collection run.
"""

from repro import ServiceConfig, SpotLakeService


def test_ablation_compression_ratio(benchmark, archive_service):
    stats = archive_service.archive.stats()
    print("\nAblation: archive change-point compression (181-day backfill)")
    print(f"  {'table':8s} {'written':>10s} {'stored':>9s} {'ratio':>7s}")
    for table in ("sps", "advisor", "price"):
        s = stats[table]
        print(f"  {table:8s} {s['records_written']:10d} "
              f"{s['change_points_stored']:9d} {s['dedup_ratio']:7.3f}")
        assert s["dedup_ratio"] < 0.6  # at least ~2x savings everywhere

    # fine-grained: the paper's 10-minute cadence over eight hours
    def collect_fine():
        service = SpotLakeService(ServiceConfig(
            seed=0, instance_types=["m5.large", "p3.2xlarge", "c5.xlarge"]))
        for _ in range(48):  # 8 h x 6 rounds/h
            service.collect_once()
            service.cloud.clock.advance_minutes(10)
        return service.archive.stats()

    fine = benchmark.pedantic(collect_fine, rounds=1, iterations=1)
    print("  10-minute cadence, 24 h, 3 types:")
    for table in ("sps", "price"):
        s = fine[table]
        print(f"    {table:8s} ratio {s['dedup_ratio']:.4f} "
              f"({s['records_written']} -> {s['change_points_stored']})")
    # at 10-minute cadence almost every record is a repeat
    assert fine["sps"]["dedup_ratio"] < 0.1
    assert fine["price"]["dedup_ratio"] < 0.1
