"""Ablation: random-forest feature window (Table 4 extension).

Compares the RF trained on current-value features only against the full
preceding-month history features, isolating the contribution of the
archive's historical dataset -- the paper's core value claim.
"""

from repro.experiments import FEATURE_NAMES, prediction_study

CURRENT_ONLY = [FEATURE_NAMES.index(n)
                for n in ("sps_current", "if_current", "savings_current")]
HISTORY_ONLY = [i for i, n in enumerate(FEATURE_NAMES)
                if n not in ("sps_current", "if_current", "savings_current")]


def test_ablation_feature_windows(benchmark, experiment_world, prediction_archive):
    _, submit, _, results = experiment_world

    outcomes = {}

    def run_all():
        for label, mask in (("current-only", CURRENT_ONLY),
                            ("history-only", HISTORY_ONLY),
                            ("current+history", None)):
            scores = prediction_study(prediction_archive, results, submit,
                                      n_estimators=80, seed=0,
                                      feature_mask=mask)
            outcomes[label] = {s.method: s for s in scores}["RF"]
        return outcomes

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nAblation: RF feature windows")
    print(f"  {'features':16s} {'accuracy':>9s} {'f1':>6s}")
    for label in ("current-only", "history-only", "current+history"):
        rf = outcomes[label]
        print(f"  {label:16s} {rf.accuracy:9.2f} {rf.f1:6.2f}")

    # history features must add signal over current values alone
    assert outcomes["current+history"].accuracy >= \
        outcomes["current-only"].accuracy
