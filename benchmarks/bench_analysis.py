"""Vectorized-analytics benchmark: columnar pushdown, rollups, identity.

The analytics engine (``repro.timeseries.vector`` executed by
``repro.core.analytics``) replaces row-at-a-time aggregation with a
columnar fast path over both tiers: zone-map-pruned column scans on the
cold lake, packed per-series array views on the hot tables, and
generation-stamped per-day rollup partials for repeated day-aligned
queries.  This bench answers whether the pushdown pays -- and, just as
important, proves it is *safe*: every speedup gate travels with a
numeric-identity check against the row-at-a-time reference oracle.

Acceptance: cold bucketed aggregation >= 5x the row path with identical
numbers, hot heatmap construction >= 3x with byte-identical figures,
rollup-warm repeats >= 10x their cold run with partial reuse after an
append, and /analytics responses byte-identical across 1/2/4 frontend
workers.  The report is written to ``BENCH_analysis.json``.

Run standalone (CI smoke) or under pytest:

    PYTHONPATH=src python benchmarks/bench_analysis.py
    PYTHONPATH=src python -m pytest benchmarks/bench_analysis.py -q
"""

import json
import sys
from pathlib import Path

from repro.devtools.analysisbench import run_analysis_bench, summary_lines

#: Cold-tier bucketed group-by aggregation vs the row-at-a-time path.
MIN_COLD_SPEEDUP = 5.0
#: Hot-tier Figure-3 heatmap construction vs the pre-engine loop.
MIN_HEATMAP_SPEEDUP = 3.0
#: Rollup-warm repeat of a day-aligned query vs its cold first run.
MIN_ROLLUP_WARM_SPEEDUP = 10.0

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_analysis.json"


def run_and_report(write_report: bool = True) -> dict:
    report = run_analysis_bench()
    print("\nAnalysis bench: columnar pushdown, rollups, worker identity")
    for line in summary_lines(report):
        print(f"  {line}")
    if write_report:
        REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
        print(f"  report written to {REPORT_PATH}")
    return report


def test_analysis_gates():
    report = run_and_report()
    cold = report["cold_aggregation"]
    assert cold["identical"], \
        f"cold aggregation diverges from the reference " \
        f"(max_rel_err={cold['max_rel_err']:.2e})"
    assert cold["speedup"] >= MIN_COLD_SPEEDUP, \
        f"cold aggregation only {cold['speedup']:.1f}x the row path " \
        f"(gate {MIN_COLD_SPEEDUP:.1f}x)"
    assert cold["narrow_pruned"] > 0, \
        "zone maps pruned nothing on the narrow-window probe"
    assert cold["narrow_identical"], \
        "zone-map-pruned narrow window diverges from the reference"

    heat = report["hot_heatmap"]
    assert heat["byte_identical"], \
        "vectorized heatmap is not byte-identical to the row loop"
    assert heat["speedup"] >= MIN_HEATMAP_SPEEDUP, \
        f"heatmap construction only {heat['speedup']:.1f}x " \
        f"(gate {MIN_HEATMAP_SPEEDUP:.1f}x)"

    roll = report["rollup"]
    assert roll["identical"], "rollup-served result diverges from direct"
    assert roll["speedup"] >= MIN_ROLLUP_WARM_SPEEDUP, \
        f"rollup-warm repeats only {roll['speedup']:.1f}x the cold run " \
        f"(gate {MIN_ROLLUP_WARM_SPEEDUP:.1f}x)"
    assert roll["partial_reuse_ratio"] > 0.5, \
        f"append invalidated {1 - roll['partial_reuse_ratio']:.0%} of " \
        f"day partials; expected frontier-bounded reuse"

    ident = report["worker_identity"]
    assert ident["byte_identical"], \
        f"/analytics responses diverge across workers {ident['workers']}"


def _gates_pass(result: dict) -> bool:
    cold = result["cold_aggregation"]
    heat = result["hot_heatmap"]
    roll = result["rollup"]
    return (cold["identical"] and cold["speedup"] >= MIN_COLD_SPEEDUP
            and cold["narrow_pruned"] > 0 and cold["narrow_identical"]
            and heat["byte_identical"]
            and heat["speedup"] >= MIN_HEATMAP_SPEEDUP
            and roll["identical"]
            and roll["speedup"] >= MIN_ROLLUP_WARM_SPEEDUP
            and roll["partial_reuse_ratio"] > 0.5
            and result["worker_identity"]["byte_identical"])


if __name__ == "__main__":
    result = run_and_report()
    if not _gates_pass(result):
        cold = result["cold_aggregation"]
        heat = result["hot_heatmap"]
        roll = result["rollup"]
        print(f"FAIL: cold={cold['speedup']:.1f}x "
              f"(gate {MIN_COLD_SPEEDUP:.1f}x, "
              f"identical={cold['identical']}) "
              f"heatmap={heat['speedup']:.1f}x "
              f"(gate {MIN_HEATMAP_SPEEDUP:.1f}x, "
              f"identical={heat['byte_identical']}) "
              f"rollup={roll['speedup']:.1f}x "
              f"(gate {MIN_ROLLUP_WARM_SPEEDUP:.1f}x, "
              f"reuse={roll['partial_reuse_ratio']:.2f}) "
              f"workers={result['worker_identity']['byte_identical']}",
              file=sys.stderr)
        sys.exit(1)
    sys.exit(0)
