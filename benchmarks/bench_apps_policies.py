"""Extension bench: pool-selection policy comparison on GPU workloads.

Quantifies the archive's downstream value (the paper's motivation): jobs
scheduled by availability-informed policies complete faster and with fewer
interruptions than cheapest-price scheduling.
"""

import numpy as np

from repro import ServiceConfig, SpotLakeService
from repro.apps import ALL_POLICIES, JobSpec, compare_policies


def test_policy_comparison(benchmark):
    service = SpotLakeService(ServiceConfig(seed=0))
    cloud = service.cloud
    start = cloud.clock.start + 40 * 86400.0
    cloud.clock.set(start)
    gpu_pools = [p for p in cloud.catalog.all_pools()
                 if cloud.catalog.instance_type(p[0]).class_letter in ("P", "G")]
    times = np.linspace(start - 30 * 86400.0, start, 20)
    service.bulk_backfill(times.tolist(), pools=gpu_pools,
                          include_price=False)
    job = JobSpec(work_hours=24.0, checkpoint_interval_hours=1.0)

    outcomes = benchmark.pedantic(
        lambda: compare_policies(cloud,
                                 [cls() for cls in ALL_POLICIES],
                                 gpu_pools, job, start, jobs_per_policy=25,
                                 archive=service.archive),
        rounds=1, iterations=1)

    print("\nPolicy comparison: 24 h GPU training jobs")
    print(f"  {'policy':12s} {'done':>6s} {'makespan':>9s} {'cost':>7s} "
          f"{'interrupts':>11s}")
    by_name = {}
    for o in outcomes:
        print(f"  {o.policy:12s} {100 * o.completion_rate:5.0f}% "
              f"{o.mean_makespan_hours:8.1f}h {o.mean_cost:6.2f}$ "
              f"{o.mean_interruptions:10.2f}")
        by_name[o.policy] = o

    # availability-informed policies dominate cheapest on reliability
    assert by_name["combined"].completion_rate >= \
        by_name["cheapest"].completion_rate
    assert by_name["combined"].mean_makespan_hours <= \
        by_name["cheapest"].mean_makespan_hours
    assert by_name["historical"].completion_rate >= 0.9
    # and cheapest wins on raw price, as it must
    assert by_name["cheapest"].mean_cost == min(
        o.mean_cost for o in outcomes)
