"""Collection engine benchmark: round latency, batched ingest, plan cache.

The parallel collection engine (``repro.core.parallel``) shards the SPS
plan, materializes shard results off the admission path, and lands every
round through the batched archive writers; the plan cache
(``repro.core.plan_cache``) reuses solved query packings across service
constructions.  This bench answers whether those layers pay for
themselves, and -- because a fast wrong answer is worthless -- every
timed comparison is gated on byte-identity of the resulting archives.

Acceptance: the engine at 4 workers must finish a full-catalog SPS round
at least 2x faster than the legacy serial collector; batched archive
writes must beat pointwise writes by at least 3x; and a warm re-plan of
an unchanged catalog must make zero solver calls.  The JSON report lands
in ``BENCH_collection.json`` next to this file's parent.

Run standalone (CI smoke) or under pytest:

    PYTHONPATH=src python benchmarks/bench_collection.py
    PYTHONPATH=src python -m pytest benchmarks/bench_collection.py -q
"""

import json
import sys
from pathlib import Path

from repro.devtools.collectionbench import run_collection_bench, summary_lines

#: Acceptance floor for the engine's full-catalog round speedup at 4 workers.
MIN_ROUND_SPEEDUP = 2.0
#: Acceptance floor for batched-over-pointwise ingest throughput.
MIN_INGEST_RATIO = 3.0

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_collection.json"


def run_and_report(write_report: bool = True) -> dict:
    report = run_collection_bench()
    print("\nCollection bench: round latency, ingest, plan cache")
    for line in summary_lines(report):
        print(f"  {line}")
    if write_report:
        REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
        print(f"  report written to {REPORT_PATH}")
    return report


def _gates(report: dict) -> list:
    """(name, passed) acceptance checks over one report."""
    latency = report["round_latency"]
    ingest = report["ingest"]
    cache = report["plan_cache"]
    speedup = latency["legs"]["workers=4"]["speedup"]
    return [
        (f"round speedup {speedup:.2f}x >= {MIN_ROUND_SPEEDUP:.1f}x",
         speedup >= MIN_ROUND_SPEEDUP),
        ("round archives byte-identical", latency["byte_identical"]),
        (f"ingest ratio {ingest['throughput_ratio']:.2f}x >= "
         f"{MIN_INGEST_RATIO:.1f}x",
         ingest["throughput_ratio"] >= MIN_INGEST_RATIO),
        ("ingest archives byte-identical", ingest["byte_identical"]),
        ("warm re-plan makes zero solver calls",
         cache["warm_solver_calls"] == 0),
        ("cold plan actually solved packings", cache["cold_solver_calls"] > 0),
        ("cached plan identical to cold plan", cache["plans_identical"]),
    ]


def test_collection_engine_gates():
    report = run_and_report()
    for name, passed in _gates(report):
        assert passed, f"collection bench gate failed: {name}"


if __name__ == "__main__":
    result = run_and_report()
    failed = [name for name, passed in _gates(result) if not passed]
    for name in failed:
        print(f"FAIL: {name}", file=sys.stderr)
    sys.exit(1 if failed else 0)
