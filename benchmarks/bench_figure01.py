"""Figure 1: bin-packing spot-placement-score query optimization.

The paper reduces the full catalog scan from 9,299 queries (547 types x 17
regions, the upper bound) to 2,226 packed queries, about 4.5x.
"""

from repro.cloudsim import Catalog
from repro.core import pack_example, plan_for_catalog


def test_figure01_query_packing(benchmark):
    catalog = Catalog(seed=0)

    plan = benchmark.pedantic(
        lambda: plan_for_catalog(catalog, algorithm="exact"),
        rounds=1, iterations=1)

    print("\nFigure 1: placement-score query plan")
    print(f"  pair upper bound (paper 9,299): {plan.pair_bound_query_count}")
    print(f"  naive offered pairs:            {plan.naive_query_count}")
    print(f"  bin-packed queries (paper 2,226): {plan.optimized_query_count}")
    print(f"  reduction vs bound (paper ~4.5x): "
          f"{plan.bound_reduction_factor:.2f}x")

    groups = pack_example(catalog.offering_map(), "p3.2xlarge")
    print("  p3.2xlarge packing:")
    for i, group in enumerate(groups):
        rows = sum(z for _, z in group)
        print(f"    query {i}: {len(group)} regions, {rows} rows")
        assert rows <= 10

    # shape assertions: multi-fold reduction, every query within the cap
    assert plan.pair_bound_query_count == 547 * 17
    assert plan.bound_reduction_factor > 3.0
    assert all(q.expected_rows <= 10 for q in plan.queries)
