"""Figure 3: temporal heatmaps of the spot placement and interruption-free
scores per instance class (paper: averages 2.8 / 2.22, accelerated family
12.07% / 34.98% below average, a dip around June 2 = day 152)."""

import numpy as np

from repro.analysis import temporal_heatmap

from conftest import ARCHIVE_DAYS, ARCHIVE_SAMPLES_PER_DAY


def _day_times(times):
    per_day = ARCHIVE_SAMPLES_PER_DAY
    return [times[d * per_day:(d + 1) * per_day] for d in range(ARCHIVE_DAYS)]


def test_figure03_temporal_heatmaps(benchmark, archive_service, archive_times):
    catalog = archive_service.cloud.catalog
    day_times = _day_times(archive_times)

    def build():
        sps = temporal_heatmap(archive_service.archive, catalog, day_times, "sps")
        ifs = temporal_heatmap(archive_service.archive, catalog, day_times, "if_score")
        return sps, ifs

    sps_map, if_map = benchmark.pedantic(build, rounds=1, iterations=1)

    sps_avg = sps_map.overall_mean()
    if_avg = if_map.overall_mean()
    print("\nFigure 3: temporal score heatmaps (daily class means)")
    print(f"  average SPS (paper 2.8):  {sps_avg:.2f}")
    print(f"  average IF  (paper 2.22): {if_avg:.2f}")

    accel = ("P", "G", "DL", "Trn", "Inf", "F", "VT")
    rows = sps_map.row_means()
    if_rows = if_map.row_means()
    accel_sps = np.mean([rows[c] for c in accel if c in rows])
    accel_if = np.mean([if_rows[c] for c in accel if c in if_rows])
    print(f"  accelerated below average: SPS {100 * (1 - accel_sps / sps_avg):.1f}% "
          f"(paper 12.07), IF {100 * (1 - accel_if / if_avg):.1f}% (paper 34.98)")

    print("  per-class means (SPS / IF):")
    for cls in sps_map.row_labels:
        if cls in rows:
            print(f"    {cls:4s} {rows[cls]:.2f} / {if_rows.get(cls, float('nan')):.2f}")

    # event: June 2 = day 152; SPS daily mean dips vs surrounding days
    daily = np.nanmean(sps_map.values, axis=0)
    event = np.nanmean(daily[152:156])
    before = np.nanmean(daily[140:150])
    print(f"  June-2 event: mean SPS {before:.3f} before vs {event:.3f} during")

    assert accel_sps < sps_avg
    assert accel_if < if_avg
    assert (1 - accel_if / if_avg) > (1 - accel_sps / sps_avg)  # IF hit harder
    assert event < before  # the capacity event is visible
    assert 2.4 < sps_avg < 3.0 and 1.9 < if_avg < 2.6
