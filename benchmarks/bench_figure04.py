"""Figure 4: spatial heatmaps across the 17 regions (paper: score variation
across regions exceeds variation across days; unsupported class-region
cells are NA)."""

import numpy as np

from repro.analysis import spatial_heatmap, spatial_vs_temporal_variation, temporal_heatmap

from conftest import ARCHIVE_DAYS, ARCHIVE_SAMPLES_PER_DAY


def test_figure04_spatial_heatmaps(benchmark, archive_service, archive_times):
    catalog = archive_service.cloud.catalog

    sps_map = benchmark.pedantic(
        lambda: spatial_heatmap(archive_service.archive, catalog,
                                archive_times[::14], "sps"),
        rounds=1, iterations=1)
    if_map = spatial_heatmap(archive_service.archive, catalog,
                             archive_times[::14], "if_score")

    print("\nFigure 4: spatial score heatmaps (class x region means)")
    na_cells = int(np.sum(np.isnan(sps_map.values)))
    print(f"  regions: {len(sps_map.col_labels)}, classes: "
          f"{len(sps_map.row_labels)}, NA cells: {na_cells}")

    per_day = ARCHIVE_SAMPLES_PER_DAY
    day_times = [archive_times[d * per_day:(d + 1) * per_day]
                 for d in range(ARCHIVE_DAYS)]
    temporal = temporal_heatmap(archive_service.archive, catalog, day_times, "sps")
    variation = spatial_vs_temporal_variation(temporal, sps_map)
    print(f"  per-class std across regions: {variation['spatial_std']:.3f}")
    print(f"  per-class std across days:    {variation['temporal_std']:.3f}")

    accel_regions = np.nanstd(if_map.values, axis=1)
    print("  (paper: spatial diversity more noticeable than temporal)")

    assert len(sps_map.col_labels) == 17
    assert na_cells > 0  # some classes are not offered everywhere
    assert variation["spatial_std"] > variation["temporal_std"]
