"""Figure 5: scores grouped by instance size (paper: both scores decrease
as the size grows; only sizes with more than 10 instance types shown)."""

from repro.analysis import scores_by_size, size_trend_slope


def test_figure05_scores_by_size(benchmark, archive_service, archive_times):
    catalog = archive_service.cloud.catalog

    sizes = benchmark.pedantic(
        lambda: scores_by_size(archive_service.archive, catalog,
                               archive_times[::10], min_types=10),
        rounds=1, iterations=1)

    print("\nFigure 5: scores by instance size")
    print(f"  {'size':>9s} {'SPS':>6s} {'IF':>6s} {'#types':>7s}")
    for row in sizes.as_rows():
        print(f"  {row['size']:>9s} {row['sps']:6.2f} "
              f"{row['if_score']:6.2f} {row['types']:7d}")

    sps_slope = size_trend_slope(sizes, "sps")
    if_slope = size_trend_slope(sizes, "if")
    print(f"  trend slope per size step: SPS {sps_slope:+.3f}, IF {if_slope:+.3f}"
          " (paper: both negative)")

    assert len(sizes.sizes) >= 5
    assert all(c > 10 for c in sizes.type_counts)
    assert sps_slope < 0
    assert if_slope < 0
    # the largest kept size scores lower than the smallest on both datasets
    assert sizes.sps_means[-1] < sizes.sps_means[0]
    assert sizes.if_means[-1] < sizes.if_means[0]
