"""Figure 6: composite (3-type) placement-score queries vs the sum of the
individual scores (paper: equal 38.81%, composite above 60.62%, below-sum
only rare exceptions)."""

from repro.cloudsim import SimulatedCloud
from repro.analysis import composite_query_study


def test_figure06_composite_queries(benchmark):
    cloud = SimulatedCloud(seed=0)
    timestamp = cloud.clock.start + 40 * 86400.0

    study = benchmark.pedantic(
        lambda: composite_query_study(cloud, timestamp,
                                      samples_per_sum=40, seed=1),
        rounds=1, iterations=1)

    shares = study.shares()
    print("\nFigure 6: composite-type query score vs sum of single scores")
    print(f"  observations: {len(study.observations)} "
          f"(uniform over summed scores 3..9)")
    print(f"  composite == sum (paper 38.81%): {shares['equal']:.2f}%")
    print(f"  composite >  sum (paper 60.62%): {shares['composite_above']:.2f}%")
    print(f"  composite <  sum (paper: rare):  {shares['composite_below']:.2f}%")

    counts = study.scatter_counts()
    max_composite = max(c for c, _ in counts)
    print(f"  max composite score observed: {max_composite} (API cap 10)")

    assert shares["composite_above"] > shares["equal"]
    assert shares["composite_below"] < 5.0
    assert 25.0 < shares["equal"] < 55.0
    assert max_composite <= 10
