"""Figure 7: placement score vs number of requested instances (paper:
accelerated P/G/Inf and storage D drop hardest as the capacity grows)."""

from repro.analysis import capacity_sweep, drops_by_category
from repro.cloudsim import SimulatedCloud


def test_figure07_capacity_sweep(benchmark):
    cloud = SimulatedCloud(seed=0)
    timestamp = cloud.clock.start + 40 * 86400.0

    sweep = benchmark.pedantic(
        lambda: capacity_sweep(cloud, timestamp),
        rounds=1, iterations=1)

    print("\nFigure 7: placement score vs requested capacity")
    header = "  " + f"{'type':>16s}" + "".join(
        f"{c:>7d}" for c in sweep.capacities)
    print(header)
    for name in sweep.instance_types:
        row = sweep.scores[name]
        print("  " + f"{name:>16s}" + "".join(f"{v:7.2f}" for v in row))

    drops = drops_by_category(sweep, cloud.catalog)
    print("  mean score drop by category (1 -> max capacity):")
    for category, drop in sorted(drops.items(), key=lambda kv: -kv[1]):
        print(f"    {category:12s} {drop:+.2f}")

    # every type loses score as the requested capacity grows
    for name in sweep.instance_types:
        row = sweep.scores[name]
        assert row[0] >= row[-1]
    # accelerated drops hardest, general least (paper's key finding)
    assert drops["accelerated"] >= max(drops["general"], drops["compute"])
    assert drops["storage"] > drops["general"]
