"""Figure 8: CDF of the Pearson correlation coefficient between dataset
pairs (paper: mass near zero for all pairs -- 62.57% of |r| < 0.25 and
87.64% < 0.5 for the SPS / interruption-free pair; price pairs the most
concentrated around zero)."""

import numpy as np

from repro.analysis import correlation_study


def test_figure08_correlation_cdfs(benchmark, archive_service, archive_times):
    study = benchmark.pedantic(
        lambda: correlation_study(archive_service.archive, archive_times),
        rounds=1, iterations=1)

    print("\nFigure 8: Pearson correlation CDFs over (type, region) pools")
    for pair, label in (("sps_if", "SPS vs IF"),
                        ("if_price", "IF vs price"),
                        ("sps_price", "SPS vs price")):
        values = study.coefficients[pair]
        if len(values) == 0:
            continue
        print(f"  {label:14s} n={len(values):4d} mean r {np.mean(values):+.3f} "
              f"|r|<0.25: {100 * study.share_below_abs(pair, 0.25):.1f}% "
              f"|r|<0.5: {100 * study.share_below_abs(pair, 0.5):.1f}%")
    print("  (paper: SPS-IF 62.57% below 0.25, 87.64% below 0.5)")

    # headline shape: no strong correlation between any dataset pair
    for pair in ("sps_if", "if_price", "sps_price"):
        values = study.coefficients[pair]
        if len(values):
            assert abs(float(np.mean(values))) < 0.2
            assert study.share_below_abs(pair, 0.5) > 0.55
    assert study.pools_evaluated > 100
