"""Figure 9: histogram of the score difference |SPS - interruption-free|
(paper: 0.0 is modal; ~17.41% full contradiction at 2.0; ~24% at >= 1.5)."""

from repro.analysis import contradiction_summary, score_difference_histogram


def test_figure09_score_difference(benchmark, archive_service, archive_times):
    histogram = benchmark.pedantic(
        lambda: score_difference_histogram(archive_service.archive,
                                           archive_times[::6]),
        rounds=1, iterations=1)

    print("\nFigure 9: |SPS - interruption-free score| distribution")
    for diff in (0.0, 0.5, 1.0, 1.5, 2.0):
        print(f"  diff {diff:3.1f}: {histogram.get(diff, 0.0):6.2f}%")
    summary = contradiction_summary(histogram)
    print(f"  full contradiction (paper 17.41%): "
          f"{summary['full_contradiction']:.2f}%")
    print(f"  difference >= 1.5 (paper ~24%):    "
          f"{summary['severe_disagreement']:.2f}%")

    assert histogram[0.0] == max(histogram.values())  # agreement is modal
    assert 8.0 < summary["full_contradiction"] < 30.0
    assert 12.0 < summary["severe_disagreement"] < 40.0
