"""Figure 10: CDF of elapsed time between dataset value updates (paper: the
placement score updates most frequently, the interruption-free score least,
the spot price in between)."""

from repro.analysis import update_frequency_study


def test_figure10_update_frequency(benchmark, archive_service):
    study = benchmark.pedantic(
        lambda: update_frequency_study(archive_service.archive),
        rounds=1, iterations=1)

    print("\nFigure 10: elapsed time between value updates")
    for dataset in ("sps", "price", "if_score"):
        intervals = study.intervals[dataset]
        if len(intervals) == 0:
            continue
        print(f"  {dataset:9s} n={len(intervals):6d} "
              f"median {study.median_hours(dataset):7.1f} h")

    ordering = study.ordering()
    print(f"  most-to-least frequently updated: {ordering} "
          "(paper: sps, price, if_score)")

    assert ordering == ["sps", "price", "if_score"]
    assert study.median_hours("sps") < study.median_hours("price")
    assert study.median_hours("price") < study.median_hours("if_score")
