"""Figure 11: CDFs of fulfillment latency and time-to-interruption per
score combination (paper 11a: H-H 28% fulfilled within 1 s, >90% within
135 s, L-L median 1322 s; 11b: H-L median 6872 s > L-H median 2859 s, H-H
longest)."""

from repro.experiments import fulfillment_latency_cdfs, run_duration_cdfs


def test_figure11_latency_cdfs(benchmark, experiment_world):
    _, _, _, results = experiment_world

    def build():
        return (fulfillment_latency_cdfs(results),
                run_duration_cdfs(results))

    latency, duration = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\nFigure 11a: time until fulfillment")
    print(f"  {'combo':6s} {'median':>8s} {'<1 s':>6s} {'<135 s':>7s}")
    for combo in ("H-H", "H-L", "M-M", "L-H", "L-L"):
        print(f"  {combo:6s} {latency.median(combo):7.0f}s "
              f"{100 * latency.fraction_below(combo, 1):5.0f}% "
              f"{100 * latency.fraction_below(combo, 135):6.0f}%")
    print("  (paper: H-H 28% within 1 s, 90% within 135 s; "
          "L-L median 1322 s)")

    print("Figure 11b: time until interruption (median seconds)")
    for combo in ("H-H", "H-L", "M-M", "L-H", "L-L"):
        print(f"  {combo:6s} {duration.median(combo):8.0f}s")
    print("  (paper: H-L 6872 s > L-H 2859 s; H-H longest)")

    # 11a shape: high scores fulfill fast, low scores slowly
    assert latency.fraction_below("H-H", 1) > 0.15
    assert latency.fraction_below("H-H", 135) > 0.85
    assert latency.median("L-L") > 400
    assert latency.median("H-H") < latency.median("M-M") < latency.median("L-L")
    # 11b shape: H-H runs longest; H-L outlasts L-H
    assert duration.median("H-H") == max(
        duration.median(c) for c in ("H-H", "H-L", "M-M", "L-H", "L-L"))
    assert duration.median("H-L") > duration.median("L-H")
