"""Concurrent serving benchmark: SLO-gated load test of the frontend.

Drives the admission-controlled ``ServingFrontend`` (worker pool, token
buckets, bounded queue) with the closed- and open-loop arrival models
from ``repro.devtools.frontendbench`` over a zipf-skewed query mix, and
gates the run on the serving SLOs:

* closed loop at 4 workers: p99 latency under ``P99_LIMIT_MS``, zero
  errors, per-tenant fairness at or above ``FAIRNESS_FLOOR``;
* worker sweep {1, 2, 4}: every response byte-identical at every count;
* open-loop overload burst: both throttling (429) and shedding (503)
  fire, every rejection carries a ``retry_after`` hint, and no tenant is
  starved.

The report merges into ``BENCH_serving.json`` under the ``concurrent``
key (the cached-vs-uncached report owns the rest of the file).

Run standalone (CI smoke) or under pytest:

    PYTHONPATH=src python benchmarks/bench_frontend.py
    PYTHONPATH=src python -m pytest benchmarks/bench_frontend.py -q
"""

import json
import sys
from pathlib import Path

from repro.devtools.frontendbench import (
    evaluate_slos,
    run_frontend_bench,
    summary_lines,
)

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def run_and_report(write_report: bool = True) -> dict:
    report = run_frontend_bench(seed=0)
    report["slo"] = evaluate_slos(report)
    print("\nFrontend bench: concurrent serving under admission control")
    for line in summary_lines(report):
        print(f"  {line}")
    slo = report["slo"]
    print(f"  SLO: p99={slo['p99_ms']:.2f}ms (limit {slo['p99_limit_ms']}) "
          f"error_rate={slo['error_rate']:.3f} "
          f"fairness={slo['fairness']:.2f} passed={slo['passed']}")
    if write_report:
        merged = {}
        if REPORT_PATH.exists():
            try:
                merged = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                merged = {}
        merged["concurrent"] = report
        REPORT_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
        print(f"  report merged into {REPORT_PATH}")
    return report


def test_frontend_slo_gates():
    report = run_and_report()
    slo = report["slo"]
    assert slo["byte_identical_across_workers"], report["worker_sweep"]
    assert slo["p99_ok"], f"p99 {slo['p99_ms']:.2f}ms over the limit"
    assert slo["error_rate_ok"], f"error rate {slo['error_rate']:.3f}"
    assert slo["fairness_ok"], report["open"]["per_tenant_success"]
    assert slo["throttling_exercised"], report["open"]
    assert slo["retry_after_on_rejections"], report["open"]
    assert slo["passed"]


if __name__ == "__main__":
    result = run_and_report()
    if not result["slo"]["passed"]:
        print(f"FAIL: {json.dumps(result['slo'], indent=2)}",
              file=sys.stderr)
    sys.exit(0 if result["slo"]["passed"] else 1)
