"""Tiered-lake benchmark: round diffing, cold scans, federated history.

The lake subsystem (``repro.lake``) archives every raw merged round in a
date-partitioned cold tier and ingests only changed rows into the hot
engine; history queries federate across the retention boundary.  This
bench answers whether that tiering pays: how many ingest bytes round
diffing avoids on a steady-state workload, how fast the compacted cold
tier scans, and what federation costs over a hot-only archive.

Acceptance: round diffing must avoid >= 5x the hot ingest rows on the
~2%-churn steady-state workload, the compacted cold tier must scan a
full window at >= 1M rows/s, federated full-range queries must return
byte-identical rows to an un-evicted hot-only twin within 2x of its
latency, and a seeded crash in every lake publish window must recover
byte-identically.  The report merges into the ``lake`` section of
``BENCH_storage.json``, preserving the storage bench's own sections.

Run standalone (CI smoke) or under pytest:

    PYTHONPATH=src python benchmarks/bench_lake.py
    PYTHONPATH=src python -m pytest benchmarks/bench_lake.py -q
"""

import json
import sys
from pathlib import Path

from repro.devtools.lakebench import run_lake_bench, summary_lines

#: Ingest rows avoided by round diffing (ratio of merged to ingested).
MIN_INGEST_REDUCTION = 5.0
#: Cold-tier windowed scan floor.
MIN_COLD_SCAN_ROWS_PER_SECOND = 1_000_000
#: Federated history latency ceiling (ratio to the hot-only twin).
MAX_FEDERATED_LATENCY_RATIO = 2.0

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_storage.json"


def run_and_report(write_report: bool = True) -> dict:
    report = run_lake_bench()
    print("\nLake bench: round diffing, cold scans, federated history")
    for line in summary_lines(report):
        print(f"  {line}")
    if write_report:
        # merge, don't overwrite: the storage bench owns the other sections
        merged = {}
        if REPORT_PATH.exists():
            merged = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
        merged["lake"] = report
        REPORT_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
        print(f"  report merged into {REPORT_PATH}")
    return report


def test_lake_gates():
    report = run_and_report()
    ratio = report["ingest"]["reduction_ratio"]
    assert ratio >= MIN_INGEST_REDUCTION, \
        f"round diffing only avoids {ratio:.1f}x ingest " \
        f"(gate {MIN_INGEST_REDUCTION:.1f}x)"
    rate = report["cold_scan"]["rows_per_second"]
    assert rate >= MIN_COLD_SCAN_ROWS_PER_SECOND, \
        f"cold scan at {rate:,.0f} rows/s " \
        f"(gate {MIN_COLD_SCAN_ROWS_PER_SECOND:,})"
    fed = report["federated"]
    assert fed["byte_identical"], \
        "federated history diverges from the un-evicted reference"
    assert fed["boundary"] is not None, \
        "retention never advanced the hot/cold boundary"
    assert fed["latency_ratio"] <= MAX_FEDERATED_LATENCY_RATIO, \
        f"federated queries at {fed['latency_ratio']:.2f}x hot-only " \
        f"latency (ceiling {MAX_FEDERATED_LATENCY_RATIO:.1f}x)"
    assert report["determinism"]["identical"], \
        "lake crash recovery diverged from the uninterrupted reference"


def _gates_pass(result: dict) -> bool:
    fed = result["federated"]
    return (result["ingest"]["reduction_ratio"] >= MIN_INGEST_REDUCTION
            and (result["cold_scan"]["rows_per_second"]
                 >= MIN_COLD_SCAN_ROWS_PER_SECOND)
            and fed["byte_identical"]
            and fed["boundary"] is not None
            and fed["latency_ratio"] <= MAX_FEDERATED_LATENCY_RATIO
            and result["determinism"]["identical"])


if __name__ == "__main__":
    result = run_and_report()
    if not _gates_pass(result):
        fed = result["federated"]
        print(f"FAIL: reduction={result['ingest']['reduction_ratio']:.1f}x "
              f"(gate {MIN_INGEST_REDUCTION:.1f}x) "
              f"cold_scan={result['cold_scan']['rows_per_second']:,.0f}/s "
              f"(gate {MIN_COLD_SCAN_ROWS_PER_SECOND:,}) "
              f"federated_identical={fed['byte_identical']} "
              f"latency_ratio={fed['latency_ratio']:.2f}x "
              f"(ceiling {MAX_FEDERATED_LATENCY_RATIO:.1f}x) "
              f"determinism={result['determinism']['identical']}",
              file=sys.stderr)
        sys.exit(1)
    sys.exit(0)
