"""Extension bench: Section-7 multi-vendor collection and comparison.

Measures a 7-day multi-vendor collection round-trip and prints the
cross-vendor price comparison the global-key schema enables.
"""

from repro.cloudsim import SimulatedCloud
from repro.multicloud import (
    AwsAdapter,
    AzureAdapter,
    GcpAdapter,
    HardwareProfile,
    MultiCloudArchive,
    availability_timelines,
    cheapest_by_vendor,
    cross_vendor_savings,
)

T0 = 1640995200.0 + 30 * 86400.0


def test_multicloud_collection(benchmark):
    vendors = [AwsAdapter(SimulatedCloud(seed=0)), AzureAdapter(),
               GcpAdapter()]
    archive = MultiCloudArchive(vendors)

    def collect_week():
        for day in range(7):
            archive.collect(T0 + day * 86400.0,
                            max_offerings_per_vendor=300)
        return archive

    benchmark.pedantic(collect_week, rounds=1, iterations=1)

    print("\nSection 7: multi-vendor archive")
    print(f"  vendors with price data:        "
          f"{archive.vendors_with_dataset('price')}")
    print(f"  vendors with availability data: "
          f"{archive.vendors_with_dataset('availability')}")

    at = T0 + 6 * 86400.0
    quotes = cheapest_by_vendor(archive, HardwareProfile(8, 32.0), at)
    print("  cheapest 8 vCPU / 32 GiB per vendor:")
    for quote in quotes:
        print(f"    {quote.vendor:6s} {quote.instance_type:28s} "
              f"${quote.price:.4f}/h")
    savings = cross_vendor_savings(quotes)
    print(f"  multi-cloud saving: {100 * (savings or 0):.0f}%")

    timelines = availability_timelines(archive,
                                       [T0 + d * 86400.0 for d in range(7)])

    # Section 7's access asymmetry holds in the archive
    assert archive.vendors_with_dataset("price") == ["aws", "azure", "gcp"]
    assert archive.vendors_with_dataset("availability") == ["aws", "azure"]
    assert "gcp" not in timelines
    assert len(quotes) == 3  # every vendor offers the commodity box
    assert savings is not None and savings > 0.0
