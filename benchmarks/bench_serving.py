"""Serving read-path benchmark: repeated-query workload, cached vs not.

The paper's serving path (API Gateway -> Lambda -> Timestream) absorbs
high-frequency polling from dashboards and availability probes; this
bench replays that shape -- the same battery of history/latest requests
over and over -- against a 120-day backfilled archive, once with the
generation-stamped read cache disabled and once enabled.

Acceptance: the cached run must be >= 10x faster, and every cached
response must be byte-identical to its uncached twin.  The JSON report
lands in ``BENCH_serving.json`` next to this file.

Run standalone (CI smoke) or under pytest:

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

import json
import sys
from pathlib import Path

from repro.devtools.servebench import run_serve_bench, summary_lines

#: The acceptance floor for the repeated-query speedup.
MIN_SPEEDUP = 10.0

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def run_and_report(write_report: bool = True) -> dict:
    report = run_serve_bench(seed=0)
    print("\nServing bench: repeated-query workload")
    for line in summary_lines(report):
        print(f"  {line}")
    if write_report:
        # preserve the concurrent-frontend section (bench_frontend.py
        # merges it into the same file)
        payload = dict(report)
        if REPORT_PATH.exists():
            try:
                old = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                old = {}
            if "concurrent" in old:
                payload["concurrent"] = old["concurrent"]
        REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
        print(f"  report written to {REPORT_PATH}")
    return report


def test_serving_cache_speedup_and_byte_identity():
    report = run_and_report()
    assert report["byte_identical"], \
        "cached responses diverge from uncached responses"
    assert report["speedup"] >= MIN_SPEEDUP, \
        f"speedup {report['speedup']:.1f}x below the {MIN_SPEEDUP:.0f}x floor"
    cache = report["metrics"]["cache"]
    assert cache["hit_rate"] > 0.9, cache


if __name__ == "__main__":
    result = run_and_report()
    ok = result["byte_identical"] and result["speedup"] >= MIN_SPEEDUP
    if not ok:
        print(f"FAIL: byte_identical={result['byte_identical']} "
              f"speedup={result['speedup']:.1f}x "
              f"(floor {MIN_SPEEDUP:.0f}x)", file=sys.stderr)
    sys.exit(0 if ok else 1)
