"""Storage engine benchmark: WAL ingest overhead, recovery, compaction.

The durability layer (``repro.storage``) group-commits every collection
round to a write-ahead log and periodically folds the log into sorted
segments.  This bench answers whether that protection is cheap enough to
leave on: it drives the archive's ingest path with the WAL off and on,
times crash recovery from a pure log replay and from a checkpointed
directory, and reports compaction write amplification.

Acceptance: WAL-on ingest must cost < 2x the no-WAL baseline, and the
recovered store must be byte-identical to the live one.  The JSON report
lands in ``BENCH_storage.json`` next to this file's parent.

Run standalone (CI smoke) or under pytest:

    PYTHONPATH=src python benchmarks/bench_storage.py
    PYTHONPATH=src python -m pytest benchmarks/bench_storage.py -q
"""

import json
import sys
from pathlib import Path

from repro.devtools.storagebench import run_storage_bench, summary_lines

#: The acceptance ceiling for WAL-on ingest cost (ratio to no-WAL).
MAX_OVERHEAD = 2.0

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_storage.json"


def run_and_report(write_report: bool = True) -> dict:
    report = run_storage_bench()
    print("\nStorage bench: WAL ingest, recovery, compaction")
    for line in summary_lines(report):
        print(f"  {line}")
    if write_report:
        REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
        print(f"  report written to {REPORT_PATH}")
    return report


def test_wal_overhead_and_recovery_identity():
    report = run_and_report()
    ratio = report["ingest"]["overhead_ratio"]
    assert ratio < MAX_OVERHEAD, \
        f"WAL ingest overhead {ratio:.2f}x exceeds the " \
        f"{MAX_OVERHEAD:.1f}x ceiling"
    assert report["recovery"]["byte_identical"], \
        "recovered store diverges from the live store"
    assert not report["recovery"]["data_loss"], \
        "clean-shutdown recovery reported data loss"
    assert report["compaction"]["checkpoints"] > 0
    assert report["compaction"]["live_segment_bytes"] > 0


if __name__ == "__main__":
    result = run_and_report()
    ratio = result["ingest"]["overhead_ratio"]
    ok = (ratio < MAX_OVERHEAD and result["recovery"]["byte_identical"]
          and not result["recovery"]["data_loss"])
    if not ok:
        print(f"FAIL: overhead={ratio:.2f}x (ceiling {MAX_OVERHEAD:.1f}x) "
              f"byte_identical={result['recovery']['byte_identical']} "
              f"data_loss={result['recovery']['data_loss']}",
              file=sys.stderr)
    sys.exit(0 if ok else 1)
