"""Storage engine benchmark: WAL ingest overhead, recovery, compaction.

The durability layer (``repro.storage``) group-commits every collection
round to a write-ahead log and periodically folds the log into sorted
segments.  This bench answers whether that protection is cheap enough to
leave on: it drives the archive's ingest path with the WAL off and on,
times crash recovery from a pure log replay and from a checkpointed
directory, and reports compaction write amplification.

Acceptance: WAL-on ingest must cost < 2x the no-WAL baseline, the
recovered store must be byte-identical to the live one, and the v2
columnar segment codec must beat the v1 JSON-lines codec by >= 2x on
bytes-on-disk and >= 3x on cold windowed-scan rows/sec.  The JSON
report lands in ``BENCH_storage.json`` next to this file's parent.

Run standalone (CI smoke) or under pytest:

    PYTHONPATH=src python benchmarks/bench_storage.py
    PYTHONPATH=src python -m pytest benchmarks/bench_storage.py -q
"""

import json
import sys
from pathlib import Path

from repro.devtools.storagebench import run_storage_bench, summary_lines

#: The acceptance ceiling for WAL-on ingest cost (ratio to no-WAL).
MAX_OVERHEAD = 2.0
#: v2 columnar codec gates vs the v1 JSON-lines codec.
MIN_SIZE_RATIO = 2.0
MIN_SCAN_SPEEDUP = 3.0

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_storage.json"


def run_and_report(write_report: bool = True) -> dict:
    report = run_storage_bench()
    print("\nStorage bench: WAL ingest, recovery, compaction")
    for line in summary_lines(report):
        print(f"  {line}")
    if write_report:
        # merge, don't overwrite: foreign sections (e.g. the lake bench's
        # "lake" key) survive a storage-only rerun
        merged = {}
        if REPORT_PATH.exists():
            merged = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
        merged.update(report)
        REPORT_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
        print(f"  report written to {REPORT_PATH}")
    return report


def test_wal_overhead_and_recovery_identity():
    report = run_and_report()
    ratio = report["ingest"]["overhead_ratio"]
    assert ratio < MAX_OVERHEAD, \
        f"WAL ingest overhead {ratio:.2f}x exceeds the " \
        f"{MAX_OVERHEAD:.1f}x ceiling"
    assert report["recovery"]["byte_identical"], \
        "recovered store diverges from the live store"
    assert not report["recovery"]["data_loss"], \
        "clean-shutdown recovery reported data loss"
    assert report["compaction"]["checkpoints"] > 0
    assert report["compaction"]["live_segment_bytes"] > 0
    codec = report["codec"]
    assert codec["size_ratio"] >= MIN_SIZE_RATIO, \
        f"v2 segments only {codec['size_ratio']:.2f}x smaller than v1 " \
        f"(gate {MIN_SIZE_RATIO:.1f}x)"
    assert codec["scan_speedup"] >= MIN_SCAN_SPEEDUP, \
        f"v2 windowed scan only {codec['scan_speedup']:.2f}x faster than " \
        f"v1 (gate {MIN_SCAN_SPEEDUP:.1f}x)"


def _gates_pass(result: dict) -> bool:
    codec = result["codec"]
    return (result["ingest"]["overhead_ratio"] < MAX_OVERHEAD
            and result["recovery"]["byte_identical"]
            and not result["recovery"]["data_loss"]
            and codec["size_ratio"] >= MIN_SIZE_RATIO
            and codec["scan_speedup"] >= MIN_SCAN_SPEEDUP)


if __name__ == "__main__":
    result = run_and_report()
    if not _gates_pass(result):
        codec = result["codec"]
        print(f"FAIL: overhead={result['ingest']['overhead_ratio']:.2f}x "
              f"(ceiling {MAX_OVERHEAD:.1f}x) "
              f"byte_identical={result['recovery']['byte_identical']} "
              f"data_loss={result['recovery']['data_loss']} "
              f"codec_size={codec['size_ratio']:.2f}x "
              f"(gate {MIN_SIZE_RATIO:.1f}x) "
              f"codec_scan={codec['scan_speedup']:.2f}x "
              f"(gate {MIN_SCAN_SPEEDUP:.1f}x)",
              file=sys.stderr)
        sys.exit(1)
    sys.exit(0)
