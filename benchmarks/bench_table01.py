"""Table 1: spot request status taxonomy and lifecycle transitions."""

from repro.cloudsim import (
    ALLOWED_TRANSITIONS,
    RequestState,
    STATE_DESCRIPTIONS,
    SimulatedCloud,
    Account,
)


def test_table01_request_states(benchmark):
    """Print the Table 1 rows and benchmark request timeline generation."""
    print("\nTable 1: possible spot instance request status")
    for state in RequestState:
        print(f"  {state.value:20s} {STATE_DESCRIPTIONS[state]}")

    cloud = SimulatedCloud(seed=0)
    client = cloud.client(Account("bench"))

    def submit_batch():
        ids = [client.request_spot_instances("m5.large", "us-east-1a",
                                             0.096, persistent=True)
               for _ in range(20)]
        return [cloud.get_request(rid) for rid in ids]

    requests = benchmark(submit_batch)

    # every generated timeline only uses legal Table-1 transitions
    for request in requests:
        previous = RequestState.PENDING_EVALUATION
        for event in request.events:
            assert event.state in ALLOWED_TRANSITIONS[previous], (
                f"illegal transition {previous} -> {event.state}")
            previous = event.state
    assert len(STATE_DESCRIPTIONS) == 4
