"""Table 2: value distribution of the placement and interruption-free
scores (paper: SPS 87.88 / 3.81 / 8.31 %; IF 33.05 / 25.92 / 13.86 / 6.33 /
20.84 %).

Unlike the heatmap benches (which stratify pools by class for row
coverage), this bench samples pools *uniformly* so the marginal
distribution matches the catalog-wide one the paper reports.
"""

import numpy as np

from repro import ServiceConfig, SpotLakeService
from repro.analysis import value_distribution


def test_table02_value_distribution(benchmark):
    service = SpotLakeService(ServiceConfig(seed=0))
    pools = service.cloud.catalog.all_pools()
    rng = np.random.default_rng(7)
    subset = [pools[i] for i in rng.choice(len(pools), 500, replace=False)]
    start = service.cloud.clock.start
    times = [start + d * 86400.0 + 21600.0 for d in range(0, 181, 2)]

    def build():
        service.bulk_backfill(times, pools=subset, include_price=False)
        return value_distribution(service.archive, times)

    dist = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\nTable 2: score value distribution")
    print(f"  {'value':>5s} {'SPS %':>8s} {'IF %':>8s}   (paper SPS / IF)")
    paper = {3.0: (87.88, 33.05), 2.5: (None, 25.92), 2.0: (3.81, 13.86),
             1.5: (None, 6.33), 1.0: (8.31, 20.84)}
    for value in (3.0, 2.5, 2.0, 1.5, 1.0):
        sps = dist.sps_percent.get(value)
        ifp = dist.if_percent.get(value)
        ref_s, ref_i = paper[value]
        sps_txt = f"{sps:8.2f}" if sps is not None else "      NA"
        ref_s_txt = f"{ref_s:.2f}" if ref_s is not None else "NA"
        print(f"  {value:5.1f} {sps_txt} {ifp:8.2f}   ({ref_s_txt} / {ref_i:.2f})")

    # shape: SPS mass concentrated at 3.0, 1.0 above 2.0; IF spread wide
    assert dist.sps_percent[3.0] > 80.0
    assert dist.sps_percent[1.0] > dist.sps_percent[2.0]
    assert dist.if_percent[3.0] == max(dist.if_percent.values())
    assert all(dist.if_percent[v] > 3.0 for v in (3.0, 2.5, 2.0, 1.5, 1.0))
