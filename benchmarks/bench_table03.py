"""Table 3: not-fulfilled and interrupted rates per score combination
(paper: H-H 0/14.71, H-L 0/40.52, M-M 25.49/39.22, L-H 58.18/30.91,
L-L 45.61/45.61)."""

from repro.experiments import table3

PAPER = {
    "H-H": (0.0, 14.71),
    "H-L": (0.0, 40.52),
    "M-M": (25.49, 39.22),
    "L-H": (58.18, 30.91),
    "L-L": (45.61, 45.61),
}


def test_table03_outcomes(benchmark, experiment_world):
    _, _, _, results = experiment_world

    rows = benchmark.pedantic(lambda: table3(results), rounds=1, iterations=1)

    print(f"\nTable 3: outcome rates over {len(results)} cases "
          "(paper used 503)")
    print(f"  {'combo':6s} {'not-fulfilled':>14s} {'interrupted':>12s}"
          f"   (paper NF / INT)")
    by_combo = {}
    for row in rows:
        ref = PAPER[row.combo]
        print(f"  {row.combo:6s} {row.not_fulfilled_percent:13.1f}% "
              f"{row.interrupted_percent:11.1f}%   "
              f"({ref[0]:.1f} / {ref[1]:.1f})")
        by_combo[row.combo] = row

    # shape assertions from the paper's key findings
    assert by_combo["H-H"].not_fulfilled_percent == 0.0
    assert by_combo["H-L"].not_fulfilled_percent == 0.0
    assert by_combo["H-H"].interrupted_percent == min(
        r.interrupted_percent for r in rows)
    assert by_combo["L-H"].not_fulfilled_percent > 40.0
    assert by_combo["L-H"].not_fulfilled_percent > \
        by_combo["L-L"].not_fulfilled_percent
    assert by_combo["L-L"].interrupted_percent > 35.0
    assert by_combo["M-M"].not_fulfilled_percent > 15.0
