"""Table 4: spot status prediction -- current-value heuristics vs a random
forest over the archive's historical dataset (paper: IF 0.45/0.43, SPS
0.64/0.58, CostSave 0.39/0.28, RF 0.73/0.73)."""

from repro.experiments import prediction_study

PAPER = {"IF": (0.45, 0.43), "SPS": (0.64, 0.58),
         "CostSave": (0.39, 0.28), "RF": (0.73, 0.73)}


def test_table04_prediction(benchmark, experiment_world, prediction_archive):
    _, submit, _, results = experiment_world

    scores = benchmark.pedantic(
        lambda: prediction_study(prediction_archive, results, submit,
                                 n_estimators=100, seed=0),
        rounds=1, iterations=1)

    print("\nTable 4: spot status prediction performance")
    print(f"  {'method':10s} {'accuracy':>9s} {'f1':>6s}   (paper acc/f1)")
    by_method = {}
    for score in scores:
        ref = PAPER[score.method]
        print(f"  {score.method:10s} {score.accuracy:9.2f} {score.f1:6.2f}"
              f"   ({ref[0]:.2f} / {ref[1]:.2f})")
        by_method[score.method] = score

    # the paper's headline: the model using the archive's history wins
    assert by_method["RF"].accuracy > by_method["SPS"].accuracy
    assert by_method["RF"].accuracy > by_method["IF"].accuracy
    assert by_method["RF"].accuracy > by_method["CostSave"].accuracy
    assert by_method["RF"].f1 > by_method["SPS"].f1
    # SPS is the strongest current-value heuristic
    assert by_method["SPS"].accuracy > by_method["IF"].accuracy
    assert by_method["SPS"].accuracy > by_method["CostSave"].accuracy
