"""Shared fixtures for the table/figure reproduction benches.

Heavy artifacts (a backfilled archive, the 505-case experiment) are built
once per session and shared; each bench then measures and prints its own
table or figure series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ServiceConfig, SimulatedCloud, SpotLakeService
from repro.experiments import ExperimentRunner, sample_cases

#: Deterministic world seed for all benches.
SEED = 0

#: Archive shape used by the Section 5.1-5.3 benches: a class-stratified
#: pool subset sampled twice a day across the paper's 181-day window.
ARCHIVE_POOLS = 360
ARCHIVE_DAYS = 181
ARCHIVE_SAMPLES_PER_DAY = 2


def _stratified_pools(cloud: SimulatedCloud, count: int):
    """Pick pools spread across instance classes (so every heatmap row has
    data), deterministically."""
    catalog = cloud.catalog
    by_class = {c: [] for c in catalog.classes}
    for pool in catalog.all_pools():
        by_class[catalog.instance_type(pool[0]).class_letter].append(pool)
    rng = np.random.default_rng(SEED)
    picked = []
    classes = [c for c in catalog.classes if by_class[c]]
    per_class = max(1, count // len(classes))
    for cls in classes:
        pools = by_class[cls]
        take = min(per_class, len(pools))
        idx = rng.choice(len(pools), size=take, replace=False)
        picked.extend(pools[i] for i in idx)
    return picked


@pytest.fixture(scope="session")
def archive_service():
    """A SpotLake service with a 181-day backfilled archive."""
    service = SpotLakeService(ServiceConfig(seed=SEED))
    pools = _stratified_pools(service.cloud, ARCHIVE_POOLS)
    start = service.cloud.clock.start
    times = [start + d * 86400.0 + h * 43200.0 + 21600.0
             for d in range(ARCHIVE_DAYS)
             for h in range(ARCHIVE_SAMPLES_PER_DAY)]
    service.bulk_backfill(times, pools=pools)
    service._bench_times = times          # shared sampling grid
    service._bench_pools = pools
    return service


@pytest.fixture(scope="session")
def archive_times(archive_service):
    return archive_service._bench_times


@pytest.fixture(scope="session")
def experiment_world():
    """The Section 5.4 experiment: 505 stratified 24-hour cases."""
    cloud = SimulatedCloud(seed=SEED)
    submit = cloud.clock.start + 35 * 86400.0
    cloud.clock.set(submit)
    cases = sample_cases(cloud, submit, per_combo=101)
    results = ExperimentRunner(cloud).run_all(cases)
    return cloud, submit, cases, results


@pytest.fixture(scope="session")
def prediction_archive(experiment_world):
    """Archive holding the preceding month of history for the case pools."""
    cloud, submit, cases, results = experiment_world
    service = SpotLakeService(ServiceConfig(seed=SEED), cloud=cloud)
    pools = sorted({(c.instance_type, c.region, c.availability_zone)
                    for c in cases})
    times = np.linspace(submit - 32 * 86400.0, submit, 80)
    service.bulk_backfill(times.tolist(), pools=pools, include_price=False)
    return service.archive
