"""Availability experiment: which dataset predicts real spot behaviour?

Reproduces the Section 5.4 protocol end to end: stratify capacity pools by
their (placement score, interruption-free score) combination, under-sample
to balanced strata, submit persistent spot requests bid at the on-demand
price, watch them for 24 hours, and report the not-fulfilled / interrupted
rates per combination (the paper's Table 3) plus fulfillment-latency
percentiles (Figure 11a).

    python examples/availability_experiment.py
"""

from repro import SimulatedCloud
from repro.experiments import (
    ExperimentRunner,
    combo_counts,
    fulfillment_latency_cdfs,
    run_duration_cdfs,
    sample_cases,
    scan_candidates,
    table3,
)


def main() -> None:
    cloud = SimulatedCloud(seed=0)
    submit_time = cloud.clock.start + 35 * 86400  # a month into the window
    cloud.clock.set(submit_time)

    candidates = scan_candidates(cloud, submit_time)
    counts = combo_counts(candidates)
    print("candidate pools per score combination:")
    for combo, count in counts.items():
        print(f"  {combo}: {count}")
    scarcest = min((c for c in counts if counts[c]), key=counts.get)
    print(f"(the scarcest combo, {scarcest}, bounds the per-stratum sample "
          f"size -- the paper's was L-H too)\n")

    cases = sample_cases(cloud, submit_time, per_combo=101)
    print(f"running {len(cases)} stratified 24-hour experiments "
          f"(paper: 503 cases)...")
    results = ExperimentRunner(cloud).run_all(cases)

    print(f"\n{'combo':6s} {'not-fulfilled':>14s} {'interrupted':>12s}")
    for row in table3(results):
        print(f"{row.combo:6s} {row.not_fulfilled_percent:13.1f}% "
              f"{row.interrupted_percent:11.1f}%")
    print("paper:  H-H 0/14.7  H-L 0/40.5  M-M 25.5/39.2  "
          "L-H 58.2/30.9  L-L 45.6/45.6")

    latency = fulfillment_latency_cdfs(results)
    duration = run_duration_cdfs(results)
    print(f"\n{'combo':6s} {'ful. median':>12s} {'<1 s':>6s} {'<135 s':>7s} "
          f"{'run median':>12s}")
    for combo in ("H-H", "H-L", "M-M", "L-H", "L-L"):
        print(f"{combo:6s} {latency.median(combo):11.0f}s "
              f"{100 * latency.fraction_below(combo, 1):5.0f}% "
              f"{100 * latency.fraction_below(combo, 135):6.0f}% "
              f"{duration.median(combo):11.0f}s")
    print("\nkey finding (paper): when the two scores disagree, follow the "
          "placement score -- high SPS always fulfilled, and H-L runs "
          "longer than L-H before interruption.")


if __name__ == "__main__":
    main()
