"""GPU training on spot instances: policy comparison.

The DeepSpotCloud scenario from the paper's related work: schedule DNN
training jobs onto GPU spot pools spread across regions.  Compares pool
selection policies -- cheapest-price, current-score, and the
archive-informed historical policy that only a SpotLake deployment makes
possible -- on completion, makespan, cost and interruptions.

    python examples/gpu_training_scheduler.py
"""

import numpy as np

from repro import ServiceConfig, SpotLakeService
from repro.apps import ALL_POLICIES, JobSpec, compare_policies


def main() -> None:
    service = SpotLakeService(ServiceConfig(seed=0))
    cloud = service.cloud
    start = cloud.clock.start + 40 * 86400.0
    cloud.clock.set(start)

    # candidate pools: every GPU-bearing (accelerated P/G) pool
    gpu_pools = [
        pool for pool in cloud.catalog.all_pools()
        if cloud.catalog.instance_type(pool[0]).class_letter in ("P", "G")
    ]
    print(f"candidate GPU pools: {len(gpu_pools)} across "
          f"{len({p[1] for p in gpu_pools})} regions")

    # the historical policy needs archived history: backfill a month
    times = np.linspace(start - 30 * 86400.0, start, 30)
    service.bulk_backfill(times.tolist(), pools=gpu_pools,
                          include_price=False)

    job = JobSpec(work_hours=24.0, checkpoint_interval_hours=1.0)
    print(f"job: {job.work_hours} h of training, checkpoints every "
          f"{job.checkpoint_interval_hours} h\n")

    outcomes = compare_policies(
        cloud, [policy_cls() for policy_cls in ALL_POLICIES],
        gpu_pools, job, start, jobs_per_policy=30,
        archive=service.archive)

    print(f"{'policy':12s} {'done':>6s} {'makespan':>9s} {'cost':>8s} "
          f"{'interrupts':>11s} {'efficiency':>11s}")
    for o in outcomes:
        print(f"{o.policy:12s} {100 * o.completion_rate:5.0f}% "
              f"{o.mean_makespan_hours:8.1f}h {o.mean_cost:7.2f}$ "
              f"{o.mean_interruptions:10.2f} {o.mean_efficiency:10.2f}")

    by_name = {o.policy: o for o in outcomes}
    print("\ntakeaways:")
    print(f"  cheapest-price pays {by_name['cheapest'].mean_cost:.2f}$ but "
          f"suffers {by_name['cheapest'].mean_interruptions:.2f} "
          f"interruptions per job;")
    print(f"  the archive-informed policy completes "
          f"{100 * by_name['historical'].completion_rate:.0f}% with "
          f"{by_name['historical'].mean_interruptions:.2f} interruptions -- "
          "the availability data the paper's service exists to provide.")


if __name__ == "__main__":
    main()
