"""Interruption prediction: the value of *historical* spot data.

Reproduces Section 5.5 / Table 4: a random forest trained on features from
the preceding month of archived placement-score and interruption-free
history, compared against the three heuristics a user without an archive
could implement (thresholding the *current* IF score, SPS, or cost saving).

    python examples/interruption_prediction.py
"""

import numpy as np

from repro import ServiceConfig, SpotLakeService
from repro.experiments import (
    ExperimentRunner,
    FEATURE_NAMES,
    prediction_study,
    sample_cases,
)


def main() -> None:
    service = SpotLakeService(ServiceConfig(seed=0))
    cloud = service.cloud
    submit_time = cloud.clock.start + 35 * 86400
    cloud.clock.set(submit_time)

    # 1. run the real-request experiment that provides the labels
    cases = sample_cases(cloud, submit_time, per_combo=101)
    print(f"label source: {len(cases)} stratified 24-hour experiments")
    results = ExperimentRunner(cloud).run_all(cases)

    # 2. backfill the archive with the preceding month of history for the
    #    pools under study (what the SpotLake service would already hold)
    pools = sorted({(c.instance_type, c.region, c.availability_zone)
                    for c in cases})
    sample_times = np.linspace(submit_time - 32 * 86400, submit_time, 80)
    service.bulk_backfill(sample_times.tolist(), pools=pools,
                          include_price=False)
    print(f"archive backfilled for {len(pools)} pools x "
          f"{len(sample_times)} instants")
    print(f"features per case: {', '.join(FEATURE_NAMES)}\n")

    # 3. Table 4
    print(f"{'method':10s} {'accuracy':>9s} {'f1':>6s}")
    for score in prediction_study(service.archive, results, submit_time):
        print(f"{score.method:10s} {score.accuracy:9.2f} {score.f1:6.2f}")
    print("\npaper:     IF 0.45/0.43, SPS 0.64/0.58, "
          "CostSave 0.39/0.28, RF 0.73/0.73")
    print("key finding: the model with access to the archive's historical "
          "dataset beats every current-value heuristic.")


if __name__ == "__main__":
    main()
