"""Multi-region collection under the unique-query quota.

Demonstrates SpotLake's core engineering problem (paper Section 3): the
placement-score API caps one query at 10 result rows and one account at
~50 unique queries per rolling 24 hours.  This example plans the full
547-type catalog, shows the bin-packing win (Figure 1), sizes the account
pool, and demonstrates what happens when a single account tries to run the
plan alone.

    python examples/multi_region_collection.py
"""

from repro import Account, AccountPool, SimulatedCloud
from repro.cloudsim import QuotaExceededError, make_query_key
from repro.core import SpotLakeArchive, SpsCollector, plan_for_catalog, pack_example


def main() -> None:
    cloud = SimulatedCloud(seed=0)
    catalog = cloud.catalog
    print(f"catalog: {catalog.summary()}\n")

    # --- Figure 1: the bin-packing query optimization ---
    plan = plan_for_catalog(catalog)
    print(f"naive plan (one query per offered type-region pair): "
          f"{plan.naive_query_count} queries")
    print(f"paper-style upper bound (types x regions): "
          f"{plan.pair_bound_query_count} queries")
    print(f"bin-packed plan: {plan.optimized_query_count} queries "
          f"({plan.bound_reduction_factor:.1f}x below the bound; "
          f"paper: 9,299 -> 2,226, ~4.5x)\n")

    groups = pack_example(catalog.offering_map(), "p3.2xlarge")
    print("p3.2xlarge packing (the paper's Figure 1 walk-through):")
    for i, group in enumerate(groups):
        rows = sum(z for _, z in group)
        packed = ", ".join(f"{region}({zones})" for region, zones in group)
        print(f"  query {i}: {packed} -> {rows} result rows (cap 10)")

    # --- one account cannot run the plan ---
    lone = Account("lone-wolf")
    client = cloud.client(lone)
    issued = 0
    try:
        for query in plan.queries:
            client.get_spot_placement_scores(
                [query.instance_type], list(query.regions),
                single_availability_zone=True)
            issued += 1
    except QuotaExceededError:
        print(f"\nsingle account exhausted after {issued} unique queries "
              f"(quota {lone.quota}) -- as the paper observed")

    # --- the account pool makes the plan feasible ---
    needed = AccountPool.size_for(plan.optimized_query_count)
    pool = AccountPool(needed)
    print(f"account pool sized for the plan: {needed} accounts")
    archive = SpotLakeArchive()
    collector = SpsCollector(cloud, archive, pool, plan)
    report = collector.collect()
    print(f"full collection round: {report.queries_issued} queries, "
          f"{report.queries_failed} failed, "
          f"{report.records_written} zone scores archived, "
          f"{report.accounts_used} accounts used")


if __name__ == "__main__":
    main()
