"""Multi-vendor spot dataset comparison (paper Section 7).

Collects AWS, Azure and GCP spot datasets into one global-key archive and
runs the cross-vendor analyses the paper motivates: which vendor offers
the cheapest equivalent hardware right now, and what availability signal
each vendor even publishes.

    python examples/multicloud_comparison.py
"""

from repro.cloudsim import SimulatedCloud
from repro.multicloud import (
    AwsAdapter,
    AzureAdapter,
    GcpAdapter,
    HardwareProfile,
    MultiCloudArchive,
    availability_timelines,
    cheapest_by_vendor,
    cross_vendor_savings,
)


def main() -> None:
    vendors = [AwsAdapter(SimulatedCloud(seed=0)), AzureAdapter(), GcpAdapter()]
    archive = MultiCloudArchive(vendors)

    print("vendor dataset access (paper Section 7):")
    for vendor in vendors:
        print(f"  {vendor.name:6s} price={vendor.access.price.value:4s} "
              f"availability={vendor.access.availability.value:4s} "
              f"interruption={vendor.access.interruption.value}")

    t0 = 1640995200.0 + 30 * 86400.0
    for day in range(3):
        report = archive.collect(t0 + day * 86400.0,
                                 max_offerings_per_vendor=400)
    print(f"\ncollected {report.total_records} records/round; datasets "
          f"missing per vendor: {report.datasets_missing}")

    print("\ncheapest equivalent hardware per vendor (global-key join):")
    for profile, label in ((HardwareProfile(8, 32.0), "8 vCPU / 32 GiB"),
                           (HardwareProfile(16, 64.0), "16 vCPU / 64 GiB")):
        quotes = cheapest_by_vendor(archive, profile, t0 + 2 * 86400.0)
        print(f"  {label}:")
        for quote in quotes:
            print(f"    {quote.vendor:6s} {quote.instance_type:28s} "
                  f"{quote.region:18s} ${quote.price:.4f}/h")
        savings = cross_vendor_savings(quotes)
        if savings is not None:
            print(f"    -> multi-cloud saving: {100 * savings:.0f}% "
                  "cheapest vs dearest")

    times = [t0 + d * 86400.0 for d in range(3)]
    timelines = availability_timelines(archive, times)
    print("\nmean published availability per vendor over 3 days:")
    for vendor, series in sorted(timelines.items()):
        values = ", ".join(f"{v:.2f}" for v in series)
        print(f"  {vendor:6s} [{values}]")
    print("  gcp    (publishes no availability dataset at all)")


if __name__ == "__main__":
    main()
