"""Quickstart: stand up a SpotLake service, collect data, query history.

Runs the full Figure-2 pipeline on a small slice of the catalog: the
bin-packed query plan executes against the quota-limited placement-score
API, the advisor snapshot is scraped, prices are recorded, and the archive
is then queried through the serverless-style gateway.

    python examples/quickstart.py
"""

from repro import ServiceConfig, SpotLakeService

# A handful of types spanning the paper's five instance categories.
INSTANCE_TYPES = [
    "m5.large",        # general
    "c5.xlarge",       # compute-optimized
    "r5.2xlarge",      # memory-optimized
    "p3.2xlarge",      # accelerated (GPU)
    "g4dn.xlarge",     # accelerated (GPU, affordable tier)
    "i3.large",        # storage-optimized
]


def main() -> None:
    service = SpotLakeService(ServiceConfig(seed=0, instance_types=INSTANCE_TYPES))
    cloud = service.cloud

    plan = service.plan
    print(f"query plan: {plan.naive_query_count} naive -> "
          f"{plan.optimized_query_count} packed queries "
          f"({plan.reduction_factor:.2f}x fewer)")
    print(f"account pool: {len(service.accounts)} account(s)\n")

    # three collection rounds, 10 minutes apart (the paper's cadence)
    for round_no in range(3):
        reports = service.collect_once()
        sps = reports["sps"]
        print(f"round {round_no}: {sps.queries_issued} SPS queries, "
              f"{sps.records_written} scores, "
              f"{reports['advisor'].records_written} advisor records, "
              f"{reports['price'].records_written} prices")
        cloud.clock.advance_minutes(10)

    print("\narchive statistics (note the change-point dedup):")
    for table, stats in service.archive.stats().items():
        if "records_written" not in stats:
            continue  # engine sections (e.g. "analytics"), not tables
        print(f"  {table}: {stats['records_written']} written, "
              f"{stats['change_points_stored']} stored, "
              f"{stats['series']} series")

    # query the service like a web client would
    now = cloud.clock.now()
    response = service.gateway.get("/latest", {
        "instance_type": "p3.2xlarge",
        "region": "us-east-1",
        "zone": "us-east-1a",
        "at": str(now),
    })
    print(f"\nGET /latest p3.2xlarge us-east-1a -> {response.status}")
    for key, value in sorted(response.body.items()):
        print(f"  {key}: {value}")

    history = service.gateway.get("/sps/history", {
        "instance_type": "p3.2xlarge",
        "region": "us-east-1",
        "start": str(now - 3600),
        "end": str(now),
    })
    print(f"\nGET /sps/history -> {history.status}, "
          f"{history.body['count']} change points")


if __name__ == "__main__":
    main()
