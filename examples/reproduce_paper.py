"""Reproduce the paper's headline tables in one run.

The IISWC artifact ships preprocessed data and scripts that regenerate
every figure and table "in about 1 minute"; this script is the equivalent
entry point for the simulated reproduction.  It prints Table 1, the
Figure-1 query-plan numbers, Table 2, Table 3 and Table 4 compactly.
(For the full per-figure series, run ``pytest benchmarks/ --benchmark-only
-s``.)

    python examples/reproduce_paper.py
"""

import numpy as np

from repro import ServiceConfig, SimulatedCloud, SpotLakeService
from repro.analysis import value_distribution
from repro.cloudsim import RequestState, STATE_DESCRIPTIONS
from repro.core import plan_for_catalog
from repro.experiments import (
    ExperimentRunner,
    prediction_study,
    sample_cases,
    table3,
)


def main() -> None:
    print("=" * 64)
    print("Table 1: spot request status")
    print("=" * 64)
    for state in RequestState:
        print(f"  {state.value:20s} {STATE_DESCRIPTIONS[state][:44]}")

    cloud = SimulatedCloud(seed=0)
    print("\n" + "=" * 64)
    print("Figure 1: bin-packed query plan")
    print("=" * 64)
    plan = plan_for_catalog(cloud.catalog)
    print(f"  {plan.pair_bound_query_count} (bound, paper 9,299) -> "
          f"{plan.optimized_query_count} packed (paper 2,226), "
          f"{plan.bound_reduction_factor:.2f}x (paper ~4.5x)")

    print("\n" + "=" * 64)
    print("Table 2: score value distribution")
    print("=" * 64)
    service = SpotLakeService(ServiceConfig(seed=0))
    pools = service.cloud.catalog.all_pools()
    rng = np.random.default_rng(7)
    subset = [pools[i] for i in rng.choice(len(pools), 350, replace=False)]
    start = service.cloud.clock.start
    times = [start + d * 86400.0 + 21600.0 for d in range(0, 181, 4)]
    service.bulk_backfill(times, pools=subset, include_price=False)
    dist = value_distribution(service.archive, times)
    paper = {3.0: ("87.88", "33.05"), 2.5: ("   NA", "25.92"),
             2.0: (" 3.81", "13.86"), 1.5: ("   NA", " 6.33"),
             1.0: (" 8.31", "20.84")}
    print(f"  {'value':>5s} {'SPS%':>7s} {'IF%':>7s}    (paper)")
    for value in (3.0, 2.5, 2.0, 1.5, 1.0):
        sps = dist.sps_percent.get(value)
        sps_txt = f"{sps:7.2f}" if sps is not None else "     NA"
        print(f"  {value:5.1f} {sps_txt} {dist.if_percent[value]:7.2f}"
              f"    ({paper[value][0]} / {paper[value][1]})")

    print("\n" + "=" * 64)
    print("Table 3: fulfillment & interruption per score combo")
    print("=" * 64)
    submit = cloud.clock.start + 35 * 86400.0
    cloud.clock.set(submit)
    cases = sample_cases(cloud, submit, per_combo=101)
    results = ExperimentRunner(cloud).run_all(cases)
    paper3 = {"H-H": "0 / 14.7", "H-L": "0 / 40.5", "M-M": "25.5 / 39.2",
              "L-H": "58.2 / 30.9", "L-L": "45.6 / 45.6"}
    for row in table3(results):
        print(f"  {row.combo:5s} NF {row.not_fulfilled_percent:5.1f}%  "
              f"INT {row.interrupted_percent:5.1f}%   "
              f"(paper {paper3[row.combo]})")

    print("\n" + "=" * 64)
    print("Table 4: outcome prediction (history vs current-value)")
    print("=" * 64)
    case_pools = sorted({(c.instance_type, c.region, c.availability_zone)
                         for c in cases})
    hist_times = np.linspace(submit - 32 * 86400.0, submit, 80)
    service2 = SpotLakeService(ServiceConfig(seed=0), cloud=cloud)
    service2.bulk_backfill(hist_times.tolist(), pools=case_pools,
                           include_price=False)
    paper4 = {"IF": "0.45/0.43", "SPS": "0.64/0.58",
              "CostSave": "0.39/0.28", "RF": "0.73/0.73"}
    for score in prediction_study(service2.archive, results, submit):
        print(f"  {score.method:9s} acc {score.accuracy:.2f}  "
              f"f1 {score.f1:.2f}   (paper {paper4[score.method]})")
    print("\nSee EXPERIMENTS.md for the full per-figure comparison and")
    print("`pytest benchmarks/ --benchmark-only -s` for every series.")


if __name__ == "__main__":
    main()
