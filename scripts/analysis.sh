#!/usr/bin/env bash
# Vectorized-analytics gate: the engine parity suite (vector == row
# oracle across hot/cold/federated splits), the rollup generation-stamp
# suite, and the /analytics route suite must pass with the runtime
# sanitizer armed; the analysis bench gates (>=5x cold, >=3x heatmap,
# >=10x rollup-warm, worker byte-identity) must pass; spotlint must stay
# clean (DET001 keeps host-clock reads out of the serving path); and
# BENCH_analysis.json must carry the recorded verdicts.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== sanitized analytics suites (parity, rollups, /analytics) =="
SPOTCONC_SANITIZE=1 python -m pytest \
    tests/analysis/test_engine_parity.py \
    tests/core/test_analytics.py \
    tests/serving/test_analytics_route.py \
    tests/lake/test_scan_merge.py -q

echo "== spotlint invariants (layering + determinism) =="
python -m repro.cli lint src/repro

echo "== analysis bench gates (pushdown, rollups, worker identity) =="
python benchmarks/bench_analysis.py

echo "== BENCH_analysis.json carries the verdicts =="
python - <<'EOF'
import json

report = json.load(open("BENCH_analysis.json", encoding="utf-8"))
cold = report["cold_aggregation"]
assert cold["speedup"] >= 5.0 and cold["identical"], cold
assert cold["narrow_pruned"] > 0 and cold["narrow_identical"], cold
heat = report["hot_heatmap"]
assert heat["speedup"] >= 3.0 and heat["byte_identical"], heat
roll = report["rollup"]
assert roll["speedup"] >= 10.0 and roll["identical"], roll
assert roll["partial_reuse_ratio"] > 0.5, roll
assert report["worker_identity"]["byte_identical"], report["worker_identity"]
print("analysis report present; all gates recorded as passing")
EOF
