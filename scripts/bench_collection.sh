#!/usr/bin/env bash
# Collection engine smoke: the parallel engine must beat the serial
# collector (>=2x round latency, >=3x batched ingest) while producing
# byte-identical archives, and the worker sweep must replay identically
# at every worker count -- with and without fault injection.  Override
# the sweep or chaos profile via WORKER_SWEEP / CHAOS_PROFILE, e.g.
#   WORKER_SWEEP=1,8 CHAOS_PROFILE=heavy scripts/bench_collection.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SWEEP="${WORKER_SWEEP:-1,4}"
PROFILE="${CHAOS_PROFILE:-moderate}"
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== collection bench: round latency, ingest, plan cache =="
python benchmarks/bench_collection.py

echo "== worker sweep determinism: workers in {${SWEEP}} =="
python -m repro.devtools.doublerun --rounds 2 --workers-sweep "${SWEEP}"

echo "== worker sweep determinism under chaos: profile=${PROFILE} =="
python -m repro.devtools.doublerun --rounds 2 --workers-sweep "${SWEEP}" \
    --chaos-profile "${PROFILE}"
