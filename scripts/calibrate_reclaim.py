"""Regenerate RECLAIM_REUNIFORM_KNOTS after changing reclaim weights.

Samples the raw reclaim pressure over all (type, region) pairs and several
days, prints the 21 evenly spaced quantiles to paste into
``repro/cloudsim/market.py``.

Usage: python scripts/calibrate_reclaim.py
"""

import numpy as np

from repro.cloudsim import Catalog, SpotMarket


def main() -> None:
    catalog = Catalog(seed=0)
    market = SpotMarket(catalog, seed=0)
    pairs = sorted({(t, r) for (t, r, _z) in catalog.all_pools()})
    sample_days = (5, 35, 65, 95, 125, 155)
    values = [
        market.raw_reclaim(t, r, market.epoch + day * 86400.0)
        for (t, r) in pairs
        for day in sample_days
    ]
    quantiles = np.quantile(np.array(values), np.linspace(0.0, 1.0, 21))
    print(f"# {len(values)} samples over {len(pairs)} (type, region) pairs")
    print("RECLAIM_REUNIFORM_KNOTS = (")
    for i in range(0, 21, 8):
        row = ", ".join(f"{q:.4f}" for q in quantiles[i:i + 8])
        print(f"    {row},")
    print(")")


if __name__ == "__main__":
    main()
