#!/usr/bin/env bash
# Seeded chaos smoke: a short collection run under heavy fault injection
# must finish, account for every planned query, and replay
# byte-identically under the same chaos seed.  Override the profile or
# seed via CHAOS_PROFILE / CHAOS_SEED, e.g.
#   CHAOS_PROFILE=moderate CHAOS_SEED=42 scripts/chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE="${CHAOS_PROFILE:-heavy}"
SEED="${CHAOS_SEED:-7}"
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== chaos smoke: profile=${PROFILE} seed=${SEED} =="
python -m repro.cli collect --rounds 6 --interval-minutes 60 \
    --chaos-profile "${PROFILE}" --chaos-seed "${SEED}"

echo "== chaos determinism: two identically-seeded runs =="
python -m repro.devtools.doublerun --rounds 2 \
    --chaos-profile "${PROFILE}" --chaos-seed "${SEED}"

echo "== chaos test suite =="
python -m pytest tests/chaos -q
