#!/usr/bin/env bash
# Concurrency gate: the static spotconc rules must hold repo-wide, the
# deterministic sanitizer probe must come back clean, and the parallel +
# chaos suites must pass with the sanitizer armed via the autouse
# fixture (SPOTCONC_SANITIZE=1).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== static concurrency rules: CONC001-003 + FLOW001 =="
python -m repro.cli lint src/repro \
    --select CONC001,CONC002,CONC003,FLOW001

echo "== sanitized probe: multi-worker collection under lock tracking =="
python -m repro.cli lint src/repro --sanitize

echo "== sanitized parallel + chaos suites =="
SPOTCONC_SANITIZE=1 python -m pytest tests/core/test_parallel.py \
    tests/chaos -q
