#!/usr/bin/env bash
# Serving-frontend gate: the tests/serving concurrency suite must pass
# with the runtime sanitizer armed, the SLO-gated concurrent bench must
# pass, and its section of BENCH_serving.json must carry every SLO key.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== sanitized serving suite (admission, shedding, worker sweeps) =="
SPOTCONC_SANITIZE=1 python -m pytest tests/serving -q

echo "== SLO-gated concurrent serving bench =="
python benchmarks/bench_frontend.py

echo "== BENCH_serving.json carries the concurrent SLO verdicts =="
python - <<'EOF'
import json

report = json.load(open("BENCH_serving.json", encoding="utf-8"))
slo = report["concurrent"]["slo"]
for key in ("passed", "p99_ok", "error_rate_ok", "fairness_ok",
            "byte_identical_across_workers", "throttling_exercised",
            "retry_after_on_rejections"):
    assert key in slo, f"missing SLO key {key!r}"
assert slo["passed"], slo
print(f"all SLO keys present; passed={slo['passed']}")
EOF
