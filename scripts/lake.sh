#!/usr/bin/env bash
# Tiered-lake gate: the tests/lake suite (merge/diff, cold store,
# federated history, lake crash windows) must pass with the runtime
# sanitizer armed, every lake publish window must recover byte-identical
# under doublerun --durability --lake, the lake bench gates must pass,
# and BENCH_storage.json must carry the lake section's verdicts.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== sanitized lake suite (merge/diff, cold store, federation) =="
SPOTCONC_SANITIZE=1 python -m pytest tests/lake tests/serving/test_rounds_route.py -q

echo "== lake crash windows (doublerun --durability --lake) =="
python -m repro.devtools.doublerun --durability --lake --rounds 4

echo "== lake bench gates (ingest reduction, cold scan, federation) =="
python benchmarks/bench_lake.py

echo "== BENCH_storage.json carries the lake verdicts =="
python - <<'EOF'
import json

report = json.load(open("BENCH_storage.json", encoding="utf-8"))
lake = report["lake"]
assert lake["ingest"]["reduction_ratio"] >= 5.0, lake["ingest"]
assert lake["cold_scan"]["rows_per_second"] >= 1_000_000, lake["cold_scan"]
assert lake["federated"]["latency_ratio"] <= 2.0, lake["federated"]
assert lake["federated"]["byte_identical"], lake["federated"]
assert lake["determinism"]["identical"], lake["determinism"]
print("lake section present; all gates recorded as passing")
EOF
