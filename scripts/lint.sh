#!/usr/bin/env bash
# Repository lint entry point: spotlint invariant checks + (when
# available) a conventional ruff style pass.  Extra arguments are passed
# through to `repro lint`, e.g. scripts/lint.sh --format json.
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.cli lint src/repro "$@"

if command -v ruff >/dev/null 2>&1; then
    ruff check src tests
else
    echo "ruff not installed; style pass skipped (spotlint ran)"
fi
