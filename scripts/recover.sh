#!/usr/bin/env bash
# Inspect (and optionally export) a durable collection data directory.
# Wraps `repro recover`: replays MANIFEST + segments + WAL tail, prints
# the recovered state (rounds, per-table stats, any discarded torn
# tail), and exits 0 only when the directory recovers consistently.
#   scripts/recover.sh ./spotlake-data            # inspect
#   scripts/recover.sh ./spotlake-data ./snapshot # also export snapshot
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 || $# -gt 2 ]]; then
    echo "usage: $0 <data-dir> [output-snapshot-dir]" >&2
    exit 2
fi

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

if [[ $# -eq 2 ]]; then
    exec python -m repro.cli recover --data-dir "$1" --output "$2"
fi
exec python -m repro.cli recover --data-dir "$1"
