"""Empirical tuning loop for the Section 5.4/5.5 calibration constants."""
import numpy as np
from repro.core import SpotLakeService, ServiceConfig
from repro.experiments import sample_cases, ExperimentRunner, table3, prediction_study

def evaluate():
    svc = SpotLakeService(ServiceConfig(seed=0))
    cloud = svc.cloud
    submit = cloud.clock.start + 35*86400
    cloud.clock.set(submit)
    cases = sample_cases(cloud, submit, per_combo=101)
    results = ExperimentRunner(cloud).run_all(cases)
    for row in table3(results):
        print(f'{row.combo}: NF {row.not_fulfilled_percent:.1f}% INT {row.interrupted_percent:.1f}%')
    print('paper: H-H 0/14.7, H-L 0/40.5, M-M 25.5/39.2, L-H 58.2/30.9, L-L 45.6/45.6')
    pools = sorted({(c.instance_type, c.region, c.availability_zone) for c in cases})
    times = np.linspace(submit - 32*86400, submit, 80)
    svc.bulk_backfill(times.tolist(), pools=pools, include_price=False)
    for s in prediction_study(svc.archive, results, submit, n_estimators=60):
        print(f'{s.method}: acc {s.accuracy:.2f} f1 {s.f1:.2f}')
    print('paper: IF 0.45/0.43, SPS 0.64/0.58, CostSave 0.39/0.28, RF 0.73/0.73')

if __name__ == '__main__':
    evaluate()
