"""Setuptools shim: enables legacy editable installs on environments
without the ``wheel`` package (pip install -e . --no-build-isolation)."""

from setuptools import setup

setup()
