"""SpotLake reproduction: diverse spot instance dataset archive service.

Reproduces Lee, Hwang & Lee, *SpotLake: Diverse Spot Instance Dataset
Archive Service* (IISWC 2022) end to end on a deterministic simulated
cloud:

>>> from repro import SpotLakeService, ServiceConfig
>>> service = SpotLakeService(ServiceConfig(seed=0,
...     instance_types=["m5.large", "p3.2xlarge"]))
>>> reports = service.collect_once()
>>> response = service.gateway.get("/latest", {
...     "instance_type": "m5.large", "region": "us-east-1",
...     "at": str(service.cloud.clock.now())})

Package layout
--------------
``repro.cloudsim``
    Simulated AWS-like substrate: catalog, latent market, dataset engines,
    spot request lifecycle, quota-enforcing API client.
``repro.timeseries``
    Embedded time-series store (Timestream stand-in).
``repro.solver``
    Bin-packing solvers (OR-Tools/CBC stand-in).
``repro.core``
    SpotLake itself: query planner, collectors, archive, scheduler, serving.
``repro.mlcore``
    CART / random forest / metrics / sampling (scikit-learn stand-in).
``repro.analysis``
    Section 5.1-5.3 analyses (heatmaps, distributions, correlations, ...).
``repro.experiments``
    Section 5.4-5.5 experiments (fulfillment/interruption, prediction).
"""

from .core import ServiceConfig, SpotLakeArchive, SpotLakeService
from .cloudsim import Account, AccountPool, Catalog, SimulatedCloud

__version__ = "1.0.0"

__all__ = [
    "ServiceConfig", "SpotLakeArchive", "SpotLakeService",
    "Account", "AccountPool", "Catalog", "SimulatedCloud",
    "__version__",
]
