"""Deterministic hashing and random-stream helpers shared across the package.

Every stochastic quantity in the simulated cloud substrate is derived from a
*stable* hash of string parts, so that two processes constructing the same
simulation (same seed) observe the identical world.  Python's builtin
``hash`` is salted per-process and must not be used for this purpose.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

import numpy as np

_MAX64 = float(2**64)


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush a directory's entry table to stable storage.

    ``os.replace`` makes a rename atomic for concurrent *readers*, but
    the new directory entry itself is not durable until the directory is
    fsynced -- a power loss right after the rename can roll it back.
    Platforms whose directories cannot be opened for fsync (notably
    Windows) are skipped; they provide no equivalent primitive.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_open(path: Union[str, Path], encoding: str = "utf-8",
                binary: bool = False,
                sync_directory: bool = False) -> Iterator[TextIO]:
    """Open ``path`` for writing with all-or-nothing visibility.

    The content is streamed into a temporary file in the same directory
    and published with ``os.replace`` only when the body completes, so a
    crash (or exception) mid-write can never truncate or corrupt the
    previous version of the file.  On failure the temporary is removed.
    ``binary`` opens the temporary in ``"wb"`` mode; ``sync_directory``
    additionally fsyncs the parent directory after the rename so the
    publish itself survives power loss (see :func:`fsync_directory`).
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=f".{path.name}.", suffix=".tmp")
    try:
        if binary:
            fh = os.fdopen(fd, "wb")
        else:
            fh = os.fdopen(fd, "w", encoding=encoding)
        with fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
        if sync_directory:
            fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def stable_hash(*parts: object) -> int:
    """Return a deterministic 64-bit hash of the given parts.

    Parts are converted with ``str`` and joined with an unlikely separator;
    the digest is stable across processes and Python versions.
    """
    joined = "\x1f".join(str(p) for p in parts)
    digest = hashlib.blake2b(joined.encode("utf-8"), digest_size=8).digest()
    return struct.unpack(">Q", digest)[0]


def stable_uniform(*parts: object) -> float:
    """Deterministic uniform sample in ``[0, 1)`` keyed by the parts."""
    return stable_hash(*parts) / _MAX64


def stable_range(low: float, high: float, *parts: object) -> float:
    """Deterministic uniform sample in ``[low, high)`` keyed by the parts."""
    return low + (high - low) * stable_uniform(*parts)


def stable_choice(options: Iterable, *parts: object):
    """Deterministically pick one element of ``options`` keyed by the parts."""
    seq = list(options)
    if not seq:
        raise ValueError("cannot choose from an empty sequence")
    return seq[stable_hash(*parts) % len(seq)]


def stable_rng(*parts: object) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically from the parts."""
    return np.random.default_rng(stable_hash(*parts))


def clip01(value: float) -> float:
    """Clamp a float into the closed unit interval."""
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value
