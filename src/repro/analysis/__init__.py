"""Analyses reproducing the paper's Section 5.1-5.3 figures and tables."""

from .capacity import CapacitySweep, capacity_sweep, drops_by_category, representative_type
from .composite import CompositeObservation, CompositeStudy, composite_query_study
from .correlation import CorrelationStudy, PAIR_NAMES, correlation_study, pearson
from .engine import DATASET_MEASURES, AnalyticsEngine
from .distributions import (
    ValueDistribution,
    contradiction_summary,
    score_difference_histogram,
    value_distribution,
)
from .heatmaps import Heatmap, spatial_heatmap, spatial_vs_temporal_variation, temporal_heatmap
from .scores import (
    BUCKET_TO_SCORE,
    IF_SCORE_VALUES,
    SPS_VALUES,
    categorize,
    interruption_free_score,
    mean_score,
    score_from_bucket,
)
from .sizes import SizeScores, scores_by_size, size_trend_slope
from .updates import DATASETS, UpdateFrequencyStudy, update_frequency_study

__all__ = [
    "CapacitySweep", "capacity_sweep", "drops_by_category", "representative_type",
    "CompositeObservation", "CompositeStudy", "composite_query_study",
    "CorrelationStudy", "PAIR_NAMES", "correlation_study", "pearson",
    "DATASET_MEASURES", "AnalyticsEngine",
    "ValueDistribution", "contradiction_summary",
    "score_difference_histogram", "value_distribution",
    "Heatmap", "spatial_heatmap", "spatial_vs_temporal_variation", "temporal_heatmap",
    "BUCKET_TO_SCORE", "IF_SCORE_VALUES", "SPS_VALUES", "categorize",
    "interruption_free_score", "mean_score", "score_from_bucket",
    "SizeScores", "scores_by_size", "size_trend_slope",
    "DATASETS", "UpdateFrequencyStudy", "update_frequency_study",
]
