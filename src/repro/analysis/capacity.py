"""Placement score vs requested capacity (paper Figure 7).

For representative instance types -- one or two per instance class, using
the *xlarge* size where the family has it, else the smallest available --
the region-level placement score as the requested instance count grows.
Accelerated-computing (P, G, Inf) and dense-storage (D) classes drop the
hardest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cloudsim import Catalog, SimulatedCloud
from ..cloudsim.catalog import SIZE_LADDER

#: Capacity steps the sweep evaluates (the paper sweeps to large counts).
DEFAULT_CAPACITIES = (1, 5, 10, 20, 50)


def representative_type(catalog: Catalog, class_letter: str) -> Optional[str]:
    """The paper's representative for a class: xlarge if available, else
    the smallest size, from the alphabetically first family in the class."""
    families = sorted(
        {t.family.name for t in catalog.types_in_class(class_letter)})
    if not families:
        return None
    family = families[0]
    sizes = next(f.sizes for f in catalog.families if f.name == family)
    if "xlarge" in sizes:
        return f"{family}.xlarge"
    smallest = min(sizes, key=SIZE_LADDER.index)
    return f"{family}.{smallest}"


@dataclass
class CapacitySweep:
    """Figure 7 matrix: rows = instance types, cols = capacities."""

    instance_types: List[str]
    capacities: List[int]
    scores: Dict[str, List[float]]  # type -> score per capacity

    def drop(self, instance_type: str) -> float:
        """Score lost between the smallest and largest capacity."""
        row = self.scores[instance_type]
        return row[0] - row[-1]


def capacity_sweep(cloud: SimulatedCloud, timestamp: float,
                   instance_types: Optional[Sequence[str]] = None,
                   capacities: Sequence[int] = DEFAULT_CAPACITIES,
                   region: Optional[str] = None) -> CapacitySweep:
    """Sweep the placement score over requested capacity.

    When ``instance_types`` is omitted, one representative per catalog
    class is chosen.  Scores are averaged over all regions offering the
    type (or evaluated in the single given region).
    """
    catalog = cloud.catalog
    # spotlint: disable=QUO001 -- Fig-7 analysis probe of the deterministic
    # engine, not the collection path; the paper ran these as ad-hoc queries
    placement = cloud.placement
    if instance_types is None:
        instance_types = [t for t in
                          (representative_type(catalog, c) for c in catalog.classes)
                          if t is not None]
    scores: Dict[str, List[float]] = {}
    for name in instance_types:
        row: List[float] = []
        regions = ([region] if region else
                   [r.code for r in catalog.regions_offering(name)])
        if not regions:
            continue
        for capacity in capacities:
            vals = [placement.region_score(name, r, timestamp, capacity)
                    for r in regions]
            row.append(sum(vals) / len(vals))
        scores[name] = row
    return CapacitySweep(list(scores), list(capacities), scores)


def drops_by_category(sweep: CapacitySweep, catalog: Catalog) -> Dict[str, float]:
    """Mean capacity-induced score drop per instance category."""
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for name in sweep.instance_types:
        category = catalog.instance_type(name).category
        sums[category] = sums.get(category, 0.0) + sweep.drop(name)
        counts[category] = counts.get(category, 0) + 1
    return {c: sums[c] / counts[c] for c in sums}
