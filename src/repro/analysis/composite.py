"""Composite instance-type query analysis (paper Figure 6, Section 5.2).

Compares the placement score of a query naming three instance types with
the sum of the three types' individual scores, over many sampled
(type-triple, region) combinations.  The paper finds the composite score
equals the sum in ~38.8% of cases, exceeds it in ~60.6%, and falls below it
only as rare exceptions -- i.e. the sum of individual scores is effectively
the *minimum* of the composite score.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..cloudsim import SimulatedCloud


@dataclass
class CompositeObservation:
    """One sampled composite query vs its single-type sum."""

    instance_types: Tuple[str, str, str]
    region: str
    individual_sum: int
    composite_score: int


@dataclass
class CompositeStudy:
    """Figure 6 dataset plus its headline shares."""

    observations: List[CompositeObservation]

    def scatter_counts(self) -> Dict[Tuple[int, int], int]:
        """Frequency per (composite, sum) point -- the marker radii."""
        return dict(Counter((o.composite_score, o.individual_sum)
                            for o in self.observations))

    def shares(self) -> Dict[str, float]:
        """Percentage of equal / above / below the y = x line."""
        n = len(self.observations)
        if n == 0:
            return {"equal": 0.0, "composite_above": 0.0, "composite_below": 0.0}
        equal = sum(1 for o in self.observations
                    if o.composite_score == o.individual_sum)
        above = sum(1 for o in self.observations
                    if o.composite_score > o.individual_sum)
        below = n - equal - above
        return {
            "equal": 100.0 * equal / n,
            "composite_above": 100.0 * above / n,
            "composite_below": 100.0 * below / n,
        }


def composite_query_study(cloud: SimulatedCloud, timestamp: float,
                          samples_per_sum: int = 40,
                          seed: int = 0) -> CompositeStudy:
    """Sample type-triples stratified by their individual-score sum (3..9).

    The paper balances its sample so every summed-score value is equally
    represented; we do the same by bucketing candidate triples by their
    individual sum and drawing the same number from each bucket.
    """
    rng = np.random.default_rng(seed)
    catalog = cloud.catalog
    # spotlint: disable=QUO001 -- Fig-6 analysis probe of the deterministic
    # engine, not the collection path; the paper ran these as ad-hoc queries
    placement = cloud.placement
    names = catalog.instance_type_names
    regions = [r.code for r in catalog.regions]

    buckets: Dict[int, List[Tuple[Tuple[str, str, str], str]]] = {
        s: [] for s in range(3, 10)}
    attempts = 0
    max_attempts = samples_per_sum * 700
    while attempts < max_attempts and any(
            len(b) < samples_per_sum for b in buckets.values()):
        attempts += 1
        region = regions[rng.integers(0, len(regions))]
        triple = tuple(sorted(
            names[i] for i in rng.choice(len(names), size=3, replace=False)))
        if len(set(triple)) != 3:
            continue
        if not all(catalog.is_offered(t, region) for t in triple):
            continue
        total = sum(placement.region_score(t, region, timestamp) for t in triple)
        if len(buckets[total]) < samples_per_sum:
            buckets[total].append((triple, region))  # type: ignore[arg-type]

    observations: List[CompositeObservation] = []
    for total, entries in sorted(buckets.items()):
        for triple, region in entries:
            composite = placement.composite_region_score(
                list(triple), region, timestamp)
            observations.append(CompositeObservation(
                triple, region, total, composite))
    return CompositeStudy(observations)
