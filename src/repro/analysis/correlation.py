"""Cross-dataset correlation analysis (paper Figure 8, Section 5.3).

For every (instance type, region) pair with aligned history of the spot
placement score, the interruption-free score and the spot price, the
Pearson correlation coefficient of each dataset pair over time -- then the
CDF of those coefficients over pools.  The paper finds the mass
concentrated near zero for all three combinations, tightest for the pairs
involving the spot price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.archive import DIM_REGION, DIM_TYPE, SpotLakeArchive
from .engine import AnalyticsEngine

PAIR_NAMES = ("sps_if", "if_price", "sps_price")


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient; NaN when either side is constant.

    Implemented directly from the paper's formula rather than via
    ``np.corrcoef`` so constant series yield NaN instead of a warning.
    """
    if len(x) != len(y):
        raise ValueError("series length mismatch")
    if len(x) < 2:
        return float("nan")
    dx = x - x.mean()
    dy = y - y.mean()
    denom = np.sqrt(np.sum(dx * dx)) * np.sqrt(np.sum(dy * dy))
    if denom == 0.0:
        return float("nan")
    return float(np.sum(dx * dy) / denom)


@dataclass
class CorrelationStudy:
    """Per-pool correlation coefficients for the three dataset pairs."""

    coefficients: Dict[str, np.ndarray]  # pair name -> finite r values
    pools_evaluated: int
    pools_skipped_constant: int

    def cdf(self, pair: str, grid: Optional[Sequence[float]] = None
            ) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) of the coefficient CDF for one dataset pair."""
        values = np.sort(self.coefficients[pair])
        if grid is None:
            xs = values
            fs = np.arange(1, len(values) + 1) / max(len(values), 1)
            return xs, fs
        xs = np.asarray(grid, dtype=float)
        fs = np.searchsorted(values, xs, side="right") / max(len(values), 1)
        return xs, fs

    def share_below_abs(self, pair: str, bound: float) -> float:
        """Fraction of pools with |r| < bound (paper: 62.57% below 0.25 for
        the SPS / interruption-free pair)."""
        values = self.coefficients[pair]
        if len(values) == 0:
            return float("nan")
        return float(np.mean(np.abs(values) < bound))

    def concentration_near_zero(self, pair: str, width: float = 0.1) -> float:
        """Fraction of pools with |r| < width; price pairs are tightest."""
        return self.share_below_abs(pair, width)


def correlation_study(archive: SpotLakeArchive,
                      sample_times: Sequence[float]) -> CorrelationStudy:
    """Figure 8: Pearson r per (type, region) for each dataset pair.

    SPS and price series are zone-scoped; the first zone series found per
    (type, region) represents the pair, mirroring the paper's per-pool
    alignment on the advisor's coarser granularity.
    """
    times = list(sample_times)
    engine = AnalyticsEngine(archive)
    sps_keys, sps = engine.matrix("sps", times)
    if_keys, ifs = engine.matrix("if_score", times)
    price_keys, price = engine.matrix("price", times)

    def first_row_per_pair(keys) -> Dict[Tuple[str, str], int]:
        rows: Dict[Tuple[str, str], int] = {}
        for row, key in enumerate(keys):
            dims = key.dimension_dict
            pair = (dims[DIM_TYPE], dims[DIM_REGION])
            rows.setdefault(pair, row)
        return rows

    sps_rows = first_row_per_pair(sps_keys)
    if_rows = first_row_per_pair(if_keys)
    price_rows = first_row_per_pair(price_keys)

    coefficients: Dict[str, List[float]] = {p: [] for p in PAIR_NAMES}
    evaluated = 0
    skipped = 0
    for pair in sorted(set(sps_rows) & set(if_rows) & set(price_rows)):
        s = sps[sps_rows[pair]]
        f = ifs[if_rows[pair]]
        p = price[price_rows[pair]]
        good = ~(np.isnan(s) | np.isnan(f) | np.isnan(p))
        if good.sum() < 3:
            continue
        evaluated += 1
        rs = {
            "sps_if": pearson(s[good], f[good]),
            "if_price": pearson(f[good], p[good]),
            "sps_price": pearson(s[good], p[good]),
        }
        if all(np.isnan(r) for r in rs.values()):
            skipped += 1
        for name, r in rs.items():
            if not np.isnan(r):
                coefficients[name].append(r)
    return CorrelationStudy(
        coefficients={k: np.array(v) for k, v in coefficients.items()},
        pools_evaluated=evaluated,
        pools_skipped_constant=skipped,
    )
