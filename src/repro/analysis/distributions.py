"""Value distributions and score disagreement (paper Table 2, Figure 9).

Table 2: the marginal distribution of placement-score and interruption-free
score values over the whole collection window.

Figure 9: the histogram of the absolute difference |SPS - IF score| at
matched (instance type, region) and time -- the extent to which the two
vendor datasets contradict each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.archive import DIM_REGION, DIM_TYPE, SpotLakeArchive
from .engine import AnalyticsEngine
from .scores import IF_SCORE_VALUES, SPS_VALUES


@dataclass
class ValueDistribution:
    """Percentage of observations at each score value (Table 2)."""

    sps_percent: Dict[float, float]
    if_percent: Dict[float, float]
    sps_observations: int
    if_observations: int


def value_distribution(archive: SpotLakeArchive,
                       sample_times: Sequence[float]) -> ValueDistribution:
    """Table 2: marginal score-value distribution over the window."""
    engine = AnalyticsEngine(archive)
    _, sps = engine.matrix("sps", sample_times)
    _, ifs = engine.matrix("if_score", sample_times)
    sps_flat = sps[~np.isnan(sps)]
    if_flat = ifs[~np.isnan(ifs)]

    def percents(flat: np.ndarray, values: Sequence[float]) -> Dict[float, float]:
        n = len(flat)
        if n == 0:
            return {float(v): 0.0 for v in values}
        return {float(v): 100.0 * float(np.sum(flat == v)) / n for v in values}

    return ValueDistribution(
        sps_percent=percents(sps_flat, SPS_VALUES),
        if_percent=percents(if_flat, IF_SCORE_VALUES),
        sps_observations=len(sps_flat),
        if_observations=len(if_flat),
    )


def score_difference_histogram(archive: SpotLakeArchive,
                               sample_times: Sequence[float]
                               ) -> Dict[float, float]:
    """Figure 9: percentage of observations at each |SPS - IF| difference.

    SPS series are zone-scoped while the advisor is region-scoped, so each
    SPS observation is matched with its (type, region) advisor value at the
    same instant.  Differences are binned on the advisor's 0.5 step; the
    possible values are 0.0, 0.5, 1.0, 1.5, 2.0 (2.0 = full contradiction).
    """
    engine = AnalyticsEngine(archive)
    sps_keys, sps = engine.matrix("sps", sample_times)
    if_keys, ifs = engine.matrix("if_score", sample_times)
    if_row: Dict[Tuple[str, str], int] = {}
    for row, key in enumerate(if_keys):
        dims = key.dimension_dict
        if_row[(dims[DIM_TYPE], dims[DIM_REGION])] = row

    # pair every SPS row with its region-scoped advisor mate, then bin
    # all matched samples in one vectorized pass; np.round performs the
    # same round-half-to-even Python's round() did, so the bins (and the
    # percentages, integer counts over an integer total) are unchanged
    matched = [(row, mate) for row, key in enumerate(sps_keys)
               for mate in (if_row.get((key.dimension_dict[DIM_TYPE],
                                        key.dimension_dict[DIM_REGION])),)
               if mate is not None]
    if not matched:
        return {}
    sps_rows = np.asarray([m[0] for m in matched], dtype=np.int64)
    if_rows = np.asarray([m[1] for m in matched], dtype=np.int64)
    a = sps[sps_rows]
    b = ifs[if_rows]
    good = ~(np.isnan(a) | np.isnan(b))
    total = int(good.sum())
    if total == 0:
        return {}
    diffs = np.round(np.abs(a[good] - b[good]) * 2.0) / 2.0
    values, counts = np.unique(diffs, return_counts=True)
    return {float(diff): 100.0 * int(count) / total
            for diff, count in zip(values, counts)}


def contradiction_summary(histogram: Dict[float, float]) -> Dict[str, float]:
    """Headline Figure-9 numbers: share of full (2.0) and severe (>=1.5)
    contradictions."""
    return {
        "exact_agreement": histogram.get(0.0, 0.0),
        "full_contradiction": histogram.get(2.0, 0.0),
        "severe_disagreement": sum(p for d, p in histogram.items() if d >= 1.5),
    }
