"""Vectorized analysis engine: one front door for the paper's figures.

:class:`AnalyticsEngine` is the facade the analysis modules (and the
``repro analyze`` CLI) use to read the archive.  It exposes two read
shapes:

* **declarative aggregation** -- build an
  :class:`~repro.timeseries.vector.AggSpec` with :meth:`spec` (dataset
  names instead of table/measure constants) and execute it with
  :meth:`aggregate`, which routes through the archive's
  :class:`~repro.core.analytics.AnalyticsRuntime` (columnar cold scans,
  packed hot arrays, generation-stamped rollups, exact cross-tier
  partial merges);
* **aligned resampled matrices** -- :meth:`matrix` returns the
  step-function sample matrix of one dataset (one row per series, one
  column per sample instant), vectorized at the query layer.

The figure modules in this package consume both; their outputs are
regression-pinned against the original row-at-a-time implementations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.archive import (
    ADVISOR_TABLE,
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    PRICE_MEASURE,
    PRICE_TABLE,
    SAVINGS_MEASURE,
    SPS_MEASURE,
    SPS_TABLE,
    SpotLakeArchive,
)
from ..timeseries import AggResult, AggSpec, SeriesKey

#: dataset name -> (table, measure); the names the analysis modules and
#: the CLI speak, mapped onto the storage schema
DATASET_MEASURES: Dict[str, Tuple[str, str]] = {
    "sps": (SPS_TABLE, SPS_MEASURE),
    "if_score": (ADVISOR_TABLE, IF_SCORE_MEASURE),
    "interruption_ratio": (ADVISOR_TABLE, INTERRUPTION_RATIO_MEASURE),
    "savings": (ADVISOR_TABLE, SAVINGS_MEASURE),
    "price": (PRICE_TABLE, PRICE_MEASURE),
}


class AnalyticsEngine:
    """Vectorized read facade over one :class:`SpotLakeArchive`."""

    def __init__(self, archive: SpotLakeArchive):
        self.archive = archive

    # -- declarative aggregation --------------------------------------------

    def spec(self, dataset: str, start: float, end: float,
             bucket_seconds: Optional[float] = None,
             group_by: Sequence[str] = (),
             aggregates: Sequence[str] = ("mean", "count"),
             filters: Optional[Dict[str, str]] = None) -> AggSpec:
        """Build an :class:`AggSpec` from a dataset name."""
        table, measure = self._resolve(dataset)
        return AggSpec.make(table, measure, start, end,
                            bucket_seconds=bucket_seconds,
                            group_by=group_by, aggregates=aggregates,
                            filters=filters)

    def aggregate(self, spec: AggSpec) -> AggResult:
        """Execute a spec through the archive's analytics runtime."""
        return self.archive.analytics.run(spec)

    # -- resampled matrices -------------------------------------------------

    def matrix(self, dataset: str, sample_times: Sequence[float],
               filters: Optional[Dict[str, str]] = None,
               ) -> Tuple[List[SeriesKey], np.ndarray]:
        """Aligned step-function samples of one dataset."""
        if dataset == "sps":
            return self.archive.sps_matrix(sample_times, filters)
        if dataset == "if_score":
            return self.archive.if_score_matrix(sample_times, filters)
        if dataset == "savings":
            return self.archive.savings_matrix(sample_times, filters)
        if dataset == "price":
            return self.archive.price_matrix(sample_times, filters)
        raise ValueError(f"unknown dataset {dataset!r}")

    def update_interval_samples(self, dataset: str) -> List[float]:
        """Pooled elapsed-seconds-between-changes samples (Figure 10)."""
        return self.archive.update_interval_samples(dataset)

    # -- observability ------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """The runtime's pushdown/rollup counters."""
        return self.archive.analytics.stats()

    def _resolve(self, dataset: str) -> Tuple[str, str]:
        entry = DATASET_MEASURES.get(dataset)
        if entry is None:
            raise ValueError(
                f"unknown dataset {dataset!r}; expected one of: "
                + ", ".join(sorted(DATASET_MEASURES)))
        return entry
