"""Temporal and spatial score heatmaps (paper Figures 3 and 4).

Figure 3: per instance class (rows, in the paper's family order) and per day
(columns), the daily mean spot placement score and interruption-free score.

Figure 4: per instance class (rows) and per region (columns), the mean
scores over the window; (class, region) cells with no offerings are NaN
("NA" in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cloudsim import Catalog
from ..core.archive import DIM_REGION, DIM_TYPE, SpotLakeArchive
from ..timeseries import SeriesKey
from .engine import AnalyticsEngine


@dataclass
class Heatmap:
    """A labelled 2-D matrix ready for rendering."""

    row_labels: List[str]
    col_labels: List[str]
    values: np.ndarray  # shape (rows, cols); NaN = no data

    def row_means(self) -> Dict[str, float]:
        """Mean over columns per row, ignoring NaN."""
        if not self.row_labels:
            return {}
        live = ~np.all(np.isnan(self.values), axis=1)
        means = np.full(len(self.row_labels), np.nan)
        if live.any():
            means[live] = np.nanmean(self.values[live], axis=1)
        return {label: float(means[i])
                for i, label in enumerate(self.row_labels) if live[i]}

    def overall_mean(self) -> float:
        return float(np.nanmean(self.values))

    def temporal_std(self) -> float:
        """Mean over rows of the std across columns (variation over time)."""
        if not self.row_labels:
            return float("nan")
        live = ~np.all(np.isnan(self.values), axis=1)
        if not live.any():
            return float("nan")
        return float(np.mean(np.nanstd(self.values[live], axis=1)))


def _class_of(catalog: Catalog, key: SeriesKey) -> Optional[str]:
    name = key.dimension_dict.get(DIM_TYPE)
    if name is None or not catalog.has_instance_type(name):
        return None
    return catalog.instance_type(name).class_letter


def temporal_heatmap(archive: SpotLakeArchive, catalog: Catalog,
                     day_times: Sequence[Sequence[float]],
                     dataset: str = "sps") -> Heatmap:
    """Figure 3: daily mean score per instance class.

    ``day_times`` is one sequence of sample instants per day column (daily
    averages in the paper).  ``dataset`` is "sps" or "if_score".
    """
    if dataset not in ("sps", "if_score"):
        raise ValueError(f"unknown dataset {dataset!r}")
    classes = catalog.classes
    class_row = {c: i for i, c in enumerate(classes)}
    n_days = len(day_times)
    sums = np.zeros((len(classes), n_days))
    counts = np.zeros((len(classes), n_days))
    # one resample over the concatenated day instants: each sampled
    # column depends only on its own instant, so slicing the flat matrix
    # at the day offsets yields exactly the per-day matrices the old
    # day-at-a-time loop fetched -- one series_arrays/searchsorted pass
    # instead of one per day
    flat_times = [t for times in day_times for t in times]
    offsets = np.zeros(n_days + 1, dtype=np.int64)
    np.cumsum([len(times) for times in day_times], out=offsets[1:])
    keys, matrix = AnalyticsEngine(archive).matrix(dataset, flat_times)
    cls_of = np.asarray([class_row.get(_class_of(catalog, key), -1)
                         for key in keys], dtype=np.int64)
    lengths = {len(times) for times in day_times}
    per_day = lengths.pop() if len(lengths) == 1 else 0
    if keys and 0 < per_day <= 8:
        # equal-length short days: fold all (series, day) cells at once.
        # Summing <= 8 addends is a strictly sequential left-to-right
        # reduce in numpy (pairwise blocking starts above 8), and adding
        # a 0.0 in place of a skipped NaN is an exact identity, so these
        # cell sums are bit-equal to the per-slice vals[good].sum() --
        # and np.add.at applies them in series order, the same order the
        # explicit row loop added them
        vals3 = matrix.reshape(len(keys), n_days, per_day)
        good = ~np.isnan(vals3)
        cell_sums = np.where(good, vals3, 0.0).sum(axis=2)
        cell_counts = good.sum(axis=2)
        rows, days = np.nonzero((cls_of[:, None] >= 0) & (cell_counts > 0))
        np.add.at(sums, (cls_of[rows], days), cell_sums[rows, days])
        np.add.at(counts, (cls_of[rows], days), cell_counts[rows, days])
    else:
        # ragged or long days: the original per-slice fold (pairwise
        # summation over >8 addends skips NaN positions, so the zero
        # substitution above would re-associate the additions)
        for row in range(len(keys)):
            if cls_of[row] < 0:
                continue
            for d in range(n_days):
                vals = matrix[row, offsets[d]:offsets[d + 1]]
                good = ~np.isnan(vals)
                if good.any():
                    sums[cls_of[row], d] += vals[good].sum()
                    counts[cls_of[row], d] += good.sum()
    with np.errstate(invalid="ignore"):
        values = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return Heatmap(list(classes), [f"day{i}" for i in range(n_days)], values)


def spatial_heatmap(archive: SpotLakeArchive, catalog: Catalog,
                    sample_times: Sequence[float],
                    dataset: str = "sps") -> Heatmap:
    """Figure 4: mean score per (instance class, region); NaN where
    unsupported."""
    if dataset not in ("sps", "if_score"):
        raise ValueError(f"unknown dataset {dataset!r}")
    classes = catalog.classes
    regions = [r.code for r in catalog.regions]
    class_row = {c: i for i, c in enumerate(classes)}
    region_col = {r: j for j, r in enumerate(regions)}
    sums = np.zeros((len(classes), len(regions)))
    counts = np.zeros((len(classes), len(regions)))
    keys, matrix = AnalyticsEngine(archive).matrix(dataset, sample_times)
    for row, key in enumerate(keys):
        cls = _class_of(catalog, key)
        region = key.dimension_dict.get(DIM_REGION)
        if cls is None or region not in region_col:
            continue
        vals = matrix[row]
        good = ~np.isnan(vals)
        if good.any():
            sums[class_row[cls], region_col[region]] += vals[good].sum()
            counts[class_row[cls], region_col[region]] += good.sum()
    with np.errstate(invalid="ignore"):
        values = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return Heatmap(list(classes), regions, values)


def spatial_vs_temporal_variation(temporal: Heatmap, spatial: Heatmap) -> Dict[str, float]:
    """Summary the paper's key finding rests on: per-class score std across
    regions vs across days."""
    spatial_stds = [float(np.nanstd(spatial.values[i]))
                    for i in range(len(spatial.row_labels))
                    if not np.all(np.isnan(spatial.values[i]))]
    return {
        "temporal_std": temporal.temporal_std(),
        "spatial_std": float(np.mean(spatial_stds)) if spatial_stds else float("nan"),
    }
