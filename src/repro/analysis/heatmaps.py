"""Temporal and spatial score heatmaps (paper Figures 3 and 4).

Figure 3: per instance class (rows, in the paper's family order) and per day
(columns), the daily mean spot placement score and interruption-free score.

Figure 4: per instance class (rows) and per region (columns), the mean
scores over the window; (class, region) cells with no offerings are NaN
("NA" in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cloudsim import Catalog
from ..core.archive import DIM_REGION, DIM_TYPE, SpotLakeArchive
from ..timeseries import SeriesKey


@dataclass
class Heatmap:
    """A labelled 2-D matrix ready for rendering."""

    row_labels: List[str]
    col_labels: List[str]
    values: np.ndarray  # shape (rows, cols); NaN = no data

    def row_means(self) -> Dict[str, float]:
        """Mean over columns per row, ignoring NaN."""
        out = {}
        for i, label in enumerate(self.row_labels):
            row = self.values[i]
            if not np.all(np.isnan(row)):
                out[label] = float(np.nanmean(row))
        return out

    def overall_mean(self) -> float:
        return float(np.nanmean(self.values))

    def temporal_std(self) -> float:
        """Mean over rows of the std across columns (variation over time)."""
        stds = [float(np.nanstd(self.values[i]))
                for i in range(len(self.row_labels))
                if not np.all(np.isnan(self.values[i]))]
        return float(np.mean(stds)) if stds else float("nan")


def _class_of(catalog: Catalog, key: SeriesKey) -> Optional[str]:
    name = key.dimension_dict.get(DIM_TYPE)
    if name is None or not catalog.has_instance_type(name):
        return None
    return catalog.instance_type(name).class_letter


def temporal_heatmap(archive: SpotLakeArchive, catalog: Catalog,
                     day_times: Sequence[Sequence[float]],
                     dataset: str = "sps") -> Heatmap:
    """Figure 3: daily mean score per instance class.

    ``day_times`` is one sequence of sample instants per day column (daily
    averages in the paper).  ``dataset`` is "sps" or "if_score".
    """
    classes = catalog.classes
    class_row = {c: i for i, c in enumerate(classes)}
    n_days = len(day_times)
    sums = np.zeros((len(classes), n_days))
    counts = np.zeros((len(classes), n_days))
    for d, times in enumerate(day_times):
        if dataset == "sps":
            keys, matrix = archive.sps_matrix(times)
        elif dataset == "if_score":
            keys, matrix = archive.if_score_matrix(times)
        else:
            raise ValueError(f"unknown dataset {dataset!r}")
        for row, key in enumerate(keys):
            cls = _class_of(catalog, key)
            if cls is None:
                continue
            vals = matrix[row]
            good = ~np.isnan(vals)
            if good.any():
                sums[class_row[cls], d] += vals[good].sum()
                counts[class_row[cls], d] += good.sum()
    with np.errstate(invalid="ignore"):
        values = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return Heatmap(list(classes), [f"day{i}" for i in range(n_days)], values)


def spatial_heatmap(archive: SpotLakeArchive, catalog: Catalog,
                    sample_times: Sequence[float],
                    dataset: str = "sps") -> Heatmap:
    """Figure 4: mean score per (instance class, region); NaN where
    unsupported."""
    classes = catalog.classes
    regions = [r.code for r in catalog.regions]
    class_row = {c: i for i, c in enumerate(classes)}
    region_col = {r: j for j, r in enumerate(regions)}
    sums = np.zeros((len(classes), len(regions)))
    counts = np.zeros((len(classes), len(regions)))
    if dataset == "sps":
        keys, matrix = archive.sps_matrix(sample_times)
    elif dataset == "if_score":
        keys, matrix = archive.if_score_matrix(sample_times)
    else:
        raise ValueError(f"unknown dataset {dataset!r}")
    for row, key in enumerate(keys):
        cls = _class_of(catalog, key)
        region = key.dimension_dict.get(DIM_REGION)
        if cls is None or region not in region_col:
            continue
        vals = matrix[row]
        good = ~np.isnan(vals)
        if good.any():
            sums[class_row[cls], region_col[region]] += vals[good].sum()
            counts[class_row[cls], region_col[region]] += good.sum()
    with np.errstate(invalid="ignore"):
        values = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return Heatmap(list(classes), regions, values)


def spatial_vs_temporal_variation(temporal: Heatmap, spatial: Heatmap) -> Dict[str, float]:
    """Summary the paper's key finding rests on: per-class score std across
    regions vs across days."""
    spatial_stds = [float(np.nanstd(spatial.values[i]))
                    for i in range(len(spatial.row_labels))
                    if not np.all(np.isnan(spatial.values[i]))]
    return {
        "temporal_std": temporal.temporal_std(),
        "spatial_std": float(np.mean(spatial_stds)) if spatial_stds else float("nan"),
    }
