"""Score conversions used throughout the paper's analysis (Section 5).

The implementations live in :mod:`repro.scoring` at the package root --
the lifecycle engine in ``cloudsim`` needs the same mapping, and importing
it from here violated the package layering (``cloudsim`` -> ``analysis``).
This module re-exports the names so the analysis layer keeps its natural
import path.
"""

from __future__ import annotations

from ..scoring import (  # noqa: F401
    BUCKET_TO_SCORE,
    IF_SCORE_VALUES,
    SPS_VALUES,
    categorize,
    interruption_free_score,
    mean_score,
    score_from_bucket,
)

__all__ = [
    "BUCKET_TO_SCORE",
    "IF_SCORE_VALUES",
    "SPS_VALUES",
    "categorize",
    "interruption_free_score",
    "mean_score",
    "score_from_bucket",
]
