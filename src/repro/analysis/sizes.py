"""Scores grouped by instance size (paper Figure 5).

For each size with more than a threshold number of instance types (the
paper uses > 10, to avoid sizes whose average is dominated by a couple of
types), the mean spot placement score and interruption-free score.  Both
decrease as the size grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..cloudsim import Catalog
from ..cloudsim.catalog import SIZE_LADDER
from ..core.archive import DIM_TYPE, SpotLakeArchive


@dataclass
class SizeScores:
    """Figure 5 series: per size, mean scores and supporting type count."""

    sizes: List[str]
    sps_means: List[float]
    if_means: List[float]
    type_counts: List[int]

    def as_rows(self) -> List[dict]:
        return [
            {"size": s, "sps": p, "if_score": f, "types": c}
            for s, p, f, c in zip(self.sizes, self.sps_means,
                                  self.if_means, self.type_counts)
        ]


def scores_by_size(archive: SpotLakeArchive, catalog: Catalog,
                   sample_times: Sequence[float],
                   min_types: int = 10) -> SizeScores:
    """Figure 5: mean scores per instance size, sizes ordered small->large.

    Only sizes offered by more than ``min_types`` catalog instance types are
    kept, mirroring the paper's filtering.
    """
    type_size: Dict[str, str] = {
        t.name: t.size for t in catalog.instance_types}
    size_type_count: Dict[str, int] = {}
    for itype in catalog.instance_types:
        size_type_count[itype.size] = size_type_count.get(itype.size, 0) + 1

    kept = [s for s in SIZE_LADDER
            if size_type_count.get(s, 0) > min_types]

    sps_vals: Dict[str, List[float]] = {s: [] for s in kept}
    if_vals: Dict[str, List[float]] = {s: [] for s in kept}

    keys, sps = archive.sps_matrix(sample_times)
    for row, key in enumerate(keys):
        size = type_size.get(key.dimension_dict.get(DIM_TYPE, ""))
        if size not in sps_vals:
            continue
        vals = sps[row][~np.isnan(sps[row])]
        sps_vals[size].extend(vals.tolist())

    keys, ifs = archive.if_score_matrix(sample_times)
    for row, key in enumerate(keys):
        size = type_size.get(key.dimension_dict.get(DIM_TYPE, ""))
        if size not in if_vals:
            continue
        vals = ifs[row][~np.isnan(ifs[row])]
        if_vals[size].extend(vals.tolist())

    sizes = [s for s in kept if sps_vals[s] and if_vals[s]]
    return SizeScores(
        sizes=sizes,
        sps_means=[float(np.mean(sps_vals[s])) for s in sizes],
        if_means=[float(np.mean(if_vals[s])) for s in sizes],
        type_counts=[size_type_count[s] for s in sizes],
    )


def size_trend_slope(size_scores: SizeScores, which: str = "sps") -> float:
    """Least-squares slope of score vs size rank (negative = decreasing)."""
    values = size_scores.sps_means if which == "sps" else size_scores.if_means
    if len(values) < 2:
        return 0.0
    ranks = [SIZE_LADDER.index(s) for s in size_scores.sizes]
    slope = np.polyfit(ranks, values, 1)[0]
    return float(slope)
