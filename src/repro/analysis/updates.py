"""Dataset update frequency (paper Figure 10).

The CDF of the elapsed time between *value changes* of each dataset, pooled
across series.  The paper finds the spot placement score updated the most
frequently, the interruption-free score the least, with the spot price in
between -- the advisor's slow cadence follows directly from its
trailing-month definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.archive import SpotLakeArchive
from .engine import AnalyticsEngine

DATASETS = ("sps", "if_score", "price")


@dataclass
class UpdateFrequencyStudy:
    """Per-dataset update-interval samples (seconds)."""

    intervals: Dict[str, np.ndarray]

    def cdf(self, dataset: str) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) CDF of update intervals for one dataset."""
        values = np.sort(self.intervals[dataset])
        if len(values) == 0:
            return np.array([]), np.array([])
        fs = np.arange(1, len(values) + 1) / len(values)
        return values, fs

    def median_hours(self, dataset: str) -> float:
        values = self.intervals[dataset]
        if len(values) == 0:
            return float("nan")
        return float(np.median(values)) / 3600.0

    def ordering(self) -> List[str]:
        """Datasets ordered most-frequently-updated first."""
        present = [d for d in DATASETS if len(self.intervals[d])]
        return sorted(present, key=self.median_hours)


def update_frequency_study(archive: SpotLakeArchive) -> UpdateFrequencyStudy:
    """Figure 10: pooled update intervals of the three datasets.

    Intervals come straight from the archive's change-point storage, so a
    series that never changes contributes no samples (its interval is
    censored, as in the paper's measurement).
    """
    engine = AnalyticsEngine(archive)
    return UpdateFrequencyStudy({
        dataset: np.array(engine.update_interval_samples(dataset))
        for dataset in DATASETS
    })
