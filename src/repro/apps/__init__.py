"""Downstream spot-instance applications built on the archive."""

from .batch import (
    BatchJobSimulator,
    JobResult,
    JobSpec,
    PolicyOutcome,
    compare_policies,
)
from .portfolio import (
    Allocation,
    Portfolio,
    build_portfolio,
    efficient_frontier,
    interruption_risk,
)
from .selection import (
    ALL_POLICIES,
    CheapestPolicy,
    CombinedScorePolicy,
    HistoricalPolicy,
    IfScorePolicy,
    PoolView,
    SelectionPolicy,
    SpsPolicy,
    snapshot_pools,
)

__all__ = [
    "Allocation", "Portfolio", "build_portfolio", "efficient_frontier",
    "interruption_risk",
    "BatchJobSimulator", "JobResult", "JobSpec", "PolicyOutcome",
    "compare_policies",
    "ALL_POLICIES", "CheapestPolicy", "CombinedScorePolicy",
    "HistoricalPolicy", "IfScorePolicy", "PoolView", "SelectionPolicy",
    "SpsPolicy", "snapshot_pools",
]
