"""Checkpointed batch jobs on spot instances.

A minimal SpotOn/Flint-style consumer of the archive: a job needing W
hours of compute runs on a chosen spot pool with periodic checkpoints;
every interruption loses the work since the last checkpoint and the
persistent request re-acquires capacity.  The simulator walks the
request's lifecycle timeline and accounts makespan, billed cost and
interruptions -- the quantities a selection policy trades off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..cloudsim import RequestState, SimulatedCloud
from ..cloudsim.clock import SECONDS_PER_HOUR
from .selection import Pool, PoolView, SelectionPolicy, snapshot_pools


@dataclass
class JobSpec:
    """One batch job."""

    work_hours: float
    checkpoint_interval_hours: float = 1.0

    def __post_init__(self):
        if self.work_hours <= 0:
            raise ValueError("work_hours must be positive")
        if self.checkpoint_interval_hours <= 0:
            raise ValueError("checkpoint interval must be positive")


@dataclass
class JobResult:
    """Outcome of one job execution."""

    pool: Pool
    completed: bool
    makespan_hours: float
    billed_hours: float
    cost: float
    interruptions: int
    wasted_hours: float

    @property
    def efficiency(self) -> float:
        """Useful work per billed hour (1.0 = no waste)."""
        if self.billed_hours == 0:
            return 0.0
        return (self.billed_hours - self.wasted_hours) / self.billed_hours


class BatchJobSimulator:
    """Runs jobs against the simulated cloud's lifecycle engine."""

    def __init__(self, cloud: SimulatedCloud, max_days: float = 14.0):
        self.cloud = cloud
        self.max_horizon = max_days * 24 * SECONDS_PER_HOUR

    def run(self, job: JobSpec, pool: Pool, start_time: float) -> JobResult:
        """Execute one job on one pool starting at ``start_time``."""
        itype, region, zone = pool
        # spotlint: disable=QUO001 -- billing probe: the job simulator reads
        # the market price a customer is charged, not a SpotLake collection
        price = self.cloud.pricing.spot_price(itype, region, start_time, zone)
        request = self.cloud.request_simulator.submit(
            itype, region, zone,
            bid_price=self.cloud.catalog.instance_type(itype).on_demand_price,
            created_at=start_time, persistent=True,
            horizon=self.max_horizon)

        checkpoint = job.checkpoint_interval_hours * SECONDS_PER_HOUR
        needed = job.work_hours * SECONDS_PER_HOUR
        done = 0.0
        billed = 0.0
        wasted = 0.0
        interruptions = 0
        finish_at: Optional[float] = None

        # walk (fulfill, interrupt-or-horizon) run segments
        segments = self._run_segments(request, start_time)
        for seg_start, seg_end, was_interrupted in segments:
            remaining = needed - done
            if seg_end - seg_start >= remaining:
                # job finishes inside this segment
                billed += remaining
                finish_at = seg_start + remaining
                break
            run = seg_end - seg_start
            billed += run
            if was_interrupted:
                interruptions += 1
                lost = run % checkpoint if run >= checkpoint else run
                wasted += lost
                done += run - lost
            else:
                done += run  # horizon end: keep the progress
        completed = finish_at is not None
        makespan = ((finish_at - start_time) if completed
                    else self.max_horizon) / SECONDS_PER_HOUR
        return JobResult(
            pool=pool,
            completed=completed,
            makespan_hours=makespan,
            billed_hours=billed / SECONDS_PER_HOUR,
            cost=round(price * billed / SECONDS_PER_HOUR, 4),
            interruptions=interruptions,
            wasted_hours=wasted / SECONDS_PER_HOUR,
        )

    def _run_segments(self, request, start_time: float
                      ) -> List[Tuple[float, float, bool]]:
        """(start, end, interrupted?) intervals the instance actually ran."""
        segments: List[Tuple[float, float, bool]] = []
        running_since: Optional[float] = None
        horizon_end = start_time + self.max_horizon
        for event in request.events:
            if event.state is RequestState.FULFILLED:
                running_since = event.timestamp
            elif running_since is not None and event.state in (
                    RequestState.PENDING_EVALUATION, RequestState.TERMINAL):
                segments.append((running_since, event.timestamp, True))
                running_since = None
        if running_since is not None:
            segments.append((running_since, horizon_end, False))
        return segments


@dataclass
class PolicyOutcome:
    """Aggregate of one policy over a job batch."""

    policy: str
    completion_rate: float
    mean_makespan_hours: float
    mean_cost: float
    mean_interruptions: float
    mean_efficiency: float


def compare_policies(cloud: SimulatedCloud, policies: Sequence[SelectionPolicy],
                     candidate_pools: Sequence[Pool], job: JobSpec,
                     start_time: float, jobs_per_policy: int = 20,
                     archive=None) -> List[PolicyOutcome]:
    """Run a batch of identical jobs under each policy and aggregate.

    Each job draws its pool from the policy's ranking (job *i* takes the
    i-th ranked pool, modelling a fleet that spreads over its top picks).
    """
    views = snapshot_pools(cloud, candidate_pools, start_time, archive)
    simulator = BatchJobSimulator(cloud)
    outcomes: List[PolicyOutcome] = []
    for policy in policies:
        ranked = policy.rank(views)
        results = []
        for i in range(jobs_per_policy):
            view = ranked[i % len(ranked[:max(1, len(ranked) // 3)])]
            results.append(simulator.run(job, view.pool, start_time))
        n = len(results)
        outcomes.append(PolicyOutcome(
            policy=policy.name,
            completion_rate=sum(r.completed for r in results) / n,
            mean_makespan_hours=sum(r.makespan_hours for r in results) / n,
            mean_cost=sum(r.cost for r in results) / n,
            mean_interruptions=sum(r.interruptions for r in results) / n,
            mean_efficiency=sum(r.efficiency for r in results) / n,
        ))
    return outcomes
