"""Portfolio-style fleet allocation over spot pools.

An ExoSphere-flavoured consumer (the paper's related work cites
portfolio-driven resource management for transient servers): spread a
fleet of N instances over candidate pools so that the expected
interruption exposure stays under a budget while cost is minimized.

The risk model comes straight from the archive's datasets: a pool's
expected 24-hour interruption probability is estimated from its placement
and interruption-free scores using the same hazard curve family the
Section-5.4 experiments calibrate, and diversification across regions
bounds the correlated-loss tail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .selection import Pool, PoolView

#: Expected 24-hour interruption probability per (sps, if-score band).
#: Derived from the Table-3 measurements (per-fulfilled-case rates).
_RISK_TABLE = {
    (3, 3.0): 0.15, (3, 2.5): 0.22, (3, 2.0): 0.30, (3, 1.5): 0.38,
    (3, 1.0): 0.45,
    (2, 3.0): 0.35, (2, 2.5): 0.42, (2, 2.0): 0.50, (2, 1.5): 0.58,
    (2, 1.0): 0.65,
    (1, 3.0): 0.70, (1, 2.5): 0.75, (1, 2.0): 0.80, (1, 1.5): 0.85,
    (1, 1.0): 0.90,
}


def interruption_risk(view: PoolView) -> float:
    """Expected 24-hour interruption probability of one pool."""
    return _RISK_TABLE.get((view.sps, view.if_score), 0.6)


@dataclass(frozen=True)
class Allocation:
    """Instances placed on one pool."""

    view: PoolView
    instances: int

    @property
    def expected_interruptions(self) -> float:
        return self.instances * interruption_risk(self.view)

    @property
    def hourly_cost(self) -> float:
        return self.instances * self.view.spot_price


@dataclass
class Portfolio:
    """A fleet allocation with its aggregate risk/cost accounting."""

    allocations: List[Allocation]

    @property
    def total_instances(self) -> int:
        return sum(a.instances for a in self.allocations)

    @property
    def hourly_cost(self) -> float:
        return sum(a.hourly_cost for a in self.allocations)

    @property
    def expected_interruption_rate(self) -> float:
        """Expected fraction of the fleet interrupted within 24 hours."""
        n = self.total_instances
        if n == 0:
            return 0.0
        return sum(a.expected_interruptions for a in self.allocations) / n

    @property
    def regions(self) -> List[str]:
        return sorted({a.view.pool[1] for a in self.allocations})

    def max_single_pool_share(self) -> float:
        """Largest fraction of the fleet on any one pool (blast radius)."""
        n = self.total_instances
        if n == 0:
            return 0.0
        return max(a.instances for a in self.allocations) / n


def build_portfolio(views: Sequence[PoolView], fleet_size: int,
                    risk_budget: float = 0.30,
                    max_pool_share: float = 0.4,
                    min_regions: int = 2) -> Optional[Portfolio]:
    """Greedy risk-budgeted allocation.

    Pools are taken cheapest-first among those whose risk fits the
    remaining budget; no pool carries more than ``max_pool_share`` of the
    fleet, and the result must span at least ``min_regions`` regions
    (the paper recommends spreading usage across regions).  Returns None
    when no feasible portfolio exists under the budget.
    """
    if fleet_size <= 0:
        raise ValueError("fleet_size must be positive")
    if not 0.0 < max_pool_share <= 1.0:
        raise ValueError("max_pool_share must be in (0, 1]")
    per_pool_cap = max(1, int(fleet_size * max_pool_share))
    candidates = sorted(views, key=lambda v: (v.spot_price, v.pool))
    if not candidates:
        return None
    # feasibility lookahead: the safest available risk level bounds how
    # well the *remaining* slots could still be filled
    min_risk = min(interruption_risk(v) for v in candidates)
    budget_total = risk_budget * fleet_size

    allocations: List[Allocation] = []
    placed = 0
    risk_sum = 0.0
    for view in candidates:
        if placed >= fleet_size:
            break
        risk = interruption_risk(view)
        take = min(per_pool_cap, fleet_size - placed)
        # shrink the slice until the budget stays reachable assuming the
        # rest of the fleet lands on the safest pools available
        while take > 0:
            rest = fleet_size - placed - take
            if risk_sum + take * risk + rest * min_risk <= budget_total + 1e-9:
                break
            take -= 1
        if take <= 0:
            continue
        allocations.append(Allocation(view, take))
        placed += take
        risk_sum += take * risk

    portfolio = Portfolio(allocations)
    if placed < fleet_size:
        return None
    if len(portfolio.regions) < min_regions:
        return None
    return portfolio


def efficient_frontier(views: Sequence[PoolView], fleet_size: int,
                       budgets: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.7),
                       ) -> List[Tuple[float, Optional[Portfolio]]]:
    """Cost-vs-risk frontier: the portfolio per risk budget.

    Looser budgets admit cheaper (riskier) pools, so hourly cost is
    non-increasing along the frontier wherever portfolios exist.
    """
    return [(budget, build_portfolio(views, fleet_size, budget))
            for budget in budgets]
