"""Spot pool selection policies.

The paper's motivation for the archive is that downstream systems (batch
schedulers, DNN trainers, big-data engines -- SpotOn, Flint, DeepSpotCloud
and friends in its related work) must *choose pools* and the choice should
be informed by availability data.  This module implements the selection
policies a SpotLake consumer can build:

* :class:`CheapestPolicy` -- lowest current spot price (cost-only);
* :class:`SpsPolicy` -- highest current placement score, price tie-break;
* :class:`IfScorePolicy` -- highest interruption-free score, price tie-break;
* :class:`CombinedScorePolicy` -- both scores high first (the paper's
  Section 5.4 recommendation), price tie-break;
* :class:`HistoricalPolicy` -- archive-informed: prefers pools whose
  *preceding-month mean* scores are high, the capability only a SpotLake
  archive provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..analysis.scores import interruption_free_score
from ..cloudsim import SimulatedCloud
from ..core.archive import SpotLakeArchive

Pool = Tuple[str, str, str]  # (instance type, region, zone)


@dataclass(frozen=True)
class PoolView:
    """Everything a policy may look at for one candidate pool."""

    pool: Pool
    spot_price: float
    sps: int
    if_score: float
    sps_mean_30d: Optional[float] = None
    if_mean_30d: Optional[float] = None


def snapshot_pools(cloud: SimulatedCloud, pools: Sequence[Pool],
                   timestamp: float,
                   archive: Optional[SpotLakeArchive] = None,
                   history_days: float = 30.0,
                   history_samples: int = 15) -> List[PoolView]:
    """Build policy inputs for candidate pools at one instant.

    When an archive is supplied, each view additionally carries the
    preceding month's mean scores read from archived history.
    """
    views: List[PoolView] = []
    times = np.linspace(timestamp - history_days * 86400.0, timestamp,
                        history_samples)
    for itype, region, zone in pools:
        # spotlint: disable=QUO001 -- user-side decision probe: a customer
        # reads current price/SPS/advisor from the console, outside
        # SpotLake's collection accounts (next two lines likewise)
        price = cloud.pricing.spot_price(itype, region, timestamp, zone)
        sps = cloud.placement.zone_score(itype, region, zone, timestamp)  # spotlint: disable=QUO001
        ratio = cloud.advisor.interruption_ratio(itype, region, timestamp)  # spotlint: disable=QUO001
        sps_mean = if_mean = None
        if archive is not None:
            sps_hist = [archive.sps_at(itype, region, zone, t) for t in times]
            if_hist = [archive.if_score_at(itype, region, t) for t in times]
            sps_vals = [v for v in sps_hist if v is not None]
            if_vals = [v for v in if_hist if v is not None]
            sps_mean = float(np.mean(sps_vals)) if sps_vals else None
            if_mean = float(np.mean(if_vals)) if if_vals else None
        views.append(PoolView((itype, region, zone), price, sps,
                              interruption_free_score(ratio),
                              sps_mean, if_mean))
    return views


class SelectionPolicy(Protocol):
    """Ranks candidate pools; the first is chosen."""

    name: str

    def rank(self, views: Sequence[PoolView]) -> List[PoolView]:
        ...


class CheapestPolicy:
    """Pick the lowest spot price, ignoring availability entirely."""

    name = "cheapest"

    def rank(self, views: Sequence[PoolView]) -> List[PoolView]:
        return sorted(views, key=lambda v: (v.spot_price, v.pool))


class SpsPolicy:
    """Pick the highest current placement score; cheaper first on ties."""

    name = "sps"

    def rank(self, views: Sequence[PoolView]) -> List[PoolView]:
        return sorted(views, key=lambda v: (-v.sps, v.spot_price, v.pool))


class IfScorePolicy:
    """Pick the highest interruption-free score; cheaper first on ties."""

    name = "if_score"

    def rank(self, views: Sequence[PoolView]) -> List[PoolView]:
        return sorted(views, key=lambda v: (-v.if_score, v.spot_price, v.pool))


class CombinedScorePolicy:
    """Both scores high first -- the paper's Section 5.4 recommendation:
    H-H pools are the most reliable, and on disagreement the placement
    score takes precedence."""

    name = "combined"

    def rank(self, views: Sequence[PoolView]) -> List[PoolView]:
        return sorted(views, key=lambda v: (-(v.sps * 10 + v.if_score),
                                            v.spot_price, v.pool))


class HistoricalPolicy:
    """Prefer pools whose preceding-month mean scores are high.

    Falls back to current values when a pool has no archived history,
    so it degrades gracefully to :class:`CombinedScorePolicy`.
    """

    name = "historical"

    def rank(self, views: Sequence[PoolView]) -> List[PoolView]:
        def key(v: PoolView):
            sps_hist = v.sps_mean_30d if v.sps_mean_30d is not None else v.sps
            if_hist = v.if_mean_30d if v.if_mean_30d is not None else v.if_score
            return (-(sps_hist * 10 + if_hist), v.spot_price, v.pool)
        return sorted(views, key=key)


ALL_POLICIES = (CheapestPolicy, SpsPolicy, IfScorePolicy,
                CombinedScorePolicy, HistoricalPolicy)
