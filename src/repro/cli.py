"""Command-line interface to the SpotLake reproduction.

Mirrors how the real service is operated: plan the collection, run
collection rounds, query the archive, and run the availability experiment.

    python -m repro.cli plan
    python -m repro.cli collect --types m5.large p3.2xlarge --rounds 3
    python -m repro.cli query --type m5.large --region us-east-1
    python -m repro.cli experiment --per-combo 40
    python -m repro.cli serve-bench --output BENCH_serving.json
    python -m repro.cli lint src/repro --format json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import ServiceConfig, SimulatedCloud, SpotLakeService
from .cloudsim import CHAOS_PROFILES
from .core import plan_for_catalog
from .experiments import ExperimentRunner, sample_cases, table3
from .lake import LAKE_DIR_NAME, LAKE_MANIFEST_NAME, SpotDataLake


def _cmd_plan(args: argparse.Namespace) -> int:
    cloud = SimulatedCloud(seed=args.seed)
    plan = plan_for_catalog(cloud.catalog, algorithm=args.algorithm)
    print(f"catalog: {cloud.catalog.summary()}")
    print(f"pair upper bound: {plan.pair_bound_query_count}")
    print(f"offered pairs:    {plan.naive_query_count}")
    print(f"packed queries:   {plan.optimized_query_count} "
          f"({plan.bound_reduction_factor:.2f}x below the bound)")
    return 0


def _cmd_collect(args: argparse.Namespace) -> int:
    if args.lake and not args.data_dir:
        print("--lake requires --data-dir", file=sys.stderr)
        return 2
    config = ServiceConfig(seed=args.seed,
                           instance_types=args.types or None,
                           chaos_profile=args.chaos_profile,
                           chaos_seed=args.chaos_seed,
                           data_dir=args.data_dir,
                           checkpoint_every=args.checkpoint_every,
                           workers=args.workers,
                           plan_cache=args.plan_cache,
                           lake=args.lake,
                           lake_full_refresh_every=args.lake_full_refresh,
                           retention_max_age=(
                               args.retention_hours * 3600.0
                               if args.retention_hours else None))
    service = SpotLakeService(config)
    if args.workers is not None:
        print(f"parallel collection engine: {args.workers} worker(s)")
    if args.plan_cache:
        from .core.plan_cache import PlanCache
        from .solver import STATS as solver_stats
        cache_stats = PlanCache.shared().stats()
        print(f"plan cache: {cache_stats['entries']} entries, "
              f"{cache_stats['hits']} hits / {cache_stats['misses']} misses "
              f"(solver calls this process: {solver_stats.total_calls})")
    engine = service.archive.engine
    if engine is not None and engine.rounds_committed:
        print(f"recovered {engine.rounds_committed} committed round(s) "
              f"from {args.data_dir}"
              + (" (data loss: torn tail discarded)"
                 if engine.recovered.data_loss else ""))
        # resume the collection timeline one cadence after the last
        # committed round (the archive is append-in-time-order)
        if engine.last_commit_time is not None:
            resume = engine.last_commit_time + args.interval_minutes * 60.0
            if resume > service.cloud.clock.now():
                service.cloud.clock.set(resume)
    for round_no in range(args.rounds):
        reports = service.collect_once()
        sps = reports["sps"]
        line = (f"round {round_no}: sps queries={sps.queries_issued} "
                f"failed={sps.queries_failed} records={sps.records_written}")
        if service.chaos_enabled:
            merged = reports["sps"].merge(reports["advisor"]) \
                                   .merge(reports["price"])
            line += (f" retries={merged.retries} gaps={merged.gaps} "
                     f"breaker_trips={merged.breaker_trips}")
        print(line)
        service.cloud.clock.advance_minutes(args.interval_minutes)
    # per-table ingest stats (the archive's stats() adds a "lake" summary
    # key in lake mode; the store's view is tables only)
    for table, stats in service.archive.store.stats().items():
        print(f"{table}: {stats['records_written']} written -> "
              f"{stats['change_points_stored']} stored "
              f"(dedup {stats['dedup_ratio']:.3f})")
    if service.chaos_enabled:
        for source, stats in sorted(service.resilience_stats().items()):
            print(f"resilience[{source}]: retries={stats['retries']} "
                  f"gaps={stats['gaps']} breaker={stats['breaker_state']} "
                  f"trips={stats['breaker_trips']}")
        faults = service.cloud.faults
        print(f"chaos: {faults.faults_injected()} faults injected over "
              f"{sum(faults.calls(op) for op in ('sps', 'advisor', 'price'))} "
              f"calls (profile={args.chaos_profile}, "
              f"seed={config.chaos_seed if config.chaos_seed is not None else config.seed})")
    if engine is not None:
        service.archive.checkpoint(service.cloud.clock.now())
        stats = engine.stats()
        print(f"storage: {stats['rounds_committed']} rounds committed, "
              f"{stats['checkpoints']} checkpoints, "
              f"manifest v{stats['manifest_version']}, "
              f"wal {stats['wal_bytes_written']}B, "
              f"segments {stats['live_segment_bytes']}B live "
              f"(amplification {stats['write_amplification']:.2f}x)")
    if service.archive.lake is not None:
        census = service.archive.lake.census()
        archive = service.archive
        avoided = archive.rows_merged - archive.rows_ingested
        ratio = (archive.rows_merged / archive.rows_ingested
                 if archive.rows_ingested else 0.0)
        print(f"lake: {census['partitions']} partition(s) over "
              f"{census['days']} day(s), {census['rounds']} round(s), "
              f"{census['bytes']}B cold")
        print(f"lake diff: {archive.rows_merged} rows merged, "
              f"{archive.rows_ingested} ingested hot "
              f"({avoided} avoided, {ratio:.1f}x reduction)")
    if args.output:
        from .timeseries import dump_store
        written = dump_store(service.archive.store, args.output)
        print(f"snapshot written to {args.output}: {written}")
    service.close()
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from .storage import recover

    try:
        state = recover(args.data_dir)
    except Exception as exc:  # noqa: BLE001 -- operator-facing boundary
        print(f"recovery failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    print(f"recovered {args.data_dir}: manifest v{state.manifest.version}, "
          f"{state.rounds_committed} committed round(s), "
          f"last seq {state.last_seq}")
    if state.last_commit_time is not None:
        print(f"last commit at t={state.last_commit_time}")
    print(f"wal tail: {state.replayed_operations} operation(s) replayed, "
          f"{state.torn_lines} torn line(s) discarded, "
          f"{state.uncommitted_records} uncommitted record(s) discarded")
    for name in state.store.table_names():
        stats = state.store.table(name).stats
        policy = state.store.policy(name)
        retention = ("keep-all" if policy.max_age_seconds is None
                     else f"{policy.max_age_seconds:.0f}s")
        print(f"{name}: {stats.series_count} series, "
              f"{stats.change_points_stored} change points, "
              f"{stats.records_written} records written "
              f"(retention {retention})")
    lake_root = Path(args.data_dir) / LAKE_DIR_NAME
    if (lake_root / LAKE_MANIFEST_NAME).exists():
        lake = SpotDataLake(lake_root)
        ahead = lake.trim_to(state.last_commit_time)
        census = lake.census()
        span = ("empty" if census["start"] is None else
                f"t={census['start']:.0f}..{census['end']:.0f}")
        print(f"lake: {census['partitions']} partition(s) over "
              f"{census['days']} day(s), {census['rounds']} committed "
              f"round(s), {census['bytes']} bytes, {span}"
              + (f" ({ahead} uncommitted round(s) pending trim)"
                 if ahead else ""))
    if args.output:
        from .timeseries import dump_store
        written = dump_store(state.store, args.output)
        print(f"snapshot written to {args.output}: {written}")
    if state.data_loss:
        print("note: an in-flight (uncommitted) round was discarded; "
              "every committed round is intact")
    return 0


def _cmd_lake(args: argparse.Namespace) -> int:
    root = Path(args.data_dir) / LAKE_DIR_NAME
    if not (root / LAKE_MANIFEST_NAME).exists():
        print(f"no lake manifest under {root}", file=sys.stderr)
        return 1
    lake = SpotDataLake(root)
    if args.action == "stats":
        census = lake.census()
        span = ("empty" if census["start"] is None else
                f"t={census['start']:.0f}..{census['end']:.0f}")
        print(f"lake at {root}: {census['partitions']} partition(s), "
              f"{census['rounds']} round(s) over {census['days']} day(s), "
              f"{census['rows']} rows, {census['bytes']} bytes, {span}")
        for day in lake.days():
            parts = [p for p in lake.partitions if p.day == day]
            kinds = sorted({p.kind for p in parts})
            print(f"  {day}: {len(parts)} partition(s) "
                  f"[{'+'.join(kinds)}], "
                  f"{sum(len(p.rounds) for p in parts)} round(s), "
                  f"{sum(p.bytes for p in parts)} bytes")
        return 0
    summary = lake.compact(include_active=args.include_active)
    print(f"compacted {summary['days_compacted']} day(s): "
          f"{summary['partitions_merged']} round file(s) folded, "
          f"{summary['bytes_before']} -> {summary['bytes_after']} bytes")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    service = SpotLakeService(ServiceConfig(
        seed=args.seed, instance_types=[args.type]))
    service.collect_once()
    now = service.cloud.clock.now()
    params = {"instance_type": args.type, "region": args.region,
              "at": str(now)}
    if args.zone:
        params["zone"] = args.zone
    response = service.gateway.get("/latest", params)
    if response.status != 200:
        print(f"error {response.status}: {response.body}", file=sys.stderr)
        return 1
    for key, value in sorted(response.body.items()):
        print(f"{key}: {value}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import DATASET_MEASURES, AnalyticsEngine
    from .core.archive import DIM_REGION, DIM_TYPE, DIM_ZONE
    from .devtools.servebench import build_backfilled_service
    from .timeseries import AGGREGATES

    aggregates = [a.strip() for a in args.agg.split(",") if a.strip()]
    unknown = sorted(set(aggregates) - set(AGGREGATES))
    if unknown:
        print(f"unknown aggregate(s): {', '.join(unknown)} "
              f"(known: {', '.join(AGGREGATES)})", file=sys.stderr)
        return 2
    dim_of = {"instance_type": DIM_TYPE, "region": DIM_REGION,
              "zone": DIM_ZONE}
    group_names = [g.strip() for g in args.group_by.split(",") if g.strip()]
    bad = sorted(set(group_names) - set(dim_of))
    if bad:
        print(f"cannot group by: {', '.join(bad)} "
              f"(known: {', '.join(sorted(dim_of))})", file=sys.stderr)
        return 2

    service = build_backfilled_service(seed=args.seed, days=args.days,
                                       pool_types=args.pool_types)
    engine = AnalyticsEngine(service.archive)
    start = service.cloud.clock.start
    end = service.cloud.clock.now()
    bucket = args.bucket_days * 86400.0 if args.bucket_days else None
    spec = engine.spec(args.dataset, start, end, bucket_seconds=bucket,
                       group_by=[dim_of[g] for g in group_names],
                       aggregates=aggregates)
    if args.engine == "vector":
        result = engine.aggregate(spec)
        labels, edges, tables = result.group_labels, result.edges, \
            result.tables
    else:
        from .devtools.analysisbench import reference_aggregate
        reference = reference_aggregate(service.archive, spec)
        labels, edges, tables = reference["labels"], reference["edges"], \
            reference["tables"]

    table, measure = DATASET_MEASURES[args.dataset]
    print(f"{args.dataset} ({table}.{measure}), {args.days} day(s), "
          f"{len(labels) or 1} group(s) x {len(edges) - 1} bucket(s), "
          f"engine={args.engine}")
    header = [*(group_names or ()), "bucket_start", *aggregates]
    print("  " + "  ".join(f"{h:>14s}" for h in header))
    printed = 0
    for g, label in enumerate(labels or [()]):
        for b in range(len(edges) - 1):
            if printed >= args.limit:
                break
            cells = [f"{v:>14s}" for v in label]
            cells.append(f"{float(edges[b]):>14.0f}")
            for agg in aggregates:
                value = float(tables[agg][g, b])
                cells.append(f"{value:>14.4f}")
            print("  " + "  ".join(cells))
            printed += 1
    if args.engine == "vector":
        stats = engine.stats()
        print(f"analytics: {stats['queries']} query(ies), "
              f"{stats['chunks_pruned']} chunks pruned / "
              f"{stats['chunks_decoded']} decoded, "
              f"rollup days {stats['rollup_day_hits']} hit / "
              f"{stats['rollup_day_recomputes']} recomputed")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    cloud = SimulatedCloud(seed=args.seed)
    submit = cloud.clock.start + args.day * 86400.0
    cloud.clock.set(submit)
    cases = sample_cases(cloud, submit, per_combo=args.per_combo)
    print(f"running {len(cases)} stratified 24-hour experiments ...")
    results = ExperimentRunner(cloud).run_all(cases)
    print(f"{'combo':6s} {'not-fulfilled':>14s} {'interrupted':>12s}")
    for row in table3(results):
        print(f"{row.combo:6s} {row.not_fulfilled_percent:13.1f}% "
              f"{row.interrupted_percent:11.1f}%")
    return 0


def _cmd_serve_bench_concurrent(args: argparse.Namespace) -> int:
    """The --concurrent arm: frontend load test with SLO gates."""
    import json as _json

    from .devtools.frontendbench import (
        evaluate_slos,
        run_frontend_bench,
        summary_lines as frontend_summary,
    )

    report = run_frontend_bench(seed=args.seed, requests=args.requests,
                                clients=args.clients,
                                tenant_count=args.tenants,
                                workers=args.workers)
    report["slo"] = slo = evaluate_slos(report)
    for line in frontend_summary(report):
        print(line)
    print(f"SLO: p99={slo['p99_ms']:.2f}ms (limit {slo['p99_limit_ms']}) "
          f"error_rate={slo['error_rate']:.3f} "
          f"fairness={slo['fairness']:.2f} passed={slo['passed']}")
    if args.output:
        merged = {}
        try:
            with open(args.output, "r", encoding="utf-8") as fh:
                merged = _json.load(fh)
        except (OSError, ValueError):
            merged = {}
        merged["concurrent"] = report
        with open(args.output, "w", encoding="utf-8") as fh:
            _json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report merged into {args.output}")
    if not slo["passed"]:
        print(f"FAIL: SLO gates not met: "
              f"{_json.dumps(slo, sort_keys=True)}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    if args.concurrent:
        return _cmd_serve_bench_concurrent(args)
    from .devtools.servebench import run_serve_bench, summary_lines

    report = run_serve_bench(seed=args.seed, days=args.days,
                             pool_types=args.pool_types,
                             repeats=args.repeats,
                             page_limit=args.page_limit)
    for line in summary_lines(report):
        print(line)
    if args.output:
        import json as _json
        with open(args.output, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.output}")
    if not report["byte_identical"]:
        print("FAIL: cached responses diverge from uncached responses",
              file=sys.stderr)
        return 1
    if args.min_speedup and report["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {report['speedup']:.1f}x below required "
              f"{args.min_speedup:.1f}x", file=sys.stderr)
        return 1
    return 0


def _parse_code_list(raw, what):
    """Validated comma-separated rule codes, or an error string."""
    from .devtools import registered_codes

    codes = [c.strip() for c in raw.split(",") if c.strip()]
    unknown = sorted(set(codes) - set(registered_codes()))
    if unknown:
        return None, (f"unknown {what} code(s): {', '.join(unknown)} "
                      f"(registered: {', '.join(registered_codes())})")
    return codes, None


def _cmd_lint(args: argparse.Namespace) -> int:
    import dataclasses

    from .devtools import (
        ConfigError,
        lint_paths,
        load_config,
        write_report,
    )
    from .devtools.config import find_pyproject

    codes = None
    if args.rules:
        codes, error = _parse_code_list(args.rules, "rule")
        if error:
            print(error, file=sys.stderr)
            return 2

    paths = args.paths or ["src/repro"]
    pyproject = args.config or find_pyproject(paths[0])
    try:
        config = load_config(pyproject)
    except (ConfigError, OSError) as exc:
        print(f"bad spotlint config {pyproject}: {exc}", file=sys.stderr)
        return 2
    # --select / --ignore override the [tool.spotlint] config wholesale
    if args.select:
        selected, error = _parse_code_list(args.select, "select")
        if error:
            print(error, file=sys.stderr)
            return 2
        config = dataclasses.replace(config, select=tuple(selected))
    if args.ignore:
        ignored, error = _parse_code_list(args.ignore, "ignore")
        if error:
            print(error, file=sys.stderr)
            return 2
        config = dataclasses.replace(config, ignore=tuple(ignored))
    try:
        result = lint_paths(paths, config, codes)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.sanitize:
        from .devtools.sanitizer import SANITIZER_CODES, run_sanitized_probe

        probe = run_sanitized_probe()
        result.rules_run.extend(code for code in SANITIZER_CODES
                                if code not in result.rules_run)
        result.findings.extend(probe.findings)
        result.sort()
    write_report(result, sys.stdout, fmt=args.format,
                 show_suppressed=args.show_suppressed)
    return 0 if result.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SpotLake reproduction CLI")
    parser.add_argument("--seed", type=int, default=0,
                        help="world seed (default 0)")
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="show the bin-packed query plan")
    plan.add_argument("--algorithm", choices=("exact", "ffd", "naive"),
                      default="exact")
    plan.set_defaults(func=_cmd_plan)

    collect = sub.add_parser("collect", help="run collection rounds")
    collect.add_argument("--types", nargs="*", default=None,
                         help="restrict to these instance types")
    collect.add_argument("--rounds", type=int, default=1)
    collect.add_argument("--interval-minutes", type=float, default=10.0)
    collect.add_argument("--output", default=None,
                         help="directory for an archive snapshot")
    collect.add_argument("--chaos-profile", default="none",
                         choices=sorted(CHAOS_PROFILES),
                         help="inject deterministic transient faults "
                              "(default: none)")
    collect.add_argument("--chaos-seed", type=int, default=None,
                         help="fault-schedule seed (default: --seed)")
    collect.add_argument("--data-dir", default=None,
                         help="durable storage directory (WAL + segments); "
                              "restarts recover committed rounds from it")
    collect.add_argument("--checkpoint-every", type=int, default=4,
                         help="fold the WAL into segments every N rounds "
                              "(default 4; 0 = only at exit)")
    collect.add_argument("--workers", type=int, default=None,
                         help="SPS materialization worker threads (default: "
                              "legacy serial collector; any count is "
                              "byte-identical to serial)")
    collect.add_argument("--plan-cache", default=True,
                         action=argparse.BooleanOptionalAction,
                         help="reuse solved query packings across rounds "
                              "and restarts (default on)")
    collect.add_argument("--lake", action="store_true",
                         help="tiered-lake mode: archive every merged "
                              "round cold and ingest only changed rows "
                              "(requires --data-dir)")
    collect.add_argument("--lake-full-refresh", type=int, default=0,
                         help="emit all rows (not just changes) every Nth "
                              "round (default 0 = never)")
    collect.add_argument("--retention-hours", type=float, default=None,
                         help="evict hot change points older than this; "
                              "with --lake they stay queryable cold")
    collect.set_defaults(func=_cmd_collect)

    recover_cmd = sub.add_parser(
        "recover", help="inspect and recover a durable storage directory")
    recover_cmd.add_argument("--data-dir", required=True,
                             help="storage directory written by "
                                  "'collect --data-dir'")
    recover_cmd.add_argument("--output", default=None,
                             help="write a snapshot of the recovered "
                                  "archive to this directory")
    recover_cmd.set_defaults(func=_cmd_recover)

    lake_cmd = sub.add_parser(
        "lake", help="inspect or compact a cold lake tier")
    lake_cmd.add_argument("action", choices=("stats", "compact"),
                          help="stats: census + per-day partition listing; "
                               "compact: fold finished days' round files "
                               "into deduped day files")
    lake_cmd.add_argument("--data-dir", required=True,
                          help="storage directory written by "
                               "'collect --data-dir --lake'")
    lake_cmd.add_argument("--include-active", action="store_true",
                          help="also compact the newest (still collecting) "
                               "day")
    lake_cmd.set_defaults(func=_cmd_lake)

    query = sub.add_parser("query", help="query the latest archived values")
    query.add_argument("--type", required=True)
    query.add_argument("--region", required=True)
    query.add_argument("--zone", default=None)
    query.set_defaults(func=_cmd_query)

    analyze = sub.add_parser(
        "analyze",
        help="bucketed group-by aggregation over a backfilled archive")
    analyze.add_argument("--dataset", default="sps",
                         choices=("sps", "if_score", "interruption_ratio",
                                  "savings", "price"))
    analyze.add_argument("--days", type=int, default=14,
                         help="backfilled archive window (days)")
    analyze.add_argument("--pool-types", type=int, default=8,
                         help="instance types in the backfill slice")
    analyze.add_argument("--bucket-days", type=float, default=1.0,
                         help="bucket width in days (0 = one bucket "
                              "spanning the window)")
    analyze.add_argument("--group-by", default="region",
                         help="comma-separated dimensions: instance_type, "
                              "region, zone ('' = one global group)")
    analyze.add_argument("--agg", default="mean,count",
                         help="comma-separated aggregates (e.g. "
                              "mean,count,std,twa_mean)")
    analyze.add_argument("--engine", choices=("vector", "rows"),
                         default="vector",
                         help="vector: columnar pushdown engine; rows: "
                              "the row-at-a-time reference")
    analyze.add_argument("--limit", type=int, default=20,
                         help="max result rows printed")
    analyze.set_defaults(func=_cmd_analyze)

    experiment = sub.add_parser("experiment",
                                help="run the Table-3 availability experiment")
    experiment.add_argument("--per-combo", type=int, default=40)
    experiment.add_argument("--day", type=float, default=35.0,
                            help="submission day inside the window")
    experiment.set_defaults(func=_cmd_experiment)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="benchmark the serving read path, cached vs uncached")
    serve_bench.add_argument("--days", type=int, default=120,
                             help="backfilled archive window (days)")
    serve_bench.add_argument("--pool-types", type=int, default=12,
                             help="instance types in the backfill slice")
    serve_bench.add_argument("--repeats", type=int, default=40,
                             help="workload battery repetitions")
    serve_bench.add_argument("--page-limit", type=int, default=500,
                             help="page size of the paginated request")
    serve_bench.add_argument("--output", default=None,
                             help="write the JSON report here "
                                  "(e.g. BENCH_serving.json)")
    serve_bench.add_argument("--min-speedup", type=float, default=0.0,
                             help="exit 1 when the cache speedup falls "
                                  "below this factor")
    serve_bench.add_argument("--concurrent", action="store_true",
                             help="load-test the threaded admission-"
                                  "controlled frontend instead (SLO-gated)")
    serve_bench.add_argument("--workers", type=int, default=4,
                             help="serving worker threads (--concurrent)")
    serve_bench.add_argument("--clients", type=int, default=8,
                             help="closed-loop client threads "
                                  "(--concurrent)")
    serve_bench.add_argument("--requests", type=int, default=320,
                             help="zipf-mixed requests per model "
                                  "(--concurrent)")
    serve_bench.add_argument("--tenants", type=int, default=4,
                             help="tenant API keys in the fleet "
                                  "(--concurrent)")
    serve_bench.set_defaults(func=_cmd_serve_bench)

    lint = sub.add_parser(
        "lint", help="run the spotlint invariant checks")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src/repro)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule codes to enable, "
                           "overriding [tool.spotlint] select")
    lint.add_argument("--ignore", default=None,
                      help="comma-separated rule codes to disable, "
                           "overriding [tool.spotlint] ignore")
    lint.add_argument("--sanitize", action="store_true",
                      help="also run a parallel collection probe under the "
                           "runtime concurrency sanitizer (SAN001/SAN002)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule codes (default: all)")
    lint.add_argument("--config", default=None,
                      help="pyproject.toml to read [tool.spotlint] from "
                           "(default: nearest to the linted path)")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also list suppressed findings (text format)")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
