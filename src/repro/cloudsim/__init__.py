"""Simulated AWS-like spot cloud substrate.

Substitutes the live cloud the paper measured: a deterministic catalog
(547 instance types, 17 regions, 63 zones), latent capacity processes, and
engines producing the three spot datasets plus real request behaviour, all
behind a quota-enforcing boto3-like client.
"""

from .accounts import Account, AccountPool, make_query_key, DEFAULT_QUERY_QUOTA
from .advisor import AdvisorEngine, AdvisorEntry, bucket_index, bucket_label
from .catalog import (
    Catalog,
    InstanceFamily,
    InstanceType,
    Region,
    default_families,
    default_regions,
    CATEGORIES,
    SIZE_LADDER,
)
from .clock import SimulationClock, PAPER_WINDOW_START, PAPER_WINDOW_DAYS
from .events import CapacityEvent, JUNE_2_EVENT, default_events
from .ec2_api import Ec2Client, SimulatedCloud, MAX_SPS_RESULTS
from .errors import (
    CloudError,
    CredentialExpiredError,
    InternalServerError,
    QuotaExceededError,
    RequestNotFoundError,
    RequestTimeoutError,
    ThrottlingError,
    TransientError,
    UnknownInstanceTypeError,
    UnknownRegionError,
    UnsupportedOfferingError,
    ValidationError,
)
from .faults import (
    CHAOS_PROFILES,
    ChaosProfile,
    CrashInjector,
    CrashPoint,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultWindow,
    FiredCrash,
    InjectedFault,
    SimulatedCrash,
    make_fault,
    resolve_profile,
    seeded_crash_point,
)
from .lifecycle import (
    LifecycleEvent,
    RequestSimulator,
    RequestState,
    SpotRequest,
    STATE_DESCRIPTIONS,
    ALLOWED_TRANSITIONS,
)
from .market import SpotMarket, reclaim_ratio_from_u
from .placement import PlacementScore, PlacementScoreEngine
from .pricing import PricePoint, PricingEngine

__all__ = [
    "Account", "AccountPool", "make_query_key", "DEFAULT_QUERY_QUOTA",
    "AdvisorEngine", "AdvisorEntry", "bucket_index", "bucket_label",
    "Catalog", "InstanceFamily", "InstanceType", "Region",
    "default_families", "default_regions", "CATEGORIES", "SIZE_LADDER",
    "SimulationClock", "PAPER_WINDOW_START", "PAPER_WINDOW_DAYS",
    "CapacityEvent", "JUNE_2_EVENT", "default_events",
    "Ec2Client", "SimulatedCloud", "MAX_SPS_RESULTS",
    "CloudError", "QuotaExceededError", "RequestNotFoundError",
    "UnknownInstanceTypeError", "UnknownRegionError",
    "UnsupportedOfferingError", "ValidationError",
    "CredentialExpiredError", "InternalServerError", "RequestTimeoutError",
    "ThrottlingError", "TransientError",
    "CHAOS_PROFILES", "ChaosProfile", "FAULT_KINDS", "FaultInjector",
    "FaultPlan", "FaultWindow", "InjectedFault", "make_fault",
    "resolve_profile",
    "CrashInjector", "CrashPoint", "FiredCrash", "SimulatedCrash",
    "seeded_crash_point",
    "LifecycleEvent", "RequestSimulator", "RequestState", "SpotRequest",
    "STATE_DESCRIPTIONS", "ALLOWED_TRANSITIONS",
    "SpotMarket", "reclaim_ratio_from_u",
    "PlacementScore", "PlacementScoreEngine",
    "PricePoint", "PricingEngine",
]
