"""Cloud accounts and the placement-score query quota.

The paper's central collection obstacle (Section 3.1): one account may issue
at most ~50 *unique* placement-score queries per rolling 24 hours, where
uniqueness is the combination of instance types, regions and target
capacity; repeating an already-issued query is free.  SpotLake needs ~2,226
unique queries per round after bin-packing, so it must spread them over a
pool of accounts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from .errors import CredentialExpiredError, QuotaExceededError

#: Empirical unique-query allowance per account per rolling 24 hours.
DEFAULT_QUERY_QUOTA = 50

#: Rolling window length for the quota, seconds.
QUOTA_WINDOW_SECONDS = 24 * 3600.0

#: A hashable unique-query fingerprint:
#: (types, regions, target capacity, single-AZ flag).
QueryKey = Tuple[FrozenSet[str], FrozenSet[str], int, bool]


def make_query_key(instance_types, regions, target_capacity: int,
                   single_availability_zone: bool) -> QueryKey:
    """Canonical uniqueness key of a placement-score query."""
    return (frozenset(instance_types), frozenset(regions),
            int(target_capacity), bool(single_availability_zone))


@dataclass
class Account:
    """One cloud account with its own rolling unique-query budget."""

    name: str
    quota: int = DEFAULT_QUERY_QUOTA
    #: first-seen timestamp per unique query currently inside the window.
    #: Insertion order equals charge-time order (the simulation clock is
    #: forward-only and repeats keep their original stamp), so expiry only
    #: ever pops from the front -- see :meth:`_expire`.
    _seen: Dict[QueryKey, float] = field(default_factory=dict, repr=False)
    #: security-token validity; flipped by injected credential faults
    _credentials_expired: bool = field(default=False, repr=False)

    @property
    def credentials_valid(self) -> bool:
        return not self._credentials_expired

    def expire_credentials(self) -> None:
        """Invalidate the security token (fault injection entry point)."""
        self._credentials_expired = True

    def refresh_credentials(self) -> None:
        """Re-authenticate; quota state is untouched (it is per account,
        not per token)."""
        self._credentials_expired = False

    def check_credentials(self) -> None:
        """Raise if the token is expired; every API call goes through this."""
        if self._credentials_expired:
            raise CredentialExpiredError(
                f"account {self.name!r}: security token expired; refresh "
                f"credentials before retrying")

    def _expire(self, now: float) -> None:
        """Drop charges that left the rolling window.

        ``_seen`` is charge-ordered (timestamps non-decreasing), so stale
        entries form a prefix: pop from the front and stop at the first
        in-window stamp.  Amortized O(1) per call instead of a full scan --
        ``acquire`` probes every account on a pool miss, which made the
        full scan the collection round's second-hottest path.
        """
        cutoff = now - QUOTA_WINDOW_SECONDS
        seen = self._seen
        while seen:
            key = next(iter(seen))
            if seen[key] > cutoff:
                break
            del seen[key]

    def unique_queries_used(self, now: float) -> int:
        """Unique queries charged inside the current rolling window."""
        self._expire(now)
        return len(self._seen)

    def remaining(self, now: float) -> int:
        """Unique queries still available inside the rolling window."""
        return self.quota - self.unique_queries_used(now)

    def would_charge(self, key: QueryKey, now: float) -> bool:
        """True if issuing ``key`` now would consume quota (i.e. is new)."""
        self._expire(now)
        return key not in self._seen

    def charge(self, key: QueryKey, now: float) -> None:
        """Record a query, raising if a *new* query exceeds the quota."""
        self._expire(now)
        if key in self._seen:
            return  # repeats are free
        if len(self._seen) >= self.quota:
            raise QuotaExceededError(
                f"account {self.name!r} exhausted its {self.quota} unique "
                f"placement-score queries for the rolling 24h window")
        self._seen[key] = now


class AccountPool:
    """A rotating pool of accounts used by SpotLake's SPS collector.

    ``acquire(key, now)`` returns an account that can issue the query,
    preferring one that has already been charged for it (repeat == free),
    else the account with the most remaining quota.
    """

    def __init__(self, size: int, quota: int = DEFAULT_QUERY_QUOTA,
                 name_prefix: str = "spotlake"):
        if size < 1:
            raise ValueError("an account pool needs at least one account")
        self.accounts: List[Account] = [
            Account(f"{name_prefix}-{i:03d}", quota) for i in range(size)]
        #: hint index: the account last picked for each key.  A key is only
        #: ever *charged* to one account while it sits inside the window
        #: (the linear scan below returns the holder before anyone else can
        #: be charged), so a validated hint is exact; a stale hint (charge
        #: never happened, or the window rolled) falls back to the scan.
        self._charged: Dict[QueryKey, Account] = {}
        # acquisition must stay race-free under the parallel collection
        # engine; its control pass is single-threaded, the lock makes the
        # invariant explicit rather than incidental
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.accounts)

    def acquire(self, key: QueryKey, now: float) -> Account:
        """Pick an account able to issue ``key`` at ``now``."""
        with self._lock:
            hinted = self._charged.get(key)
            if hinted is not None and not hinted.would_charge(key, now):
                return hinted
            for account in self.accounts:
                if not account.would_charge(key, now):
                    self._charged[key] = account
                    return account
            best = max(self.accounts, key=lambda a: a.remaining(now))
            if best.remaining(now) <= 0:
                raise QuotaExceededError(
                    "every account in the pool exhausted its unique-query "
                    "quota")
            self._charged[key] = best
            return best

    def total_remaining(self, now: float) -> int:
        """Unique-query headroom across the whole pool."""
        return sum(a.remaining(now) for a in self.accounts)

    @staticmethod
    def size_for(unique_queries: int, quota: int = DEFAULT_QUERY_QUOTA) -> int:
        """Accounts needed to issue ``unique_queries`` within one window."""
        return -(-unique_queries // quota)  # ceil division
