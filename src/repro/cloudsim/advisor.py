"""Spot instance advisor engine.

Models AWS's *Spot Instance Advisor* (paper Section 2.2): per
(instance type, region), the interruption frequency over the preceding month
bucketed into five categories, plus the cost saving over on-demand price.
Two access quirks are reproduced:

* the dataset is published as a *web snapshot* only -- there is no CLI --
  so the simulated EC2 client deliberately does not expose it, and SpotLake's
  collector goes through a SpotInfo-style scraper wrapper instead;
* values are refreshed on a slow cadence (days), which is why the paper's
  Figure 10 finds the interruption-free score to be the least frequently
  updated dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .._util import stable_range
from .catalog import Catalog, InstanceType
from .clock import SECONDS_PER_DAY
from .market import SpotMarket

#: The five advisor buckets: (upper-bound-exclusive ratio, label).  The last
#: bucket is open-ended.
INTERRUPTION_BUCKETS = (
    (0.05, "<5%"),
    (0.10, "5-10%"),
    (0.15, "10-15%"),
    (0.20, "15-20%"),
    (float("inf"), ">20%"),
)

#: Mean days between advisor snapshot refreshes (per type-region pair the
#: exact cadence is jittered deterministically).
ADVISOR_REFRESH_DAYS_MIN = 4.0
ADVISOR_REFRESH_DAYS_MAX = 12.0


def bucket_label(ratio: float) -> str:
    """Advisor category label for a raw interruption ratio."""
    for upper, label in INTERRUPTION_BUCKETS:
        if ratio < upper:
            return label
    return INTERRUPTION_BUCKETS[-1][1]


def bucket_index(ratio: float) -> int:
    """Index 0..4 of the advisor bucket for a raw interruption ratio."""
    for idx, (upper, _) in enumerate(INTERRUPTION_BUCKETS):
        if ratio < upper:
            return idx
    return len(INTERRUPTION_BUCKETS) - 1


@dataclass(frozen=True)
class AdvisorEntry:
    """One (instance type, region) row of the advisor web snapshot."""

    instance_type: str
    region: str
    interruption_label: str
    interruption_bucket: int
    savings_percent: int


class AdvisorEngine:
    """Produces advisor web snapshots from the latent market state."""

    def __init__(self, market: SpotMarket, pricing=None):
        self.market = market
        self.catalog: Catalog = market.catalog
        #: PricingEngine is optional to break an import cycle in tests; when
        #: absent, savings fall back to a deterministic per-pair constant.
        self.pricing = pricing

    def _refresh_period(self, itype_name: str, region: str) -> float:
        return stable_range(ADVISOR_REFRESH_DAYS_MIN, ADVISOR_REFRESH_DAYS_MAX,
                            "advisor-refresh", self.market.seed,
                            itype_name, region) * SECONDS_PER_DAY

    def snapshot_time(self, itype_name: str, region: str, timestamp: float) -> float:
        """Time at which the advisor last refreshed this pair.

        The advisor republishes on a slow per-pair cadence; between refreshes
        the reported value is frozen, which produces the long update
        intervals of Figure 10.
        """
        period = self._refresh_period(itype_name, region)
        offset = stable_range(0.0, 1.0, "advisor-offset", self.market.seed,
                              itype_name, region) * period
        since_epoch = timestamp - self.market.epoch - offset
        cycles = max(0.0, since_epoch // period)
        return self.market.epoch + offset + cycles * period

    def interruption_ratio(self, itype: InstanceType | str, region: str,
                           timestamp: float) -> float:
        """Trailing-month interruption ratio as of the last refresh."""
        name = itype if isinstance(itype, str) else itype.name
        frozen_at = self.snapshot_time(name, region, timestamp)
        return self.market.interruption_ratio(name, region, frozen_at)

    def savings_percent(self, itype: InstanceType | str, region: str,
                        timestamp: float) -> int:
        """Advertised percentage saving of spot over on-demand."""
        if isinstance(itype, str):
            itype = self.catalog.instance_type(itype)
        frozen_at = self.snapshot_time(itype.name, region, timestamp)
        if self.pricing is not None:
            od = itype.on_demand_price
            spot = self.pricing.spot_price(itype, region, frozen_at)
            return int(round(100.0 * (1.0 - spot / od)))
        return int(round(stable_range(50.0, 90.0, "advisor-savings",
                                      self.market.seed, itype.name, region)))

    def entry(self, itype: InstanceType | str, region: str,
              timestamp: float) -> AdvisorEntry:
        """One advisor row for (type, region) as of ``timestamp``."""
        if isinstance(itype, str):
            itype = self.catalog.instance_type(itype)
        ratio = self.interruption_ratio(itype, region, timestamp)
        return AdvisorEntry(
            instance_type=itype.name,
            region=region,
            interruption_label=bucket_label(ratio),
            interruption_bucket=bucket_index(ratio),
            savings_percent=self.savings_percent(itype, region, timestamp),
        )

    def web_snapshot(self, timestamp: float) -> List[AdvisorEntry]:
        """The full advisor dataset as served by the vendor's website.

        One row per offered (instance type, region); a single fetch covers
        everything, matching the paper's note that the advisor dataset "can
        be queried with a single execution".
        """
        rows: List[AdvisorEntry] = []
        for itype in self.catalog.instance_types:
            for region in self.catalog.regions:
                if self.catalog.is_offered(itype, region.code):
                    rows.append(self.entry(itype, region.code, timestamp))
        return rows
