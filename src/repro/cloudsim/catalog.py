"""Instance-type / region / availability-zone catalog for the simulated cloud.

The paper's collection window covers "about 547 instance types, 17 regions,
and 63 availability zones" on AWS.  This module reconstructs a catalog of the
same shape: the real 2022-era instance families with realistic size ranges,
17 regions whose availability-zone counts sum to 63, and a deterministic
offering matrix (which types exist in which regions, and in how many zones of
each region).

Everything here is deterministic given the catalog ``seed``; no global state.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Mapping, Sequence, Tuple

from .._util import stable_range, stable_uniform
from .errors import UnknownInstanceTypeError, UnknownRegionError

# ---------------------------------------------------------------------------
# Instance families
# ---------------------------------------------------------------------------

#: Instance categories used throughout the paper's figures (vertical axis of
#: Figures 3/4/7 groups classes in this order).
CATEGORIES = (
    "general",
    "compute",
    "memory",
    "accelerated",
    "storage",
)

#: Ordered size ladder.  ``rank`` is the index in this tuple and drives the
#: size-related availability penalty (Figure 5: larger sizes score lower).
SIZE_LADDER = (
    "nano",
    "micro",
    "small",
    "medium",
    "large",
    "xlarge",
    "2xlarge",
    "3xlarge",
    "4xlarge",
    "6xlarge",
    "8xlarge",
    "9xlarge",
    "10xlarge",
    "12xlarge",
    "16xlarge",
    "18xlarge",
    "24xlarge",
    "32xlarge",
    "48xlarge",
    "metal",
)

_SIZE_RANK = {name: rank for rank, name in enumerate(SIZE_LADDER)}

#: Approximate vCPU count per size (metal resolved per family to its largest
#: virtualized size).
_SIZE_VCPUS = {
    "nano": 2,
    "micro": 2,
    "small": 2,
    "medium": 2,
    "large": 2,
    "xlarge": 4,
    "2xlarge": 8,
    "3xlarge": 12,
    "4xlarge": 16,
    "6xlarge": 24,
    "8xlarge": 32,
    "9xlarge": 36,
    "10xlarge": 40,
    "12xlarge": 48,
    "16xlarge": 64,
    "18xlarge": 72,
    "24xlarge": 96,
    "32xlarge": 128,
    "48xlarge": 192,
}

#: GiB of memory per vCPU for each category.
_MEM_PER_VCPU = {
    "general": 4.0,
    "compute": 2.0,
    "memory": 8.0,
    "accelerated": 8.0,
    "storage": 7.6,
}

#: On-demand $/hour per vCPU for each category (order-of-magnitude realistic).
_USD_PER_VCPU = {
    "general": 0.048,
    "compute": 0.0425,
    "memory": 0.063,
    "accelerated": 0.156,
    "storage": 0.078,
}


@dataclass(frozen=True)
class InstanceFamily:
    """A hardware generation sharing a class letter and category.

    ``class_letter`` is the paper's instance *class* (T, M, A, C, R, X, Z, P,
    G, DL, Inf, F, VT, Trn, I, D, H, ...); several families map to one class,
    e.g. ``m5`` and ``m6i`` are both class ``M``.
    """

    name: str
    class_letter: str
    category: str
    sizes: Tuple[str, ...]
    accelerator: str | None = None
    accelerator_premium: float = 0.0

    def __post_init__(self):
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")
        for size in self.sizes:
            if size not in _SIZE_RANK:
                raise ValueError(f"unknown size {size!r} in family {self.name}")


@dataclass(frozen=True)
class InstanceType:
    """One orderable instance type, e.g. ``p3.2xlarge``."""

    family: InstanceFamily
    size: str

    @property
    def name(self) -> str:
        return f"{self.family.name}.{self.size}"

    @property
    def class_letter(self) -> str:
        return self.family.class_letter

    @property
    def category(self) -> str:
        return self.family.category

    @property
    def size_rank(self) -> int:
        """Index on the global size ladder (used by availability models)."""
        return _SIZE_RANK[self.size]

    @property
    def vcpus(self) -> int:
        if self.size == "metal":
            virtual = [s for s in self.family.sizes if s != "metal"]
            largest = max(virtual, key=lambda s: _SIZE_VCPUS[s]) if virtual else "16xlarge"
            return _SIZE_VCPUS[largest]
        return _SIZE_VCPUS[self.size]

    @property
    def memory_gib(self) -> float:
        return self.vcpus * _MEM_PER_VCPU[self.category]

    @property
    def on_demand_price(self) -> float:
        """Baseline on-demand $/hour used by the pricing engine."""
        base = self.vcpus * _USD_PER_VCPU[self.category]
        return round(base * (1.0 + self.family.accelerator_premium), 4)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Region:
    """A geographic region with a fixed set of availability zones."""

    code: str
    continent: str
    az_count: int

    @property
    def zones(self) -> Tuple[str, ...]:
        return tuple(f"{self.code}{chr(ord('a') + i)}" for i in range(self.az_count))


def _sizes(*names: str) -> Tuple[str, ...]:
    return tuple(names)


_STD = _sizes("large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "24xlarge")
_BURST = _sizes("nano", "micro", "small", "medium", "large", "xlarge", "2xlarge")
_GRAV = _sizes("medium", "large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge")


def default_families() -> List[InstanceFamily]:
    """The 2022-era AWS family lineup (about 547 types once expanded)."""
    fam: List[InstanceFamily] = []

    def add(name, letter, cat, sizes, accel=None, premium=0.0):
        fam.append(InstanceFamily(name, letter, cat, sizes, accel, premium))

    # ---- general purpose (T, M, A) ----
    for t in ("t2", "t3", "t3a", "t4g"):
        add(t, "T", "general", _BURST)
    add("a1", "A", "general", _sizes("medium", "large", "xlarge", "2xlarge", "4xlarge", "metal"))
    add("m4", "M", "general", _sizes("large", "xlarge", "2xlarge", "4xlarge", "10xlarge", "16xlarge"))
    add("m5", "M", "general", _STD + ("metal",))
    add("m5a", "M", "general", _STD)
    add("m5d", "M", "general", _STD + ("metal",))
    add("m5n", "M", "general", _STD + ("metal",))
    add("m5dn", "M", "general", _STD + ("metal",))
    add("m5zn", "M", "general", _sizes("large", "xlarge", "2xlarge", "3xlarge", "6xlarge", "12xlarge", "metal"))
    add("m6a", "M", "general", _STD + ("32xlarge", "48xlarge"))
    add("m6g", "M", "general", _GRAV + ("metal",))
    add("m6gd", "M", "general", _GRAV + ("metal",))
    add("m6i", "M", "general", _STD + ("32xlarge", "metal"))
    add("m6id", "M", "general", _STD + ("32xlarge", "metal"))

    # ---- compute optimized (C) ----
    add("c4", "C", "compute", _sizes("large", "xlarge", "2xlarge", "4xlarge", "8xlarge"))
    c5_sizes = _sizes("large", "xlarge", "2xlarge", "4xlarge", "9xlarge", "12xlarge", "18xlarge", "24xlarge")
    add("c5", "C", "compute", c5_sizes + ("metal",))
    add("c5a", "C", "compute", c5_sizes)
    add("c5ad", "C", "compute", c5_sizes)
    add("c5d", "C", "compute", c5_sizes + ("metal",))
    add("c5n", "C", "compute", _sizes("large", "xlarge", "2xlarge", "4xlarge", "9xlarge", "18xlarge", "metal"))
    add("c6a", "C", "compute", _STD + ("32xlarge", "48xlarge"))
    add("c6g", "C", "compute", _GRAV + ("metal",))
    add("c6gd", "C", "compute", _GRAV + ("metal",))
    add("c6gn", "C", "compute", _GRAV)
    add("c6i", "C", "compute", _STD + ("32xlarge", "metal"))
    add("c6id", "C", "compute", _STD + ("32xlarge", "metal"))
    add("c7g", "C", "compute", _GRAV)

    # ---- memory optimized (R, X, Z) ----
    add("r4", "R", "memory", _sizes("large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge"))
    add("r5", "R", "memory", _STD + ("metal",))
    add("r5a", "R", "memory", _STD)
    add("r5ad", "R", "memory", _STD)
    add("r5b", "R", "memory", _STD + ("metal",))
    add("r5d", "R", "memory", _STD + ("metal",))
    add("r5dn", "R", "memory", _STD + ("metal",))
    add("r5n", "R", "memory", _STD + ("metal",))
    add("r6a", "R", "memory", _STD + ("32xlarge", "48xlarge"))
    add("r6g", "R", "memory", _GRAV + ("metal",))
    add("r6gd", "R", "memory", _GRAV + ("metal",))
    add("r6i", "R", "memory", _STD + ("32xlarge", "metal"))
    add("r6id", "R", "memory", _STD + ("32xlarge", "metal"))
    add("x1", "X", "memory", _sizes("16xlarge", "32xlarge"))
    add("x1e", "X", "memory", _sizes("xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge", "32xlarge"))
    add("x2gd", "X", "memory", _GRAV + ("metal",))
    add("x2idn", "X", "memory", _sizes("16xlarge", "24xlarge", "32xlarge", "metal"))
    add("x2iedn", "X", "memory", _sizes("xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge", "24xlarge", "32xlarge", "metal"))
    add("x2iezn", "X", "memory", _sizes("2xlarge", "4xlarge", "6xlarge", "8xlarge", "12xlarge", "metal"))
    add("z1d", "Z", "memory", _sizes("large", "xlarge", "2xlarge", "3xlarge", "6xlarge", "12xlarge", "metal"))

    # ---- accelerated computing (P, G, DL, Inf, F, VT, Trn) ----
    add("p2", "P", "accelerated", _sizes("xlarge", "8xlarge", "16xlarge"), "nvidia-k80", 3.2)
    add("p3", "P", "accelerated", _sizes("2xlarge", "8xlarge", "16xlarge"), "nvidia-v100", 4.5)
    add("p3dn", "P", "accelerated", _sizes("24xlarge",), "nvidia-v100", 4.8)
    add("p4d", "P", "accelerated", _sizes("24xlarge",), "nvidia-a100", 5.6)
    add("p4de", "P", "accelerated", _sizes("24xlarge",), "nvidia-a100-80g", 6.4)
    add("g3", "G", "accelerated", _sizes("4xlarge", "8xlarge", "16xlarge"), "nvidia-m60", 1.4)
    add("g3s", "G", "accelerated", _sizes("xlarge",), "nvidia-m60", 1.4)
    add("g4dn", "G", "accelerated", _sizes("xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "metal"), "nvidia-t4", 1.7)
    add("g4ad", "G", "accelerated", _sizes("xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge"), "amd-v520", 1.3)
    add("g5", "G", "accelerated", _sizes("xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "24xlarge", "48xlarge"), "nvidia-a10g", 1.9)
    add("g5g", "G", "accelerated", _sizes("xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge", "metal"), "nvidia-t4g", 1.5)
    add("dl1", "DL", "accelerated", _sizes("24xlarge",), "habana-gaudi", 2.4)
    add("trn1", "Trn", "accelerated", _sizes("2xlarge", "32xlarge"), "aws-trainium", 2.2)
    add("inf1", "Inf", "accelerated", _sizes("xlarge", "2xlarge", "6xlarge", "24xlarge"), "aws-inferentia", 0.9)
    add("f1", "F", "accelerated", _sizes("2xlarge", "4xlarge", "16xlarge"), "xilinx-vu9p", 2.6)
    add("vt1", "VT", "accelerated", _sizes("3xlarge", "6xlarge", "24xlarge"), "xilinx-u30", 1.1)

    # ---- previous-generation families still listed in 2022 ----
    add("t1", "T", "general", _sizes("micro",))
    add("m2", "M", "general", _sizes("xlarge", "2xlarge", "4xlarge"))
    add("m3", "M", "general", _sizes("medium", "large", "xlarge", "2xlarge"))
    add("m5ad", "M", "general", _STD)
    add("c1", "C", "compute", _sizes("medium", "xlarge"))
    add("c3", "C", "compute", _sizes("large", "xlarge", "2xlarge", "4xlarge", "8xlarge"))
    add("cc2", "C", "compute", _sizes("8xlarge",))
    add("r3", "R", "memory", _sizes("large", "xlarge", "2xlarge", "4xlarge", "8xlarge"))
    add("g2", "G", "accelerated", _sizes("2xlarge", "8xlarge"), "nvidia-k520", 1.1)

    # ---- storage optimized (I, D, H, Im, Is) ----
    add("i2", "I", "storage", _sizes("xlarge", "2xlarge", "4xlarge", "8xlarge"))
    add("hs1", "H", "storage", _sizes("8xlarge",))
    add("i3", "I", "storage", _sizes("large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge", "metal"))
    add("i3en", "I", "storage", _sizes("large", "xlarge", "2xlarge", "3xlarge", "6xlarge", "12xlarge", "24xlarge", "metal"))
    add("i4i", "I", "storage", _sizes("large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge", "32xlarge", "metal"))
    add("im4gn", "I", "storage", _sizes("large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge"))
    add("is4gen", "I", "storage", _sizes("medium", "large", "xlarge", "2xlarge", "4xlarge", "8xlarge"))
    add("d2", "D", "storage", _sizes("xlarge", "2xlarge", "4xlarge", "8xlarge"))
    add("d3", "D", "storage", _sizes("xlarge", "2xlarge", "4xlarge", "8xlarge"))
    add("d3en", "D", "storage", _sizes("xlarge", "2xlarge", "4xlarge", "6xlarge", "8xlarge", "12xlarge"))
    add("h1", "H", "storage", _sizes("2xlarge", "4xlarge", "8xlarge", "16xlarge"))

    return fam


#: Families released in 2021+ are offered in fewer regions; fraction of the
#: 17 regions carrying each family (1.0 = everywhere).
_NEW_FAMILY_COVERAGE = {
    "m6a": 0.5, "m6id": 0.5, "c6a": 0.5, "c6id": 0.5, "r6a": 0.5, "r6id": 0.5,
    "c7g": 0.4, "x2idn": 0.5, "x2iedn": 0.5, "x2iezn": 0.4, "g5": 0.6,
    "g5g": 0.4, "dl1": 0.2, "trn1": 0.2, "inf1": 0.7, "vt1": 0.4, "f1": 0.5,
    "p4d": 0.4, "p4de": 0.2, "p3dn": 0.4, "i4i": 0.6, "im4gn": 0.5,
    "is4gen": 0.5, "d3": 0.7, "d3en": 0.6, "x2gd": 0.6, "m5zn": 0.6,
    "g4ad": 0.6, "a1": 0.6,
}
_DEFAULT_COVERAGE = 0.92


def default_regions() -> List[Region]:
    """17 regions whose availability-zone counts sum to 63 (paper Sec. 3.1)."""
    spec = [
        ("us-east-1", "us", 6),
        ("us-east-2", "us", 3),
        ("us-west-1", "us", 3),
        ("us-west-2", "us", 4),
        ("ca-central-1", "ca", 3),
        ("sa-east-1", "sa", 3),
        ("eu-west-1", "eu", 4),
        ("eu-west-2", "eu", 4),
        ("eu-west-3", "eu", 3),
        ("eu-central-1", "eu", 4),
        ("eu-north-1", "eu", 3),
        ("ap-northeast-1", "ap", 4),
        ("ap-northeast-2", "ap", 4),
        ("ap-southeast-1", "ap", 4),
        ("ap-southeast-2", "ap", 4),
        ("ap-south-1", "ap", 4),
        ("ap-east-1", "ap", 3),
    ]
    regions = [Region(code, cont, az) for code, cont, az in spec]
    assert sum(r.az_count for r in regions) == 63
    return regions


@dataclass
class Catalog:
    """The full simulated-cloud catalog with a deterministic offering matrix.

    Parameters
    ----------
    seed:
        Controls the pseudo-random offering matrix (which regions carry which
        families, and how many zones per region carry each type).
    families, regions:
        Override the default lineup, mainly for small test catalogs.
    """

    seed: int = 0
    families: List[InstanceFamily] = field(default_factory=default_families)
    regions: List[Region] = field(default_factory=default_regions)

    def __post_init__(self):
        self._types: Dict[str, InstanceType] = {}
        for family in self.families:
            for size in family.sizes:
                itype = InstanceType(family, size)
                self._types[itype.name] = itype
        self._regions: Dict[str, Region] = {r.code: r for r in self.regions}
        self._offering_cache: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        # supported_zones() memoizes from pool workers (core.parallel)
        self._cache_lock = threading.Lock()

    # -- lookup -----------------------------------------------------------

    @property
    def instance_types(self) -> List[InstanceType]:
        """All instance types, in deterministic (insertion) order."""
        return list(self._types.values())

    @property
    def instance_type_names(self) -> List[str]:
        return list(self._types.keys())

    def instance_type(self, name: str) -> InstanceType:
        try:
            return self._types[name]
        except KeyError:
            raise UnknownInstanceTypeError(f"unknown instance type {name!r}") from None

    def has_instance_type(self, name: str) -> bool:
        return name in self._types

    def region(self, code: str) -> Region:
        try:
            return self._regions[code]
        except KeyError:
            raise UnknownRegionError(f"unknown region {code!r}") from None

    def has_region(self, code: str) -> bool:
        return code in self._regions

    #: Canonical class presentation order used by the paper's heatmaps:
    #: general (T, M, A), compute (C), memory (R, X, Z), accelerated
    #: (P, G, DL, Inf, F, VT), then storage (I, D, H).
    CLASS_ORDER = (
        "T", "M", "A", "C", "R", "X", "Z",
        "P", "G", "DL", "Trn", "Inf", "F", "VT",
        "I", "D", "H",
    )

    @cached_property
    def classes(self) -> List[str]:
        """Instance classes present in the catalog, in the paper's order."""
        present = {fam.class_letter for fam in self.families}
        ordered = [c for c in self.CLASS_ORDER if c in present]
        ordered.extend(sorted(present - set(self.CLASS_ORDER)))
        return ordered

    def types_in_class(self, class_letter: str) -> List[InstanceType]:
        return [t for t in self._types.values() if t.class_letter == class_letter]

    # -- offering matrix ---------------------------------------------------

    def _family_region_supported(self, family: InstanceFamily, region: Region) -> bool:
        coverage = _NEW_FAMILY_COVERAGE.get(family.name, _DEFAULT_COVERAGE)
        return stable_uniform("fam-region", self.seed, family.name, region.code) < coverage

    def supported_zones(self, itype: InstanceType | str, region: Region | str) -> Tuple[str, ...]:
        """Zones of ``region`` that offer ``itype`` (possibly empty).

        A supported type is offered in 1..az_count zones; bigger sizes tend
        to be present in fewer zones, mirroring real offering sparsity.
        """
        if isinstance(itype, str):
            itype = self.instance_type(itype)
        if isinstance(region, str):
            region = self.region(region)
        key = (itype.name, region.code)
        cached = self._offering_cache.get(key)
        if cached is not None:
            return cached
        zones: Tuple[str, ...]
        if not self._family_region_supported(itype.family, region):
            zones = ()
        else:
            frac = stable_range(0.55, 1.01, "zones", self.seed, itype.name, region.code)
            frac -= 0.03 * max(0, itype.size_rank - _SIZE_RANK["4xlarge"])
            count = max(1, min(region.az_count, round(region.az_count * frac)))
            all_zones = region.zones
            start = int(stable_uniform("zone-start", self.seed, itype.name, region.code) * region.az_count)
            zones = tuple(sorted(all_zones[(start + i) % region.az_count] for i in range(count)))
        with self._cache_lock:
            self._offering_cache[key] = zones
        return zones

    def is_offered(self, itype: InstanceType | str, region: Region | str) -> bool:
        return bool(self.supported_zones(itype, region))

    def regions_offering(self, itype: InstanceType | str) -> List[Region]:
        if isinstance(itype, str):
            itype = self.instance_type(itype)
        return [r for r in self.regions if self.is_offered(itype, r)]

    def offering_map(self) -> Dict[str, Dict[str, int]]:
        """Nested dict {instance_type: {region: zone_count}} (paper Sec. 3.2).

        This is exactly the structure SpotLake's bin-packing query planner
        consumes.
        """
        result: Dict[str, Dict[str, int]] = {}
        for itype in self._types.values():
            inner: Dict[str, int] = {}
            for region in self.regions:
                zones = self.supported_zones(itype, region)
                if zones:
                    inner[region.code] = len(zones)
            if inner:
                result[itype.name] = inner
        return result

    def all_pools(self) -> List[Tuple[str, str, str]]:
        """All (instance_type, region, zone) capacity pools in the catalog."""
        pools: List[Tuple[str, str, str]] = []
        for itype in self._types.values():
            for region in self.regions:
                for zone in self.supported_zones(itype, region):
                    pools.append((itype.name, region.code, zone))
        return pools

    def summary(self) -> Dict[str, int]:
        """Headline catalog sizes (compare with the paper's 547/17/63)."""
        return {
            "instance_types": len(self._types),
            "regions": len(self.regions),
            "availability_zones": sum(r.az_count for r in self.regions),
            "families": len(self.families),
        }
