"""Simulation clock.

All simulated-cloud behaviour is a deterministic function of absolute time,
so the clock is a plain mutable counter of epoch seconds.  The default epoch
matches the paper's collection window start (2022-01-01 00:00:00 UTC).
"""

from __future__ import annotations

from datetime import datetime, timezone

#: Epoch seconds for 2022-01-01T00:00:00Z, the first day of the paper's
#: 181-day collection window.
PAPER_WINDOW_START = 1640995200.0

#: Length of the paper's collection window in days (Jan 1 - Jun 30, 2022).
PAPER_WINDOW_DAYS = 181

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


class SimulationClock:
    """Mutable wall clock for the simulated cloud.

    The clock only moves forward.  Components read ``now()`` and derive all
    state from it; nothing subscribes to ticks, which keeps the simulation
    lazily evaluated and cheap to query at arbitrary instants.
    """

    def __init__(self, start: float = PAPER_WINDOW_START):
        self._now = float(start)
        self._start = float(start)

    def now(self) -> float:
        """Current simulation time in epoch seconds."""
        return self._now

    @property
    def start(self) -> float:
        """Epoch seconds at which this clock was created."""
        return self._start

    def elapsed(self) -> float:
        """Seconds elapsed since the clock start."""
        return self._now - self._start

    def elapsed_days(self) -> float:
        """Days elapsed since the clock start."""
        return self.elapsed() / SECONDS_PER_DAY

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"clock cannot move backwards ({seconds=})")
        self._now += seconds
        return self._now

    def advance_minutes(self, minutes: float) -> float:
        """Move the clock forward by ``minutes``."""
        return self.advance(minutes * SECONDS_PER_MINUTE)

    def advance_days(self, days: float) -> float:
        """Move the clock forward by ``days``."""
        return self.advance(days * SECONDS_PER_DAY)

    def set(self, timestamp: float) -> float:
        """Jump the clock to an absolute time (must not move backwards)."""
        if timestamp < self._now:
            raise ValueError("clock cannot move backwards")
        # spotlint: disable=CONC001 -- false positive: the serving worker
        # dispatch reaches a threading.Event.set() call that the call
        # graph's name fallback resolves here; serving workers never
        # touch the simulation clock
        self._now = float(timestamp)
        return self._now

    def datetime(self) -> datetime:
        """Current simulation time as an aware UTC datetime."""
        return datetime.fromtimestamp(self._now, tz=timezone.utc)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"SimulationClock({self.datetime().isoformat()})"
