"""boto3-like client for the simulated cloud.

Exposes exactly the access surface the paper describes (Sections 2 and 3):

* ``get_spot_placement_scores`` -- CLI-accessible, but constrained: at most
  10 result rows per query, and ~50 *unique* queries per account per rolling
  24 hours;
* ``describe_spot_price_history`` -- CLI-accessible, with up to three months
  of history;
* ``request_spot_instances`` / ``describe_spot_instance_requests`` /
  ``cancel_spot_instance_requests`` -- the spot request lifecycle;
* ``describe_instance_type_offerings`` -- offering discovery.

Deliberately **not** exposed: the spot instance advisor, which is web-only
(Section 3.1 "Limited query interface"); use
:meth:`SimulatedCloud.advisor_web_snapshot` through a scraper wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .accounts import Account, make_query_key
from .advisor import AdvisorEngine
from .catalog import Catalog
from .clock import SimulationClock, SECONDS_PER_DAY
from .errors import (
    RequestNotFoundError,
    UnknownRegionError,
    ValidationError,
)
from .faults import FaultInjector
from .lifecycle import RequestSimulator, SpotRequest, RequestState
from .market import SpotMarket
from .placement import CompiledScoreQuery, PlacementScoreEngine
from .pricing import PricingEngine

#: Result-row cap of a single placement-score query (paper Section 3.1).
MAX_SPS_RESULTS = 10

#: Price history lookback limit: "up to three months" (paper Section 2.1).
PRICE_HISTORY_MAX_DAYS = 90


@dataclass
class SimulatedCloud:
    """The full simulated cloud: catalog, market, engines, request registry.

    This is the "world" object.  Clients (:class:`Ec2Client`) are cheap
    views bound to an account; they share the world's clock and state.
    """

    seed: int = 0
    catalog: Catalog = None  # type: ignore[assignment]
    clock: SimulationClock = field(default_factory=SimulationClock)
    #: optional deterministic fault schedule (see cloudsim.faults)
    faults: Optional[FaultInjector] = None

    def __post_init__(self):
        if self.catalog is None:
            self.catalog = Catalog(seed=self.seed)
        self.market = SpotMarket(self.catalog, seed=self.seed,
                                 epoch=self.clock.start)
        self.placement = PlacementScoreEngine(self.market)
        self.pricing = PricingEngine(self.market)
        self.advisor = AdvisorEngine(self.market, pricing=self.pricing)
        self.request_simulator = RequestSimulator(self.market, self.placement,
                                                  self.advisor)
        self._requests: Dict[str, SpotRequest] = {}

    def client(self, account: Account) -> "Ec2Client":
        """An API client authenticated as ``account``."""
        return Ec2Client(self, account)

    def maybe_fault(self, operation: str,
                    account: Optional[Account] = None) -> None:
        """Run the injected-fault hook for one simulated call, if armed."""
        if self.faults is not None:
            self.faults.before_call(operation, account)

    def advisor_web_snapshot(self):
        """The advisor dataset as rendered on the vendor's website.

        Web-only on purpose: SpotLake reaches it via a SpotInfo-style
        scraper (:class:`repro.core.collectors.SpotInfoScraper`), never via
        the API client.
        """
        self.maybe_fault("advisor")
        return self.advisor.web_snapshot(self.clock.now())

    def register_request(self, request: SpotRequest) -> None:
        self._requests[request.request_id] = request

    def get_request(self, request_id: str) -> SpotRequest:
        try:
            return self._requests[request_id]
        except KeyError:
            raise RequestNotFoundError(
                f"no spot request {request_id!r}") from None


class Ec2Client:
    """Account-scoped API client with quota enforcement."""

    def __init__(self, cloud: SimulatedCloud, account: Account):
        self.cloud = cloud
        self.account = account

    # -- spot placement scores -------------------------------------------------

    def _sps_admission(self, instance_types: Sequence[str],
                       regions: Sequence[str], target_capacity: int,
                       single_availability_zone: bool,
                       max_results: int) -> None:
        """Validation, credential, fault, and quota gauntlet of one SPS call.

        Shared verbatim by the immediate and the deferred entry points so
        both consume the account budget and the fault schedule identically.
        """
        if not instance_types:
            raise ValidationError("InstanceTypes must not be empty")
        if not regions:
            raise ValidationError("RegionNames must not be empty")
        if target_capacity < 1:
            raise ValidationError("TargetCapacity must be >= 1")
        if max_results > MAX_SPS_RESULTS:
            raise ValidationError(
                f"MaxResults cannot exceed {MAX_SPS_RESULTS}")
        for name in instance_types:
            self.cloud.catalog.instance_type(name)  # validates
        for region in regions:
            if not self.cloud.catalog.has_region(region):
                raise UnknownRegionError(f"unknown region {region!r}")

        # faults fire before quota accounting: a throttled or timed-out
        # call never consumes unique-query budget, matching real AWS
        self.account.check_credentials()
        self.cloud.maybe_fault("sps", self.account)

        key = make_query_key(instance_types, regions, target_capacity,
                             single_availability_zone)
        self.account.charge(key, self.cloud.clock.now())

    def get_spot_placement_scores(self, instance_types: Sequence[str],
                                  regions: Sequence[str],
                                  target_capacity: int = 1,
                                  single_availability_zone: bool = False,
                                  max_results: int = MAX_SPS_RESULTS) -> List[dict]:
        """Placement scores for the given types across the given regions.

        Raises :class:`QuotaExceededError` when the account's rolling
        unique-query budget is exhausted; repeating an identical query is
        free, exactly as the paper observes.
        """
        self._sps_admission(instance_types, regions, target_capacity,
                            single_availability_zone, max_results)
        rows = self.cloud.placement.score_query(
            instance_types, regions, self.cloud.clock.now(),
            target_capacity=target_capacity,
            single_availability_zone=single_availability_zone,
            max_results=max_results)
        return [
            {
                "Region": row.region,
                "AvailabilityZoneId": row.availability_zone,
                "Score": row.score,
            }
            for row in rows
        ]

    def get_spot_placement_scores_deferred(
            self, instance_types: Sequence[str], regions: Sequence[str],
            target_capacity: int = 1,
            single_availability_zone: bool = False,
            max_results: int = MAX_SPS_RESULTS) -> "DeferredScoreCall":
        """Admit an SPS call now, defer the score computation.

        Runs the identical validation / credential / fault / quota sequence
        as :meth:`get_spot_placement_scores` -- the account is charged here,
        the fault schedule advances here -- but returns a
        :class:`DeferredScoreCall` handle instead of rows.  Materializing
        the handle at the admission timestamp yields byte-identical rows;
        the parallel collection engine uses this split to keep all
        account/quota/fault control strictly serial while fanning the pure
        score arithmetic out to worker threads.
        """
        self._sps_admission(instance_types, regions, target_capacity,
                            single_availability_zone, max_results)
        compiled = self.cloud.placement.compile_query(
            instance_types, regions, target_capacity=target_capacity,
            single_availability_zone=single_availability_zone,
            max_results=max_results)
        return DeferredScoreCall(compiled)

    # -- spot price history -------------------------------------------------------

    def describe_spot_price_history(self, instance_types: Sequence[str],
                                    start_time: float, end_time: float,
                                    availability_zone: Optional[str] = None,
                                    region: Optional[str] = None) -> List[dict]:
        """Spot price change events, mirroring the real CLI output."""
        self.account.check_credentials()
        self.cloud.maybe_fault("price", self.account)
        now = self.cloud.clock.now()
        if end_time > now:
            end_time = now
        if start_time < now - PRICE_HISTORY_MAX_DAYS * SECONDS_PER_DAY:
            raise ValidationError(
                f"price history is limited to {PRICE_HISTORY_MAX_DAYS} days")
        if region is None:
            if availability_zone is None:
                raise ValidationError("need a region or an availability zone")
            region = availability_zone.rstrip("abcdef")
        results: List[dict] = []
        for name in instance_types:
            itype = self.cloud.catalog.instance_type(name)
            if not self.cloud.catalog.is_offered(itype, region):
                continue
            zone = availability_zone or self.cloud.pricing.zone_of_region(itype, region)
            for point in self.cloud.pricing.price_history(
                    itype, region, start_time, end_time, zone):
                results.append({
                    "Timestamp": point.timestamp,
                    "SpotPrice": point.price,
                    "InstanceType": point.instance_type,
                    "AvailabilityZone": point.availability_zone,
                })
        results.sort(key=lambda r: r["Timestamp"])
        return results

    # -- spot requests ----------------------------------------------------------------

    def request_spot_instances(self, instance_type: str, availability_zone: str,
                               spot_price: float, persistent: bool = False,
                               horizon_hours: float = 24.0) -> str:
        """Submit a spot request; returns the request id."""
        region = availability_zone.rstrip("abcdef")
        request = self.cloud.request_simulator.submit(
            instance_type=instance_type,
            region=region,
            availability_zone=availability_zone,
            bid_price=spot_price,
            created_at=self.cloud.clock.now(),
            persistent=persistent,
            horizon=horizon_hours * 3600.0,
        )
        self.cloud.register_request(request)
        return request.request_id

    def describe_spot_instance_requests(self, request_ids: Sequence[str]) -> List[dict]:
        """Current status of the given requests."""
        now = self.cloud.clock.now()
        out = []
        for rid in request_ids:
            request = self.cloud.get_request(rid)
            state = request.state_at(now)
            out.append({
                "SpotInstanceRequestId": rid,
                "State": state.value,
                "InstanceType": request.instance_type,
                "AvailabilityZone": request.availability_zone,
                "CreateTime": request.created_at,
            })
        return out

    def cancel_spot_instance_requests(self, request_ids: Sequence[str]) -> None:
        """User-initiated termination (Table 1 Terminal state)."""
        now = self.cloud.clock.now()
        for rid in request_ids:
            self.cloud.request_simulator.cancel(self.cloud.get_request(rid), now)

    # -- offerings ------------------------------------------------------------------------

    def describe_instance_type_offerings(self, region: str,
                                         location_type: str = "availability-zone") -> List[dict]:
        """Instance type offerings of one region."""
        if not self.cloud.catalog.has_region(region):
            raise UnknownRegionError(f"unknown region {region!r}")
        rows: List[dict] = []
        for itype in self.cloud.catalog.instance_types:
            zones = self.cloud.catalog.supported_zones(itype, region)
            if not zones:
                continue
            if location_type == "availability-zone":
                for zone in zones:
                    rows.append({"InstanceType": itype.name, "Location": zone})
            elif location_type == "region":
                rows.append({"InstanceType": itype.name, "Location": region})
            else:
                raise ValidationError(f"unknown location type {location_type!r}")
        return rows


@dataclass(frozen=True)
class DeferredScoreCall:
    """Admitted-but-unevaluated SPS call (see the deferred client entry).

    ``rows_at(timestamp)`` is pure and thread-safe: quota was charged and
    faults were drawn at admission, so evaluation can happen on any worker
    thread at any later moment without touching shared simulation state.
    """

    compiled: "CompiledScoreQuery"

    def rows_at(self, timestamp: float) -> List[dict]:
        """API-shaped rows as of ``timestamp`` (the admission instant)."""
        return [
            {
                "Region": row.region,
                "AvailabilityZoneId": row.availability_zone,
                "Score": row.score,
            }
            for row in self.compiled.rows(timestamp)
        ]
