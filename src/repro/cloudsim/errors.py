"""Exception types raised by the simulated cloud APIs.

These mirror the error classes a real cloud SDK surfaces, so that SpotLake's
collectors exercise genuine error-handling paths (quota exhaustion, invalid
parameters, unsupported offerings) rather than simulator-specific ones.
"""

from __future__ import annotations


class CloudError(Exception):
    """Base class for all simulated cloud API errors."""

    code = "CloudError"
    #: True for faults that are safe to retry (throttling, 5xx, timeouts).
    retryable = False

    def __init__(self, message: str = ""):
        super().__init__(message or self.__doc__ or self.code)


class ValidationError(CloudError):
    """A request parameter is malformed or out of the allowed range."""

    code = "ValidationError"


class UnknownInstanceTypeError(ValidationError):
    """The requested instance type does not exist in the catalog."""

    code = "InvalidInstanceType"


class UnknownRegionError(ValidationError):
    """The requested region does not exist in the catalog."""

    code = "InvalidRegion"


class UnsupportedOfferingError(ValidationError):
    """The instance type is not offered in the requested region or zone."""

    code = "Unsupported"


class QuotaExceededError(CloudError):
    """The account exhausted its unique spot-placement-score query quota.

    AWS allows roughly 50 *unique* placement-score queries per account per
    rolling 24 hours; re-issuing an already-seen query is free.
    """

    code = "MaxConfigLimitExceeded"


class RequestNotFoundError(CloudError):
    """No spot request exists with the given identifier."""

    code = "InvalidSpotInstanceRequestID.NotFound"


class TransientError(CloudError):
    """Base class for transient, retry-safe API failures.

    These are the faults :mod:`repro.cloudsim.faults` injects to reproduce
    the collection-continuity hazards the paper's Section 5 alludes to
    ("system management issues" holing the archive).  A well-behaved
    collector retries them with backoff instead of aborting the round.
    """

    code = "TransientError"
    retryable = True


class ThrottlingError(TransientError):
    """The API rejected the call because of request-rate throttling."""

    code = "RequestLimitExceeded"


class InternalServerError(TransientError):
    """The service suffered an internal (5xx-class) failure."""

    code = "InternalError"


class RequestTimeoutError(TransientError):
    """The call did not complete within the client's timeout."""

    code = "RequestTimeout"


class CredentialExpiredError(TransientError):
    """The account's security token expired mid-collection.

    Retryable only after the caller refreshes the account's credentials
    (:meth:`repro.cloudsim.accounts.Account.refresh_credentials`).
    """

    code = "ExpiredToken"
