"""Configurable capacity events.

The paper's Figure 3 shows a sudden score decrease around June 2, 2022
("score adjustments for most instance types ... which might have resulted
from the spike in the spot instance usage").  The market models such
episodes as :class:`CapacityEvent` instances: a time window during which a
deterministic fraction of instance types loses a fixed amount of headroom,
ramping in and out at the edges.

The default event list reproduces the paper's June-2 dip; users injecting
their own event schedules (region launches, reInvent-style demand spikes,
large-customer onboarding) can study how the archive surfaces them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .._util import stable_uniform


@dataclass(frozen=True)
class CapacityEvent:
    """One capacity episode.

    Parameters
    ----------
    day_start, day_end:
        Window in days since the market epoch.
    depth:
        Headroom subtracted at the event's plateau.
    type_fraction:
        Deterministic fraction of instance types affected (selection is
        hashed per type, so membership is stable).
    ramp_days:
        In/out ramp length at each edge of the window.
    label:
        Human-readable name for reporting.
    """

    day_start: float
    day_end: float
    depth: float
    type_fraction: float = 1.0
    ramp_days: float = 0.5
    label: str = "capacity-event"

    def __post_init__(self):
        if self.day_end < self.day_start:
            raise ValueError("event ends before it starts")
        if not 0.0 <= self.type_fraction <= 1.0:
            raise ValueError("type_fraction must be in [0, 1]")
        if self.depth < 0:
            raise ValueError("depth must be non-negative")

    def affects(self, seed: int, itype_name: str) -> bool:
        """Whether this event touches the given instance type (stable)."""
        return stable_uniform("event-member", seed, self.label,
                              itype_name) < self.type_fraction

    def depth_at(self, seed: int, itype_name: str, day: float) -> float:
        """Headroom loss for one type at one instant (0 outside window)."""
        if not (self.day_start <= day <= self.day_end):
            return 0.0
        if not self.affects(seed, itype_name):
            return 0.0
        return self.ramp_depth(day)

    def ramp_depth(self, day: float) -> float:
        """Depth at ``day`` ignoring type membership.

        Callers that pre-resolve :meth:`affects` (the compiled score-query
        path hashes membership once instead of per evaluation) combine this
        with their cached membership bit; the arithmetic is shared with
        :meth:`depth_at` so both paths stay bit-identical.
        """
        if not (self.day_start <= day <= self.day_end):
            return 0.0
        if self.ramp_days <= 0:
            return self.depth
        ramp_in = min(1.0, (day - self.day_start) / self.ramp_days)
        ramp_out = min(1.0, (self.day_end - day) / self.ramp_days)
        return self.depth * min(ramp_in, ramp_out)


#: The paper's observed June-2 2022 dip (day 152 of the 181-day window).
JUNE_2_EVENT = CapacityEvent(
    day_start=151.0, day_end=157.0, depth=0.14, type_fraction=0.8,
    ramp_days=0.5, label="june-2-2022-dip")


def default_events() -> List[CapacityEvent]:
    """The event schedule active in the paper's collection window."""
    return [JUNE_2_EVENT]


def total_depth(events: Sequence[CapacityEvent], seed: int,
                itype_name: str, day: float) -> float:
    """Combined headroom loss across overlapping events."""
    return sum(e.depth_at(seed, itype_name, day) for e in events)
