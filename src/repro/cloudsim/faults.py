"""Deterministic fault injection for the simulated cloud.

The paper's own archive has holes: Section 5 reports missing collection
periods caused by "system management issues" on the collection server.  To
reproduce (and then survive) that class of failure, this module schedules
*transient* API faults -- throttling, 5xx internal errors, request
timeouts, and credential expiry -- against the three collection surfaces:

* ``sps``     -- :meth:`Ec2Client.get_spot_placement_scores`
* ``price``   -- :meth:`Ec2Client.describe_spot_price_history` and the
  price collector's sweep
* ``advisor`` -- :meth:`SimulatedCloud.advisor_web_snapshot` (the scraped
  web page)

Everything is a pure function of ``(plan seed, operation, per-operation
call index)`` plus the simulation clock, so two identically-seeded runs
replay the exact same fault schedule byte-for-byte (spotlint DET rules
apply here as everywhere in ``cloudsim``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .._util import stable_hash, stable_uniform
from .accounts import Account
from .clock import SimulationClock
from .errors import (
    CloudError,
    CredentialExpiredError,
    InternalServerError,
    RequestTimeoutError,
    ThrottlingError,
)

#: The collection surfaces faults can target.
OPERATIONS = ("sps", "price", "advisor")

#: Fault kinds in their canonical (draw) order.
FAULT_KINDS = ("throttle", "internal", "timeout", "credentials")

_ERROR_CLASSES = {
    "throttle": ThrottlingError,
    "internal": InternalServerError,
    "timeout": RequestTimeoutError,
    "credentials": CredentialExpiredError,
}


@dataclass(frozen=True)
class ChaosProfile:
    """Per-call fault probabilities, one rate per fault kind."""

    name: str
    throttle: float = 0.0
    internal: float = 0.0
    timeout: float = 0.0
    credentials: float = 0.0

    @property
    def total_rate(self) -> float:
        """Probability that any single call faults."""
        return self.throttle + self.internal + self.timeout + self.credentials

    def rates(self) -> Tuple[Tuple[str, float], ...]:
        """(kind, rate) pairs in canonical draw order."""
        return (("throttle", self.throttle), ("internal", self.internal),
                ("timeout", self.timeout), ("credentials", self.credentials))


#: Named profiles selectable from the CLI (``--chaos-profile``).  The
#: "moderate" profile clears the ISSUE's >=10% transient-fault bar.
CHAOS_PROFILES: Dict[str, ChaosProfile] = {
    "none": ChaosProfile("none"),
    "light": ChaosProfile("light", throttle=0.02, internal=0.01,
                          timeout=0.01, credentials=0.005),
    "moderate": ChaosProfile("moderate", throttle=0.05, internal=0.03,
                             timeout=0.03, credentials=0.01),
    "heavy": ChaosProfile("heavy", throttle=0.10, internal=0.08,
                          timeout=0.05, credentials=0.02),
}


def resolve_profile(name: str) -> ChaosProfile:
    """Look up a named profile, with a helpful error on typos."""
    try:
        return CHAOS_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {name!r} "
            f"(available: {', '.join(sorted(CHAOS_PROFILES))})") from None


@dataclass(frozen=True)
class FaultWindow:
    """A scheduled outage: every matching call inside [start, end) faults.

    Models the paper's multi-hour collection-server outages, on top of the
    profile's random per-call faults.  ``operation`` may be ``"*"``.
    """

    start: float
    end: float
    operation: str = "*"
    kind: str = "internal"

    def covers(self, operation: str, now: float) -> bool:
        if self.operation not in ("*", operation):
            return False
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultPlan:
    """Everything that determines the fault schedule of one run."""

    seed: int = 0
    profile: ChaosProfile = CHAOS_PROFILES["none"]
    windows: Tuple[FaultWindow, ...] = ()


@dataclass(frozen=True)
class InjectedFault:
    """Log entry for one injected fault (for tests and reports)."""

    operation: str
    kind: str
    time: float
    call_index: int


class FaultInjector:
    """Raises scheduled transient faults ahead of simulated API calls.

    Install on a cloud via ``cloud.faults = FaultInjector(plan, cloud.clock)``;
    the API surfaces call :meth:`before_call` and propagate whatever it
    raises.  Determinism: the draw for call *i* of operation *op* depends
    only on ``(plan.seed, op, i)``, so a retried call (a new index) re-draws
    -- transient faults clear on retry, outage windows do not until the
    clock leaves them.
    """

    def __init__(self, plan: FaultPlan, clock: SimulationClock):
        self.plan = plan
        self.clock = clock
        self.injected: List[InjectedFault] = []
        self._calls: Dict[str, int] = {}

    def calls(self, operation: str) -> int:
        """Calls seen so far for ``operation`` (faulted or not)."""
        return self._calls.get(operation, 0)

    def faults_injected(self, operation: Optional[str] = None) -> int:
        if operation is None:
            return len(self.injected)
        return sum(1 for f in self.injected if f.operation == operation)

    def _scheduled_kind(self, operation: str, index: int) -> Optional[str]:
        now = self.clock.now()
        for window in self.plan.windows:
            if window.covers(operation, now):
                return window.kind
        profile = self.plan.profile
        total = profile.total_rate
        if total <= 0.0:
            return None
        draw = stable_uniform("fault", self.plan.seed, operation, index)
        if draw >= total:
            return None
        edge = 0.0
        for kind, rate in profile.rates():
            edge += rate
            if draw < edge:
                return kind
        return FAULT_KINDS[-1]  # guard against float round-off

    def before_call(self, operation: str,
                    account: Optional[Account] = None) -> None:
        """Fault hook: raises the scheduled error for this call, if any.

        Credential faults only make sense on account-scoped calls; for
        anonymous surfaces (the advisor web page) they degrade to a
        timeout so the profile's total rate is preserved.
        """
        index = self._calls.get(operation, 0)
        self._calls[operation] = index + 1
        kind = self._scheduled_kind(operation, index)
        if kind is None:
            return
        if kind == "credentials" and account is None:
            kind = "timeout"
        self.injected.append(
            InjectedFault(operation, kind, self.clock.now(), index))
        if kind == "credentials":
            assert account is not None
            account.expire_credentials()
        raise make_fault(kind, operation)


class SimulatedCrash(RuntimeError):
    """Deterministic process abort injected at a storage crash window.

    Raised by :class:`CrashInjector` from inside the storage engine's
    crash hooks; it models the collection host dying mid-write (the
    paper's "system management issues", taken to the worst case).  It is
    deliberately *not* a :class:`TransientError`: the resilience layer
    must never retry past a crash -- the harness catches it, restarts,
    and recovers from disk.
    """

    def __init__(self, window: str, hit: int):
        super().__init__(f"simulated crash at {window!r} (hit {hit})")
        self.window = window
        self.hit = hit


@dataclass(frozen=True)
class CrashPoint:
    """One scheduled process abort inside the storage engine.

    ``window`` names a crash window (see ``repro.storage.CRASH_WINDOWS``)
    and ``hit`` selects which occurrence of it aborts (0 = the first).
    For the ``wal.flush`` window the abort is a *torn write*:
    ``torn_fraction`` of the in-flight group-commit batch reaches the
    file before the process dies, exercising the log's torn-tail
    recovery path.
    """

    window: str
    hit: int = 0
    torn_fraction: float = 0.5


@dataclass(frozen=True)
class FiredCrash:
    """Log entry for an injected crash (for tests and reports)."""

    window: str
    hit: int
    torn_bytes: Optional[int] = None


class CrashInjector:
    """Implements the storage engine's crash-hook protocol.

    Install via ``engine.crash_hook = CrashInjector([point, ...])`` (the
    writer shares the hook object).  Each window keeps its own hit
    counter, so a plan can target e.g. the third checkpoint publish
    independently of how many WAL flushes preceded it.
    """

    def __init__(self, points: Sequence[CrashPoint] = ()):
        self.points = tuple(points)
        self.fired: List[FiredCrash] = []
        self._hits: Dict[str, int] = {}

    def _next_hit(self, window: str) -> int:
        hit = self._hits.get(window, 0)
        self._hits[window] = hit + 1
        return hit

    def _match(self, window: str, hit: int) -> Optional[CrashPoint]:
        for point in self.points:
            if point.window == window and point.hit == hit:
                return point
        return None

    # -- the storage engine's hook protocol --------------------------------

    def before(self, window: str) -> None:
        hit = self._next_hit(window)
        if self._match(window, hit) is not None:
            self.fired.append(FiredCrash(window, hit))
            raise SimulatedCrash(window, hit)

    def torn_write(self, window: str, size: int) -> Optional[int]:
        hit = self._next_hit(window)
        point = self._match(window, hit)
        if point is None:
            return None
        torn = max(0, min(size, int(size * point.torn_fraction)))
        self.fired.append(FiredCrash(window, hit, torn_bytes=torn))
        return torn

    def crash(self, window: str) -> None:
        raise SimulatedCrash(window, self._hits.get(window, 1) - 1)


def seeded_crash_point(seed: int, window: str, max_hits: int) -> CrashPoint:
    """A deterministic crash point for one window of one seeded run.

    The hit index and torn fraction are stable hashes of (seed, window),
    so a chaos sweep over windows exercises a different-but-reproducible
    abort location each seed.  ``max_hits`` bounds the hit index to the
    number of times the run is expected to reach the window.
    """
    hit = stable_hash("crash-hit", seed, window) % max(1, max_hits)
    fraction = stable_uniform("crash-torn", seed, window)
    return CrashPoint(window=window, hit=hit, torn_fraction=fraction)


def make_fault(kind: str, operation: str) -> CloudError:
    """Instantiate the error class for a fault kind."""
    try:
        cls = _ERROR_CLASSES[kind]
    except KeyError:
        raise ValueError(f"unknown fault kind {kind!r} "
                         f"(known: {', '.join(FAULT_KINDS)})") from None
    return cls(f"injected {kind} fault on {operation!r} ({cls.code})")
