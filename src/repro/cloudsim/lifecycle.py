"""Spot request lifecycle simulation.

Implements the request state machine of the paper's Table 1:

    Pending Evaluation -> Holding        (constraints unmet: low capacity)
    Pending Evaluation -> Fulfilled      (instance starts)
    Fulfilled          -> Terminal       (interruption / user cancel)
    Fulfilled (persistent) -> Pending Evaluation  (re-request after interrupt)

Behaviour is calibrated to Section 5.4's real-world measurements:

* fulfillment success is governed by the *placement score* (high SPS ==>
  always fulfilled; low SPS ==> frequent 24-hour non-fulfillment);
* the interruption hazard of a *running* instance is governed by both the
  placement score and the advisor's interruption-free score, with a
  decreasing (Weibull, shape < 1) hazard that front-loads interruptions as
  Figure 11b shows;
* fulfillment latency spans sub-second to tens of minutes depending on the
  score (Figure 11a).

Traces are generated event-driven at request submission, so polling the
request status every few seconds (as the paper's experiment harness does) is
a cheap timeline lookup rather than a step simulation.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._util import stable_rng
from ..scoring import interruption_free_score
from .catalog import Catalog, InstanceType
from .clock import SECONDS_PER_HOUR
from .errors import UnsupportedOfferingError, ValidationError
from .market import SpotMarket
from .placement import PlacementScoreEngine
from .advisor import AdvisorEngine


class RequestState(str, enum.Enum):
    """Spot request states of the paper's Table 1."""

    PENDING_EVALUATION = "pending-evaluation"
    HOLDING = "holding"
    FULFILLED = "fulfilled"
    TERMINAL = "terminal"


#: Human descriptions used by Table 1 (and its bench reproduction).
STATE_DESCRIPTIONS = {
    RequestState.PENDING_EVALUATION: "A valid spot request is submitted",
    RequestState.HOLDING: ("Some request constraints cannot be met "
                           "(price, location, resource availability, ...)"),
    RequestState.FULFILLED: ("All the spot request constraints are met, and "
                             "instance status being updated to running"),
    RequestState.TERMINAL: ("A spot request is disabled possibly by price "
                            "outbid, resource unavailability, user, ..."),
}

#: Legal state transitions (used by property tests).
ALLOWED_TRANSITIONS = {
    RequestState.PENDING_EVALUATION: {RequestState.HOLDING, RequestState.FULFILLED,
                                      RequestState.TERMINAL},
    RequestState.HOLDING: {RequestState.FULFILLED, RequestState.TERMINAL},
    RequestState.FULFILLED: {RequestState.TERMINAL, RequestState.PENDING_EVALUATION},
    RequestState.TERMINAL: set(),
}

# ---------------------------------------------------------------------------
# Calibration (Section 5.4)
# ---------------------------------------------------------------------------

#: Low-band non-fulfillment threshold on the headroom margin below
#: THRESHOLD_3, per interruption-free score: pools deeper than the threshold
#: essentially never fulfill, shallower ones usually do.  A *high*
#: interruption-free score lowers the threshold (Table 3: L-H shows more
#: non-fulfillment than L-L).
NF_L_THRESHOLD = {3.0: 0.055, 2.5: 0.060, 2.0: 0.065, 1.5: 0.070, 1.0: 0.075}

#: Steepness of the non-fulfillment transitions (probability per unit
#: margin); high values make the outcome nearly deterministic per pool,
#: which is what gives archived history its predictive value (Section 5.5).
NF_M_SLOPE = 30.0
NF_M_CENTER = 0.014
NF_L_SLOPE = 25.0


def continuous_sps(headroom: float) -> float:
    """Continuous placement-score latent in [0.5, 3.0].

    Quantizing this at the placement thresholds recovers the integer score;
    the continuous value carries the *within-band* position, which real
    capacity behaviour depends on -- and which only historical data can
    reveal (the paper's Section 5.5 argument for the archive).
    """
    from .placement import THRESHOLD_2, THRESHOLD_3
    if headroom >= THRESHOLD_3:
        # keep rising above the quantization ceiling: abundant pools are
        # genuinely safer than barely-high ones, and only history tells
        return min(5.0, 3.0 + 2.0 * (headroom - THRESHOLD_3))
    if headroom >= THRESHOLD_2:
        return 2.0 + 0.5 * (headroom - THRESHOLD_2) / (THRESHOLD_3 - THRESHOLD_2)
    return max(0.2, 1.75 - 6.0 * (THRESHOLD_2 - max(0.0, headroom)))


def continuous_if(ratio: float) -> float:
    """Continuous interruption-free latent in [0.5, 3.35] from a raw ratio."""
    return min(3.35, max(0.5, 3.35 - 9.0 * ratio))


def not_fulfilled_probability(headroom: float, if_score: float) -> float:
    """P(no fulfillment within 24 h) given the pool's latents at submission.

    Calibrated against Table 3: zero when the placement score is high,
    ~25% in the medium band, rising through the low band; a *high*
    interruption-free score slightly increases non-fulfillment when capacity
    is scarce (the paper's L-H row exceeds L-L).
    """
    from .placement import THRESHOLD_2, THRESHOLD_3
    if headroom >= THRESHOLD_3:
        return 0.0
    # saturating ramp in the margin below the high-score threshold: pools
    # deep in the low band essentially never get fulfilled, so their
    # outcome is deterministic -- and the archive's history reveals the
    # margin, which the current quantized score cannot (Section 5.5).
    margin = THRESHOLD_3 - max(0.0, headroom)
    if headroom >= THRESHOLD_2:
        p = 0.25 + NF_M_SLOPE * (margin - NF_M_CENTER)
    else:
        threshold = NF_L_THRESHOLD.get(if_score, 0.065)
        p = 0.5 + NF_L_SLOPE * (margin - threshold)
    return min(max(p, 0.0), 1.0)

#: Fulfillment latency lognormal parameters (mu of ln seconds, sigma) per
#: placement score (Figure 11a: high score -> ~28% within a second, 90%
#: within ~135 s; low score -> median ~1322 s).
FULFILL_LATENCY_PARAMS = {
    3: (math.log(3.0), 2.0),
    2: (math.log(150.0), 1.8),
    1: (math.log(1300.0), 1.5),
}

#: Weibull shape for time-to-interruption; < 1 front-loads interruptions,
#: matching Figure 11b's heavy early mass.
INTERRUPT_WEIBULL_SHAPE = 0.45

#: Piecewise log-hazard in headroom: within each score band the hazard is
#: *steep* (the pool's exact position decides the outcome -- learnable from
#: archived history), while per-band offsets keep the combo-conditional
#: interruption rates on Table 3.  Values: (offset ln lambda/hour at the
#: band's top edge, slope per unit headroom below that edge).
HAZARD_BAND_HIGH = (math.log(0.011), 2.0)   # h >= THRESHOLD_3
HAZARD_BAND_MEDIUM = (math.log(0.0102), 60.0)  # THRESHOLD_2 <= h < THRESHOLD_3
HAZARD_BAND_LOW = (math.log(0.0392), 20.0)    # h < THRESHOLD_2

#: Interruption-free (advisor) contribution to the log hazard.
HAZARD_IF_COEF = 0.50
HAZARD_INTERACTION = -0.10

#: Per-case multiplicative hazard jitter (lognormal sigma).
HAZARD_JITTER_SIGMA = 0.10


def interruption_rate_per_hour(headroom: float, ratio: float,
                               jitter: float = 1.0) -> float:
    """Expected hourly interruption hazard for a running instance.

    Steep within each placement-score band (see HAZARD_BAND_*), increased
    by the pool's reclaim ratio, damped by the interaction when both
    signals are already bad (Table 3's L-L row is not the product of the
    marginal effects).
    """
    from .placement import THRESHOLD_2, THRESHOLD_3
    h = max(0.0, headroom)
    if h >= THRESHOLD_3:
        offset, slope = HAZARD_BAND_HIGH
        f = offset - slope * (h - THRESHOLD_3)
    elif h >= THRESHOLD_2:
        offset, slope = HAZARD_BAND_MEDIUM
        f = offset + slope * (THRESHOLD_3 - h)
    else:
        offset, slope = HAZARD_BAND_LOW
        f = offset + slope * (THRESHOLD_2 - h)
    ds = 3.0 - continuous_sps(h)
    di = 3.0 - continuous_if(ratio)
    log_rate = f + HAZARD_IF_COEF * di + HAZARD_INTERACTION * ds * di
    return math.exp(log_rate) * jitter


def weibull_scale_for_rate(rate_per_hour: float,
                           shape: float = INTERRUPT_WEIBULL_SHAPE) -> float:
    """Weibull scale (seconds) whose 24-hour failure mass matches the
    exponential hazard ``rate_per_hour`` over 24 hours."""
    p24 = 1.0 - math.exp(-rate_per_hour * 24.0)
    p24 = min(max(p24, 1e-9), 1.0 - 1e-9)
    hours = 24.0 / ((-math.log(1.0 - p24)) ** (1.0 / shape))
    return hours * SECONDS_PER_HOUR


@dataclass(frozen=True)
class LifecycleEvent:
    """One transition in a request's generated timeline."""

    timestamp: float
    state: RequestState


@dataclass
class SpotRequest:
    """A submitted spot instance request and its pre-generated timeline."""

    request_id: str
    instance_type: str
    region: str
    availability_zone: str
    bid_price: float
    created_at: float
    persistent: bool
    horizon: float
    events: List[LifecycleEvent] = field(default_factory=list)
    cancelled_at: Optional[float] = None
    #: scores observed at submission (archived for experiment labelling)
    sps_at_submit: int = 0
    if_score_at_submit: float = 0.0

    # -- queries ---------------------------------------------------------------

    def state_at(self, timestamp: float) -> RequestState:
        """Request state at an arbitrary instant."""
        if timestamp < self.created_at:
            raise ValidationError("cannot query a request before submission")
        if self.cancelled_at is not None and timestamp >= self.cancelled_at:
            return RequestState.TERMINAL
        current = RequestState.PENDING_EVALUATION
        for event in self.events:
            if event.timestamp <= timestamp:
                current = event.state
            else:
                break
        return current

    def fulfillment_times(self) -> List[float]:
        """Instants at which the request (re-)entered FULFILLED."""
        return [e.timestamp for e in self.events if e.state is RequestState.FULFILLED]

    def interruption_times(self) -> List[float]:
        """Instants at which a running instance was reclaimed."""
        times: List[float] = []
        running_since: Optional[float] = None
        for event in self.events:
            if event.state is RequestState.FULFILLED:
                running_since = event.timestamp
            elif running_since is not None and event.state in (
                    RequestState.PENDING_EVALUATION, RequestState.TERMINAL):
                times.append(event.timestamp)
                running_since = None
        return times

    def ever_fulfilled(self) -> bool:
        return bool(self.fulfillment_times())

    def ever_interrupted(self) -> bool:
        return bool(self.interruption_times())

    def first_fulfillment_latency(self) -> Optional[float]:
        """Seconds from submission to first fulfillment, if any."""
        times = self.fulfillment_times()
        return times[0] - self.created_at if times else None

    def first_run_duration(self) -> Optional[float]:
        """Seconds the first fulfilled instance ran before interruption."""
        fulfills = self.fulfillment_times()
        interrupts = self.interruption_times()
        if not fulfills or not interrupts:
            return None
        return interrupts[0] - fulfills[0]


class RequestSimulator:
    """Creates spot requests and generates their lifecycle timelines."""

    def __init__(self, market: SpotMarket, placement: PlacementScoreEngine,
                 advisor: AdvisorEngine):
        self.market = market
        self.catalog: Catalog = market.catalog
        self.placement = placement
        self.advisor = advisor
        self._counter = itertools.count(1)

    def _next_id(self) -> str:
        return f"sir-{next(self._counter):08x}"

    def submit(self, instance_type: str, region: str, availability_zone: str,
               bid_price: float, created_at: float, persistent: bool = True,
               horizon: float = 24 * SECONDS_PER_HOUR) -> SpotRequest:
        """Submit a request and generate its timeline over ``horizon``."""
        itype = self.catalog.instance_type(instance_type)
        zones = self.catalog.supported_zones(itype, region)
        if availability_zone not in zones:
            raise UnsupportedOfferingError(
                f"{instance_type} is not offered in {availability_zone}")
        if bid_price <= 0:
            raise ValidationError("bid price must be positive")

        request = SpotRequest(
            request_id=self._next_id(),
            instance_type=instance_type,
            region=region,
            availability_zone=availability_zone,
            bid_price=bid_price,
            created_at=created_at,
            persistent=persistent,
            horizon=horizon,
        )
        request.sps_at_submit = self.placement.zone_score(
            itype, region, availability_zone, created_at)
        ratio = self.advisor.interruption_ratio(itype, region, created_at)
        request.if_score_at_submit = interruption_free_score(ratio)
        self._generate_timeline(request)
        return request

    # -- timeline generation -----------------------------------------------------

    def _generate_timeline(self, request: SpotRequest) -> None:
        rng = stable_rng("lifecycle", self.market.seed, request.request_id,
                         request.instance_type, request.availability_zone,
                         request.created_at)
        sps = request.sps_at_submit
        ifs = request.if_score_at_submit
        end = request.created_at + request.horizon
        events: List[LifecycleEvent] = []

        # outcome probabilities follow the *continuous* latents, of which the
        # published scores are quantizations -- this is why the archive's
        # history carries predictive signal beyond the current score values.
        headroom = self.market.headroom(
            request.instance_type, request.region,
            request.availability_zone, request.created_at)
        ratio = self.advisor.interruption_ratio(
            request.instance_type, request.region, request.created_at)

        p_nf = not_fulfilled_probability(headroom, ifs)
        if p_nf > 0.0 and rng.random() < p_nf:
            # constraints never met within the horizon
            events.append(LifecycleEvent(request.created_at + 1.0, RequestState.HOLDING))
            request.events = events
            return

        jitter = float(np.exp(rng.normal(0.0, HAZARD_JITTER_SIGMA)))
        rate = interruption_rate_per_hour(headroom, ratio, jitter)
        scale = weibull_scale_for_rate(rate)

        now = request.created_at
        while now < end:
            mu, sigma = FULFILL_LATENCY_PARAMS[sps]
            latency = float(rng.lognormal(mu, sigma))
            fulfill_at = now + latency
            if fulfill_at >= end:
                events.append(LifecycleEvent(now + 1.0, RequestState.HOLDING))
                break
            events.append(LifecycleEvent(fulfill_at, RequestState.FULFILLED))
            run_seconds = float(rng.weibull(INTERRUPT_WEIBULL_SHAPE)) * scale
            interrupt_at = fulfill_at + max(run_seconds, 1.0)
            if interrupt_at >= end:
                break  # still running at horizon end
            if request.persistent:
                events.append(LifecycleEvent(interrupt_at, RequestState.PENDING_EVALUATION))
                now = interrupt_at
            else:
                events.append(LifecycleEvent(interrupt_at, RequestState.TERMINAL))
                break
        request.events = events

    # -- user actions --------------------------------------------------------------

    def cancel(self, request: SpotRequest, timestamp: float) -> None:
        """Voluntarily terminate a request (Table 1: user-initiated Terminal)."""
        if request.cancelled_at is not None:
            return
        if timestamp < request.created_at:
            raise ValidationError("cannot cancel a request before submission")
        request.cancelled_at = timestamp
