"""Latent spot-market model.

Two latent processes per capacity pool drive everything the simulated cloud
exposes:

``headroom``
    Instantaneous surplus-capacity fraction in ``[0, 1]`` for one
    (instance type, region, zone) pool.  It drives the *spot placement
    score* (quantized, capacity-adjusted) and the fulfillment behaviour of
    real spot requests.

``reclaim pressure``
    Monthly-scale tendency of the vendor to reclaim capacity from a
    (instance type, region) pair, in ``[0, 1]``.  It drives the *spot
    instance advisor* interruption-ratio buckets and the interruption
    hazard of running spot instances.

The two processes are only weakly coupled, which is precisely what the paper
observes: near-zero Pearson correlations between the placement score, the
interruption-free score, and the spot price (Section 5.3), while each dataset
still predicts the facet of real behaviour it is supposed to (Section 5.4).

All values are deterministic functions of (pool identity, time, seed), so a
re-created simulation reproduces the identical world; nothing is stored.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, Tuple

from .._util import clip01, stable_range, stable_uniform
from .catalog import Catalog, InstanceType
from .clock import SECONDS_PER_DAY, PAPER_WINDOW_START
from .events import CapacityEvent, default_events, total_depth

# ---------------------------------------------------------------------------
# Calibration constants (see DESIGN.md "Calibration targets")
# ---------------------------------------------------------------------------

#: Base headroom per instance category.  Accelerated-computing is the scarce
#: family (Figure 3: ~12% below average SPS); storage next (D/H/I classes).
CATEGORY_BASE = {
    "general": 0.80,
    "compute": 0.78,
    "memory": 0.74,
    "storage": 0.68,
    "accelerated": 0.64,
}

#: Family-level adjustments inside the accelerated category (Figure 3: DL
#: clearly above the rest, G above P, Inf below G).
FAMILY_ADJUST = {
    "DL": 0.30,
    "VT": 0.18,
    "Trn": 0.14,
    "F": 0.10,
    "G": 0.03,
    "Inf": -0.03,
    "P": -0.10,
    # storage: D slightly scarcer than I/H (Figure 7 calls out D drops)
    "D": -0.04,
}

#: Per-step-on-the-size-ladder headroom penalty (Figure 5: larger sizes are
#: less available).
SIZE_PENALTY = 0.016

#: Spread of the per-(family, region) spatial offset.  Deliberately larger
#: than the temporal amplitudes: the paper finds spatial diversity more
#: pronounced than temporal diversity (Section 5.1 key findings).
SPATIAL_FAMILY_SPREAD = 0.17
SPATIAL_TYPE_SPREAD = 0.06
SPATIAL_ZONE_SPREAD = 0.05

#: Temporal sinusoid (amplitude, period-days) components; total swing ~±0.05.
TEMPORAL_COMPONENTS = ((0.022, 2.9), (0.018, 11.0), (0.012, 31.0), (0.02, 197.0))

#: Capacity events (the June-2 dip by default) live in
#: :mod:`repro.cloudsim.events`; the market accepts a custom schedule.

#: Reclaim pressure mixes an independent per-(type, region) component with an
#: anti-headroom component; the small shared weight keeps cross-dataset
#: correlations near zero while preserving the family-level ordering
#: (accelerated interruption-free score ~35% below average, Figure 3).
RECLAIM_INDEPENDENT_WEIGHT = 0.45
RECLAIM_ANTI_HEADROOM_WEIGHT = 0.55

#: Reclaim temporal drift: monthly-scale wander, amplitude of the u-space.
RECLAIM_DRIFT_AMPLITUDE = 0.16
RECLAIM_DRIFT_PERIOD_DAYS = 53.0

#: Weight of the anchor zone's *headroom temporal wave* inside reclaim
#: pressure (sign-flipped: scarce capacity -> more reclaiming).  This shared
#: component gives the SPS / interruption-free correlation of Figure 8 its
#: mild positive lean and wider spread than the price-involving pairs.
RECLAIM_HEADROOM_TEMPORAL_WEIGHT = 3.2

#: Direct category-level reclaim boost: accelerated hardware is reclaimed
#: far more aggressively than its placement score alone suggests (Figure 3:
#: interruption-free score ~35% below average for accelerated vs only ~12%
#: for the placement score).
RECLAIM_CATEGORY_BOOST = {
    "general": -0.05,
    "compute": -0.03,
    "memory": 0.0,
    "storage": 0.06,
    "accelerated": 0.20,
}

#: Piecewise-linear quantile map from reclaim-pressure u to a trailing-month
#: interruption ratio.  Knots chosen so the *bucketed* marginal distribution
#: matches Table 2's interruption-free score column
#: (33.05 / 25.92 / 13.86 / 6.33 / 20.84 % for scores 3.0 .. 1.0).
RECLAIM_QUANTILE_KNOTS = (
    (0.0, 0.0),
    (0.3305, 0.05),
    (0.5897, 0.10),
    (0.7283, 0.15),
    (0.7916, 0.20),
    (1.0, 0.42),
)

#: Empirical quantiles of the *raw* reclaim u (weighted sum of uniform
#: components plus drift); interpolating raw-u through these knots
#: re-uniformizes it so RECLAIM_QUANTILE_KNOTS sees a uniform input and the
#: advisor bucket masses land on Table 2.  Recomputed whenever the weights
#: above change (see tests/cloudsim/test_calibration.py).
RECLAIM_REUNIFORM_KNOTS = (
    -0.3021, 0.0952, 0.1706, 0.2271, 0.2730, 0.3117, 0.3484, 0.3818,
    0.4131, 0.4432, 0.4734, 0.5040, 0.5353, 0.5688, 0.6019, 0.6396,
    0.6805, 0.7279, 0.7868, 0.8785, 1.5014,
)


def _reuniformize(u_raw: float) -> float:
    """Map raw reclaim pressure through its empirical CDF to ~uniform[0,1]."""
    knots = RECLAIM_REUNIFORM_KNOTS
    n = len(knots) - 1
    if u_raw <= knots[0]:
        return 0.0
    if u_raw >= knots[-1]:
        return 1.0
    for i in range(n):
        if u_raw <= knots[i + 1]:
            span = knots[i + 1] - knots[i]
            frac = 0.0 if span == 0 else (u_raw - knots[i]) / span
            return (i + frac) / n
    return 1.0


def _temporal_wave(day: float, *phase_parts: object) -> float:
    """Small deterministic multi-sinusoid wiggle for one pool."""
    total = 0.0
    for idx, (amplitude, period) in enumerate(TEMPORAL_COMPONENTS):
        phase = stable_uniform("phase", idx, *phase_parts) * 2.0 * math.pi
        total += amplitude * math.sin(2.0 * math.pi * day / period + phase)
    return total


def reclaim_ratio_from_u(u: float) -> float:
    """Map reclaim pressure ``u`` in [0, 1] to an interruption ratio.

    Piecewise-linear quantile transform whose bucket masses reproduce the
    paper's Table 2 interruption-free score distribution.
    """
    u = clip01(u)
    knots = RECLAIM_QUANTILE_KNOTS
    for (u0, r0), (u1, r1) in zip(knots, knots[1:]):
        if u <= u1:
            if u1 == u0:
                return r1
            frac = (u - u0) / (u1 - u0)
            return r0 + frac * (r1 - r0)
    return knots[-1][1]


@dataclass
class SpotMarket:
    """Deterministic latent spot-market state for a catalog.

    Parameters
    ----------
    catalog:
        The instance/region/zone catalog this market serves.
    seed:
        World seed; two markets with equal (catalog.seed, seed) agree on
        every value at every instant.
    epoch:
        Epoch seconds treated as "day 0" for temporal components, defaults
        to the paper's collection window start.
    """

    catalog: Catalog
    seed: int = 0
    epoch: float = PAPER_WINDOW_START
    events: list = field(default_factory=default_events)
    _base_cache: Dict[Tuple[str, str, str], float] = field(default_factory=dict, repr=False)
    #: base_headroom() memoizes from pool workers (core.parallel)
    _cache_lock: threading.Lock = field(default_factory=threading.Lock,
                                        repr=False, compare=False)

    # -- headroom -----------------------------------------------------------

    def base_headroom(self, itype: InstanceType | str, region: str, zone: str) -> float:
        """Time-invariant component of a pool's headroom."""
        if isinstance(itype, str):
            itype = self.catalog.instance_type(itype)
        key = (itype.name, region, zone)
        cached = self._base_cache.get(key)
        if cached is not None:
            return cached
        base = CATEGORY_BASE[itype.category]
        base += FAMILY_ADJUST.get(itype.class_letter, 0.0)
        base -= SIZE_PENALTY * itype.size_rank
        base += stable_range(-SPATIAL_FAMILY_SPREAD, SPATIAL_FAMILY_SPREAD,
                             "spatial-family", self.seed, itype.family.name, region)
        base += stable_range(-SPATIAL_TYPE_SPREAD, SPATIAL_TYPE_SPREAD,
                             "spatial-type", self.seed, itype.name, region)
        base += stable_range(-SPATIAL_ZONE_SPREAD, SPATIAL_ZONE_SPREAD,
                             "spatial-zone", self.seed, itype.name, region, zone)
        with self._cache_lock:
            self._base_cache[key] = base
        return base

    def _event_depth(self, itype_name: str, day: float) -> float:
        """Combined headroom loss from the active capacity events."""
        return total_depth(self.events, self.seed, itype_name, day)

    def day_of(self, timestamp: float) -> float:
        """Days elapsed since the market epoch at ``timestamp``."""
        return (timestamp - self.epoch) / SECONDS_PER_DAY

    def headroom(self, itype: InstanceType | str, region: str, zone: str,
                 timestamp: float) -> float:
        """Instantaneous surplus-capacity fraction of one pool in [0, 1]."""
        if isinstance(itype, str):
            itype = self.catalog.instance_type(itype)
        day = self.day_of(timestamp)
        value = self.base_headroom(itype, region, zone)
        value += _temporal_wave(day, "headroom", self.seed, itype.name, region, zone)
        value -= self._event_depth(itype.name, day)
        return clip01(value)

    # -- reclaim pressure ----------------------------------------------------

    def raw_reclaim(self, itype: InstanceType | str, region: str,
                    timestamp: float) -> float:
        """Un-normalized reclaim pressure (weighted latent components).

        Exposed separately so the calibration script
        (``scripts/calibrate_reclaim.py``) can resample its distribution and
        regenerate ``RECLAIM_REUNIFORM_KNOTS`` after any weight change.
        """
        if isinstance(itype, str):
            itype = self.catalog.instance_type(itype)
        day = self.day_of(timestamp)
        independent = stable_uniform("reclaim-indep", self.seed, itype.name, region)
        # normalize base headroom to ~[0, 1] before taking its complement
        zones = self.catalog.supported_zones(itype, region)
        anchor_zone = zones[0] if zones else f"{region}a"
        base = self.base_headroom(itype, region, anchor_zone)
        anti = 1.0 - clip01((base - 0.2) / 0.75)
        u = (RECLAIM_INDEPENDENT_WEIGHT * independent
             + RECLAIM_ANTI_HEADROOM_WEIGHT * anti)
        u += RECLAIM_CATEGORY_BOOST[itype.category]
        phase = stable_uniform("reclaim-phase", self.seed, itype.name, region) * 2 * math.pi
        u += RECLAIM_DRIFT_AMPLITUDE * math.sin(
            2.0 * math.pi * day / RECLAIM_DRIFT_PERIOD_DAYS + phase)
        u -= RECLAIM_HEADROOM_TEMPORAL_WEIGHT * _temporal_wave(
            day, "headroom", self.seed, itype.name, region, anchor_zone)
        return u

    def reclaim_pressure(self, itype: InstanceType | str, region: str,
                         timestamp: float) -> float:
        """Monthly-scale reclaim tendency for (type, region) in [0, 1].

        The independent component dominates temporally, so this is only
        loosely related to headroom over time -- matching the paper's
        near-zero correlation finding -- while the category boost preserves
        the family-level ordering of Figure 3.
        """
        return _reuniformize(self.raw_reclaim(itype, region, timestamp))

    def interruption_ratio(self, itype: InstanceType | str, region: str,
                           timestamp: float) -> float:
        """Trailing-month interruption ratio implied by reclaim pressure."""
        return reclaim_ratio_from_u(self.reclaim_pressure(itype, region, timestamp))
