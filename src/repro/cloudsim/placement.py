"""Spot placement score (SPS) engine.

Reproduces the externally observable behaviour of AWS's
``get-spot-placement-scores`` (paper Sections 2.3, 3.1, 5.2):

* a score per region, or per availability zone when
  ``SingleAvailabilityZone`` is requested;
* scores quantized to integers -- single-instance-type queries empirically
  never exceed 3, while the documented range is 1..10;
* composite queries naming several instance types return, in the majority of
  cases, *at least* the sum of the individual types' scores (Figure 6);
* larger target capacity lowers the score, steepest for accelerated-computing
  and dense-storage types (Figure 7).

The quantization thresholds are calibrated so the marginal single-type score
distribution matches Table 2 (87.88% / 3.81% / 8.31% for 3 / 2 / 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .._util import clip01, stable_uniform
from .catalog import Catalog, InstanceType
from .clock import SECONDS_PER_DAY
from .errors import ValidationError
from .market import TEMPORAL_COMPONENTS, SpotMarket

#: Maximum score a single-instance-type query can attain (empirical, Sec 5.2).
SINGLE_TYPE_MAX_SCORE = 3

#: Documented maximum of the composite score range.
COMPOSITE_MAX_SCORE = 10

#: Headroom quantization thresholds: h >= THRESHOLD_3 scores 3,
#: THRESHOLD_2 <= h < THRESHOLD_3 scores 2, otherwise 1.  Calibrated against
#: Table 2's spot-placement-score distribution.
THRESHOLD_3 = 0.44
THRESHOLD_2 = 0.41

#: Capacity sensitivity per category: score penalty per log10(target capacity).
#: Accelerated and dense-storage hardware deplete fastest (Figure 7).
CAPACITY_SENSITIVITY = {
    "general": 0.10,
    "compute": 0.11,
    "memory": 0.13,
    "storage": 0.17,
    "accelerated": 0.28,
}

#: Extra capacity sensitivity for specific classes the paper calls out.
CLASS_CAPACITY_EXTRA = {
    "P": 0.06,
    "G": 0.04,
    "Inf": 0.05,
    "D": 0.08,
}

#: Distribution of the composite-query diversification bonus (Figure 6:
#: composite score == sum of singles in ~38.8% of cases, greater in ~60.6%,
#: below-sum observed only as rare exceptions).
_BONUS_LEVELS = ((0.392, 0), (0.737, 1), (0.935, 2), (0.996, 3), (1.0, -1))

#: Regional aggregation: flexibility bonus per extra supporting zone.
_ZONE_DIVERSITY_BONUS = 0.02


@dataclass(frozen=True)
class PlacementScore:
    """One row of a placement-score response."""

    region: str
    availability_zone: str | None
    score: int

    @property
    def location(self) -> str:
        """The zone when zone-scoped, else the region."""
        return self.availability_zone or self.region


class PlacementScoreEngine:
    """Computes placement scores from the latent market state."""

    def __init__(self, market: SpotMarket):
        self.market = market
        self.catalog: Catalog = market.catalog
        #: compiled-query memo: the plan repeats the same queries every
        #: round, so the time-invariant resolution work happens once
        self._compiled: Dict[tuple, "CompiledScoreQuery"] = {}

    # -- effective headroom -------------------------------------------------

    def _capacity_penalty(self, itype: InstanceType, target_capacity: int) -> float:
        if target_capacity <= 1:
            return 0.0
        sensitivity = CAPACITY_SENSITIVITY[itype.category]
        sensitivity += CLASS_CAPACITY_EXTRA.get(itype.class_letter, 0.0)
        return sensitivity * math.log10(target_capacity)

    def effective_headroom(self, itype: InstanceType | str, region: str, zone: str,
                           timestamp: float, target_capacity: int = 1) -> float:
        """Pool headroom after discounting the requested capacity."""
        if isinstance(itype, str):
            itype = self.catalog.instance_type(itype)
        h = self.market.headroom(itype, region, zone, timestamp)
        return h - self._capacity_penalty(itype, target_capacity)

    @staticmethod
    def quantize(headroom: float) -> int:
        """Map effective headroom to the 1..3 single-type score scale."""
        if headroom >= THRESHOLD_3:
            return 3
        if headroom >= THRESHOLD_2:
            return 2
        return 1

    # -- single-type scores --------------------------------------------------

    def zone_score(self, itype: InstanceType | str, region: str, zone: str,
                   timestamp: float, target_capacity: int = 1) -> int:
        """Single-type score for one availability zone."""
        return self.quantize(
            self.effective_headroom(itype, region, zone, timestamp, target_capacity))

    def region_score(self, itype: InstanceType | str, region: str,
                     timestamp: float, target_capacity: int = 1) -> int:
        """Single-type score aggregated over a region.

        A region offers placement flexibility, so the aggregate follows the
        best zone plus a small diversity bonus per additional zone.
        """
        if isinstance(itype, str):
            itype = self.catalog.instance_type(itype)
        zones = self.catalog.supported_zones(itype, region)
        if not zones:
            raise ValidationError(
                f"{itype.name} is not offered in {region}")
        best = max(self.effective_headroom(itype, region, z, timestamp, target_capacity)
                   for z in zones)
        best += _ZONE_DIVERSITY_BONUS * (len(zones) - 1)
        return self.quantize(best)

    # -- composite queries ----------------------------------------------------

    def _diversification_bonus(self, type_names: Sequence[str], region: str,
                               timestamp: float) -> int:
        """Bonus of a composite query over the sum of single-type scores.

        Sampled deterministically per (type set, region, day): mixing types
        lets the scheduler satisfy the request from whichever pool currently
        has surplus, so the composite score is at least the sum in almost
        every case (Figure 6 finds only rare exceptions below the line).
        """
        day = int(self.market.day_of(timestamp))
        u = stable_uniform("composite-bonus", self.market.seed,
                           tuple(sorted(type_names)), region, day)
        for cutoff, bonus in _BONUS_LEVELS:
            if u <= cutoff:
                return bonus
        return 0

    def composite_region_score(self, itypes: Sequence[InstanceType | str], region: str,
                               timestamp: float, target_capacity: int = 1) -> int:
        """Score of a query naming several instance types for one region."""
        names = [t if isinstance(t, str) else t.name for t in itypes]
        if not names:
            raise ValidationError("a placement-score query needs at least one type")
        if len(names) == 1:
            return self.region_score(names[0], region, timestamp, target_capacity)
        total = sum(self.region_score(n, region, timestamp, target_capacity)
                    for n in names)
        total += self._diversification_bonus(names, region, timestamp)
        return max(1, min(COMPOSITE_MAX_SCORE, total))

    # -- full query ------------------------------------------------------------

    def score_query(self, itypes: Sequence[InstanceType | str], regions: Sequence[str],
                    timestamp: float, target_capacity: int = 1,
                    single_availability_zone: bool = False,
                    max_results: int = 10) -> List[PlacementScore]:
        """Evaluate a placement-score query exactly as the cloud API would.

        Returns at most ``max_results`` rows, keeping the highest scores --
        the truncation behaviour the paper identifies as a core query
        constraint (Section 3.1).
        """
        names = [t if isinstance(t, str) else t.name for t in itypes]
        rows: List[PlacementScore] = []
        for region in regions:
            offered = [n for n in names
                       if self.catalog.is_offered(n, region)]
            if not offered:
                continue
            if single_availability_zone:
                zone_set = sorted({z for n in offered
                                   for z in self.catalog.supported_zones(n, region)})
                for zone in zone_set:
                    in_zone = [n for n in offered
                               if zone in self.catalog.supported_zones(n, region)]
                    if len(in_zone) == 1:
                        score = self.zone_score(in_zone[0], region, zone,
                                                timestamp, target_capacity)
                    else:
                        per_type = sum(self.zone_score(n, region, zone,
                                                       timestamp, target_capacity)
                                       for n in in_zone)
                        per_type += self._diversification_bonus(in_zone, zone, timestamp)
                        score = max(1, min(COMPOSITE_MAX_SCORE, per_type))
                    rows.append(PlacementScore(region, zone, score))
            else:
                rows.append(PlacementScore(
                    region, None,
                    self.composite_region_score(offered, region,
                                                timestamp, target_capacity)))
        rows.sort(key=lambda r: (-r.score, r.region, r.availability_zone or ""))
        return rows[:max_results]

    # -- compiled queries -------------------------------------------------------

    def compile_query(self, itypes: Sequence[InstanceType | str],
                      regions: Sequence[str], target_capacity: int = 1,
                      single_availability_zone: bool = False,
                      max_results: int = 10) -> "CompiledScoreQuery":
        """Pre-resolve a query's time-invariant state; memoized per shape.

        The returned object's :meth:`CompiledScoreQuery.rows` is a *pure*
        function of the timestamp -- every hash draw (headroom phases,
        event membership) is taken here, once, so repeated rounds and the
        parallel collection engine's worker threads evaluate nothing but
        arithmetic.  Results are bit-identical to :meth:`score_query`.
        """
        names = tuple(t if isinstance(t, str) else t.name for t in itypes)
        key = (names, tuple(regions), target_capacity,
               single_availability_zone, max_results)
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = CompiledScoreQuery(self, names, tuple(regions),
                                          target_capacity,
                                          single_availability_zone,
                                          max_results)
            self._compiled[key] = compiled
        return compiled


class CompiledScoreQuery:
    """One placement-score query with its market state pre-resolved.

    Single-type single-AZ queries -- the only shape the packed collection
    plan produces -- take a fast path: per (region, zone) cell the base
    headroom, the four temporal-wave phases, the capacity penalty and the
    capacity-event membership are resolved at compile time, and
    :meth:`rows` replays the exact floating-point operation sequence of
    ``SpotMarket.headroom`` / ``PlacementScoreEngine.zone_score`` so the
    quantized scores are byte-identical to the uncompiled path.  Any other
    query shape falls back to :meth:`PlacementScoreEngine.score_query`.

    Evaluation is thread-safe: the fast path touches only immutable
    compiled state, which is what lets collection workers share one
    compiled plan.
    """

    __slots__ = ("engine", "names", "regions", "target_capacity",
                 "single_availability_zone", "max_results", "_cells",
                 "_epoch", "_seconds_per_day")

    def __init__(self, engine: PlacementScoreEngine, names: Tuple[str, ...],
                 regions: Tuple[str, ...], target_capacity: int,
                 single_availability_zone: bool, max_results: int):
        self.engine = engine
        self.names = names
        self.regions = regions
        self.target_capacity = target_capacity
        self.single_availability_zone = single_availability_zone
        self.max_results = max_results
        self._epoch = engine.market.epoch
        self._seconds_per_day = SECONDS_PER_DAY
        self._cells: Optional[tuple] = None
        if single_availability_zone and len(names) == 1:
            self._cells = self._compile_cells()

    def _compile_cells(self) -> tuple:
        market = self.engine.market
        catalog = self.engine.catalog
        name = self.names[0]
        itype = catalog.instance_type(name)
        penalty = self.engine._capacity_penalty(itype, self.target_capacity)
        cells = []
        for region in self.regions:
            if not catalog.is_offered(name, region):
                continue
            zone_set = sorted(
                {z for z in catalog.supported_zones(name, region)})
            for zone in zone_set:
                base = market.base_headroom(itype, region, zone)
                # phases exactly as market._temporal_wave draws them
                waves = tuple(
                    (amplitude, period,
                     stable_uniform("phase", idx, "headroom", market.seed,
                                    itype.name, region, zone) * 2.0 * math.pi)
                    for idx, (amplitude, period)
                    in enumerate(TEMPORAL_COMPONENTS))
                events = tuple(e for e in market.events
                               if e.affects(market.seed, itype.name))
                cells.append((region, zone, base, waves, events, penalty))
        return tuple(cells)

    def rows(self, timestamp: float) -> List[PlacementScore]:
        """Evaluate at ``timestamp``; equals ``score_query`` byte-for-byte."""
        if self._cells is None:
            return self.engine.score_query(
                list(self.names), list(self.regions), timestamp,
                target_capacity=self.target_capacity,
                single_availability_zone=self.single_availability_zone,
                max_results=self.max_results)
        day = (timestamp - self._epoch) / self._seconds_per_day
        sin = math.sin
        pi = math.pi
        rows: List[PlacementScore] = []
        for region, zone, base, waves, events, penalty in self._cells:
            # replay of SpotMarket.headroom's float-op order: base, += the
            # summed temporal wave, -= the summed event depth, clip01
            total = 0.0
            for amplitude, period, phase in waves:
                total += amplitude * sin(2.0 * pi * day / period + phase)
            value = base + total
            depth = 0.0
            for event in events:
                depth += event.ramp_depth(day)
            value -= depth
            headroom = clip01(value) - penalty
            if headroom >= THRESHOLD_3:
                score = 3
            elif headroom >= THRESHOLD_2:
                score = 2
            else:
                score = 1
            rows.append(PlacementScore(region, zone, score))
        rows.sort(key=lambda r: (-r.score, r.region, r.availability_zone or ""))
        return rows[:self.max_results]
