"""Spot pricing engine (post-2017 policy).

After AWS's 2017 spot pricing change (paper Section 2.1), spot prices move
smoothly and infrequently and no longer track instantaneous capacity.  The
engine models each (instance type, zone) price as a piecewise-constant
process: the discount over on-demand re-samples at sparse, deterministic
change points, wanders slowly around a per-pool base discount, and is only
*weakly* coupled to the latent headroom -- so the price correlates with
neither the placement score nor the interruption-free score (Figure 8), yet
price history with change timestamps is still fully queryable like the real
``describe-spot-price-history``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .._util import clip01, stable_range, stable_uniform
from .catalog import Catalog, InstanceType
from .clock import SECONDS_PER_HOUR
from .market import SpotMarket

#: Length of a price-change evaluation window.  In each window a pool's
#: price re-samples with probability CHANGE_PROBABILITY.
PRICE_WINDOW_SECONDS = 6 * SECONDS_PER_HOUR

#: Per-window probability of a price change; with 6-hour windows and p=0.08
#: a pool's price changes roughly every 3 days (Figure 10 places spot-price
#: update intervals between the placement score and the advisor).
CHANGE_PROBABILITY = 0.08

#: Maximum windows scanned backwards before falling back to the base price.
_MAX_LOOKBACK_WINDOWS = 400

#: Base discount range over on-demand (savings of 50..78%).
BASE_DISCOUNT_MIN = 0.50
BASE_DISCOUNT_MAX = 0.78

#: Amplitude of the per-change-point discount wander.
DISCOUNT_JITTER = 0.06

#: Weak anti-headroom coupling: scarce pools price slightly higher.  Kept
#: small on purpose -- the post-2017 price barely reflects availability.
HEADROOM_COUPLING = 0.03


@dataclass(frozen=True)
class PricePoint:
    """One spot price change event, as returned by the price-history API."""

    timestamp: float
    price: float
    instance_type: str
    availability_zone: str


class PricingEngine:
    """Deterministic piecewise-constant spot prices for every pool."""

    def __init__(self, market: SpotMarket):
        self.market = market
        self.catalog: Catalog = market.catalog

    # -- change-point machinery ----------------------------------------------

    def _window_index(self, timestamp: float) -> int:
        return int((timestamp - self.market.epoch) // PRICE_WINDOW_SECONDS)

    def _window_start(self, index: int) -> float:
        return self.market.epoch + index * PRICE_WINDOW_SECONDS

    def _changes_in_window(self, itype_name: str, zone: str, index: int) -> bool:
        if index <= 0:
            return index == 0  # window 0 always sets the initial price
        u = stable_uniform("price-change", self.market.seed, itype_name, zone, index)
        return u < CHANGE_PROBABILITY

    def _discount_at_change(self, itype: InstanceType, region: str, zone: str,
                            index: int) -> float:
        base = stable_range(BASE_DISCOUNT_MIN, BASE_DISCOUNT_MAX,
                            "price-base", self.market.seed, itype.name, zone)
        jitter = stable_range(-DISCOUNT_JITTER, DISCOUNT_JITTER,
                              "price-jitter", self.market.seed, itype.name, zone, index)
        h = self.market.headroom(itype, region, zone, self._window_start(index))
        coupling = HEADROOM_COUPLING * (h - 0.5) * 2.0
        return clip01(base + jitter + coupling)

    def _last_change_window(self, itype_name: str, zone: str, timestamp: float) -> int:
        index = max(0, self._window_index(timestamp))
        for back in range(_MAX_LOOKBACK_WINDOWS):
            candidate = index - back
            if candidate <= 0:
                return 0
            if self._changes_in_window(itype_name, zone, candidate):
                return candidate
        return max(0, index - _MAX_LOOKBACK_WINDOWS)

    # -- public API -------------------------------------------------------------

    def zone_of_region(self, itype: InstanceType | str, region: str) -> str:
        """A canonical zone for region-level price lookups."""
        zones = self.catalog.supported_zones(itype, region)
        if not zones:
            raise ValueError(f"{itype} not offered in {region}")
        return zones[0]

    def spot_price(self, itype: InstanceType | str, region: str,
                   timestamp: float, zone: str | None = None) -> float:
        """Current spot $/hour for a pool."""
        if isinstance(itype, str):
            itype = self.catalog.instance_type(itype)
        if zone is None:
            zone = self.zone_of_region(itype, region)
        window = self._last_change_window(itype.name, zone, timestamp)
        discount = self._discount_at_change(itype, region, zone, window)
        return round(itype.on_demand_price * (1.0 - discount), 4)

    def savings_fraction(self, itype: InstanceType | str, region: str,
                         timestamp: float, zone: str | None = None) -> float:
        """Fractional saving of spot over on-demand at ``timestamp``."""
        if isinstance(itype, str):
            itype = self.catalog.instance_type(itype)
        spot = self.spot_price(itype, region, timestamp, zone)
        return 1.0 - spot / itype.on_demand_price

    def price_history(self, itype: InstanceType | str, region: str,
                      start: float, end: float,
                      zone: str | None = None) -> List[PricePoint]:
        """Price change events in ``[start, end]``, oldest first.

        Mirrors ``describe-spot-price-history``: each row is the instant the
        price changed and the new price.  The row in force at ``start`` is
        included (timestamped at its true change instant, clamped to start).
        """
        if end < start:
            raise ValueError("end must not precede start")
        if isinstance(itype, str):
            itype = self.catalog.instance_type(itype)
        if zone is None:
            zone = self.zone_of_region(itype, region)
        points: List[PricePoint] = []
        first_window = self._last_change_window(itype.name, zone, start)
        cursor = first_window
        last_index = self._window_index(end)
        while cursor <= last_index:
            if cursor == first_window or self._changes_in_window(itype.name, zone, cursor):
                change_time = max(self._window_start(cursor), self.market.epoch)
                discount = self._discount_at_change(itype, region, zone, cursor)
                points.append(PricePoint(
                    timestamp=max(change_time, start) if cursor == first_window else change_time,
                    price=round(itype.on_demand_price * (1.0 - discount), 4),
                    instance_type=itype.name,
                    availability_zone=zone,
                ))
            cursor += 1
        return points
