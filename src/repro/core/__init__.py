"""SpotLake core: query planning, collection, archival, serving."""

from .archive import (
    ADVISOR_TABLE,
    DIM_REGION,
    DIM_TYPE,
    DIM_ZONE,
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    PRICE_MEASURE,
    PRICE_TABLE,
    SAVINGS_MEASURE,
    SPS_MEASURE,
    SPS_TABLE,
    SpotLakeArchive,
)
from .collectors import (
    AdvisorCollector,
    CollectionReport,
    PriceCollector,
    SpotInfoScraper,
    SpsCollector,
)
from .query_planner import (
    QueryPlan,
    SpsQuery,
    pack_example,
    plan_for_catalog,
    plan_for_offering_map,
)
from .scheduler import CollectionScheduler, DEFAULT_INTERVAL_SECONDS, ScheduledJob
from .service import ServiceConfig, SpotLakeService
from .serving import ApiGateway, BadRequest, LambdaHandlers, Response

__all__ = [
    "ADVISOR_TABLE", "DIM_REGION", "DIM_TYPE", "DIM_ZONE",
    "IF_SCORE_MEASURE", "INTERRUPTION_RATIO_MEASURE", "PRICE_MEASURE",
    "PRICE_TABLE", "SAVINGS_MEASURE", "SPS_MEASURE", "SPS_TABLE",
    "SpotLakeArchive",
    "AdvisorCollector", "CollectionReport", "PriceCollector",
    "SpotInfoScraper", "SpsCollector",
    "QueryPlan", "SpsQuery", "pack_example", "plan_for_catalog",
    "plan_for_offering_map",
    "CollectionScheduler", "DEFAULT_INTERVAL_SECONDS", "ScheduledJob",
    "ServiceConfig", "SpotLakeService",
    "ApiGateway", "BadRequest", "LambdaHandlers", "Response",
]
