"""SpotLake core: query planning, collection, archival, serving."""

from .archive import (
    ADVISOR_TABLE,
    DIM_KEY,
    DIM_REASON,
    DIM_REGION,
    DIM_SOURCE,
    DIM_TYPE,
    DIM_ZONE,
    GAP_MEASURE,
    GAPS_TABLE,
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    PRICE_MEASURE,
    PRICE_TABLE,
    SAVINGS_MEASURE,
    SPS_MEASURE,
    SPS_TABLE,
    SpotLakeArchive,
)
from .collectors import (
    AdvisorCollector,
    CollectionReport,
    PriceCollector,
    SpotInfoScraper,
    SpsCollector,
)
from .query_planner import (
    QueryPlan,
    SpsQuery,
    pack_example,
    plan_for_catalog,
    plan_for_offering_map,
)
from .resilience import (
    BreakerState,
    CallOutcome,
    CircuitBreaker,
    GAP_BREAKER_OPEN,
    GAP_QUOTA_EXHAUSTED,
    GAP_RETRIES_EXHAUSTED,
    ResilientExecutor,
    RetryPolicy,
)
from .scheduler import (
    CollectionScheduler,
    DEFAULT_INTERVAL_SECONDS,
    RunEntry,
    ScheduledJob,
)
from .frontend import (
    ACCEPTING,
    FrontendTicket,
    RollingQuota,
    SHEDDING,
    ServingFrontend,
    Tenant,
    TokenBucket,
)
from .metrics import MetricsRegistry, RouteMetrics, TenantMetrics, percentile
from .service import ServiceConfig, SpotLakeService
from .serving import (
    ApiGateway,
    BadRequest,
    LambdaHandlers,
    Response,
    decode_cursor,
    encode_cursor,
)

__all__ = [
    "ADVISOR_TABLE", "DIM_REGION", "DIM_TYPE", "DIM_ZONE",
    "DIM_KEY", "DIM_REASON", "DIM_SOURCE",
    "GAP_MEASURE", "GAPS_TABLE",
    "IF_SCORE_MEASURE", "INTERRUPTION_RATIO_MEASURE", "PRICE_MEASURE",
    "PRICE_TABLE", "SAVINGS_MEASURE", "SPS_MEASURE", "SPS_TABLE",
    "SpotLakeArchive",
    "AdvisorCollector", "CollectionReport", "PriceCollector",
    "SpotInfoScraper", "SpsCollector",
    "QueryPlan", "SpsQuery", "pack_example", "plan_for_catalog",
    "plan_for_offering_map",
    "BreakerState", "CallOutcome", "CircuitBreaker",
    "GAP_BREAKER_OPEN", "GAP_QUOTA_EXHAUSTED", "GAP_RETRIES_EXHAUSTED",
    "ResilientExecutor", "RetryPolicy",
    "CollectionScheduler", "DEFAULT_INTERVAL_SECONDS", "RunEntry",
    "ScheduledJob",
    "ServiceConfig", "SpotLakeService",
    "ApiGateway", "BadRequest", "LambdaHandlers", "Response",
    "MetricsRegistry", "RouteMetrics", "TenantMetrics", "percentile",
    "decode_cursor", "encode_cursor",
    "ACCEPTING", "SHEDDING", "FrontendTicket", "RollingQuota",
    "ServingFrontend", "Tenant", "TokenBucket",
]
