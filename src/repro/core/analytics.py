"""Analytics runtime: three-tier execution of declarative aggregations.

:class:`AnalyticsRuntime` executes a :class:`~repro.timeseries.vector.
AggSpec` against one archive by picking, per query, how each tier
contributes:

* **hot** -- packed per-series array views on the table
  (:meth:`Table.series_arrays`), sliced with ``searchsorted`` and
  reduced by the kernels in :mod:`repro.timeseries.vector`;
* **cold** -- decoded segment columns assembled by
  :meth:`SpotDataLake.scan_column_arrays` for the part of the window
  the hot engine evicted (the split reuses ``FederatedHistory.plan``,
  so the tier boundary is exactly the federation boundary);
* **merge** -- the two tiers' :class:`Partials` combine exactly
  (count/sum/min/max add or take extrema; mean/std via the (n, Σ, Σ²)
  decomposition; the cross-tier update interval is added at the seam).

On top sits a generation-stamped **rollup cache**: for day-aligned
specs served purely from the hot tier, per-day per-series scalar
partials are cached and revalidated against the series generation
stamps -- a repeat query after new appends recomputes only the days at
or past each series' previous observation frontier, and an eviction
(which can remove history appends never can) drops the affected
series' rollups wholesale via ``Table.eviction_generation``.  Whole
results are additionally memoized in the table's
:class:`~repro.timeseries.cache.QueryCache` under the standard
generation-stamp rule, so an unchanged repeat is one dict probe.

Determinism: the runtime reads simulation data only -- never the host
clock -- so identical archives give byte-identical analytics responses
regardless of worker count or timing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..lake.schema import MERGED_TABLES
from ..timeseries.record import SeriesKey
from ..timeseries.table import Table
from ..timeseries.vector import (
    PARTIAL_FIELDS,
    AggResult,
    AggSpec,
    Partials,
    TierColumns,
    bucket_edges,
    bucket_index,
    compute_partials,
    finish_aggregates,
    gather_table_columns,
    lift_series_partials,
    merge_partials,
    series_window_partial,
)

#: Rollup granularity: one partial per series per UTC day.
DAY_SECONDS = 86400.0


@dataclass
class _SeriesRollup:
    """Cached per-day partials of one series, with their validity proof.

    ``gen`` is the series generation the partials were computed at;
    ``frontier`` the series' ``observed_until`` at that moment.  When
    the generation moved, only days at or past ``floor(frontier / day)``
    can differ (appends are monotone in time) -- unless an eviction
    happened, which invalidates everything.
    """

    gen: int
    frontier: float
    days: Dict[int, np.ndarray] = field(default_factory=dict)


class AnalyticsRuntime:
    """Vectorized aggregation engine over one :class:`SpotLakeArchive`."""

    def __init__(self, archive):
        self.archive = archive
        # (table, measure) -> per-series rollup entries; top-level map
        # guarded by _lock, entry contents serialized by the owning
        # table's lock (every compute path holds it)
        self._rollups: Dict[Tuple[str, str],
                            Dict[SeriesKey, _SeriesRollup]] = {}
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "queries": 0,
            "result_hits": 0,
            "cold_queries": 0,
            "partitions_pruned": 0,
            "chunks_pruned": 0,
            "chunks_decoded": 0,
            "rows_decoded": 0,
            "rollup_day_hits": 0,
            "rollup_day_recomputes": 0,
            "rollup_invalidations": 0,
        }

    # -- public API ---------------------------------------------------------

    def run(self, spec: AggSpec) -> AggResult:
        """Execute one spec; results are shared and must not be mutated."""
        table = self.archive.store.table(spec.table)
        self._bump("queries")
        cache = self.archive.query_cache(spec.table)
        if cache is None:
            with table.lock:
                return self._compute(spec, table)
        computed = []

        def build() -> AggResult:
            computed.append(True)
            return self._compute(spec, table)

        filters = dict(spec.filters) or None
        result = cache.derived(
            "aggspec", spec.measure, filters,
            (spec.start, spec.end, spec.bucket_seconds, spec.group_by,
             spec.aggregates), build)
        if not computed:
            self._bump("result_hits")
        return result

    def stats(self) -> Dict[str, int]:
        with self._lock:
            out = dict(self._counters)
        out["result_misses"] = out["queries"] - out["result_hits"]
        return out

    def _bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] += by

    # -- execution ----------------------------------------------------------

    def _compute(self, spec: AggSpec, table: Table) -> AggResult:
        """Plan the tier split and compute partials (table lock held)."""
        filters = dict(spec.filters) or None
        keys = table.series_keys(spec.measure, filters)
        group_of, labels = _group_labels(keys, spec.group_by)
        n_groups = max(len(labels), 1)
        edges = bucket_edges(spec.start, spec.end, spec.bucket_seconds)

        plan = None
        federated = self.archive._federated
        if federated is not None and spec.table in MERGED_TABLES:
            plan = federated.plan(spec.measure, spec.start, spec.end,
                                  self.archive.evicted_through(spec.table))
        use_cold = plan is not None and plan.use_cold
        boundary = plan.boundary if plan is not None else float("-inf")

        if not use_cold and _rollup_eligible(spec):
            part = self._rollup_partials(spec, table, keys, group_of,
                                         n_groups, edges)
        else:
            if use_cold:
                cold_end = min(spec.end, boundary)
                counters: Dict[str, int] = {}
                cold_cols = self.archive.lake.scan_column_arrays(
                    spec.measure, filters or {}, spec.start, cold_end,
                    keys, counters)
                cold = compute_partials(cold_cols, group_of, n_groups,
                                        edges, spec.start, cold_end,
                                        spec.wants_twa)
                self._bump("cold_queries")
                with self._lock:
                    for name, value in counters.items():
                        self._counters[name] += value
                if spec.end > boundary:
                    hot_cols = gather_table_columns(table, keys, boundary,
                                                    spec.end, False)
                    hot = compute_partials(hot_cols, group_of, n_groups,
                                           edges, boundary, spec.end,
                                           spec.wants_twa)
                    part = merge_partials(cold, hot, group_of, edges)
                else:
                    part = cold
            else:
                hot_cols = gather_table_columns(table, keys, spec.start,
                                                spec.end, True)
                part = compute_partials(hot_cols, group_of, n_groups,
                                        edges, spec.start, spec.end,
                                        spec.wants_twa)

        shape = (n_groups, len(edges) - 1)
        return AggResult(
            spec=spec, group_labels=labels, edges=edges,
            tables=finish_aggregates(part, spec.aggregates),
            count=part.count.reshape(shape),
            cover=part.cover.reshape(shape) if spec.wants_twa else None)

    # -- rollups ------------------------------------------------------------

    def _rollup_partials(self, spec: AggSpec, table: Table,
                         keys: Sequence[SeriesKey], group_of: np.ndarray,
                         n_groups: int, edges: np.ndarray) -> Partials:
        """Hot-tier partials assembled from cached per-day rollups.

        The spec is day-aligned (start and bucket width are whole-day
        multiples) and served purely hot, so the window decomposes into
        full UTC days plus one directly-computed edge slice
        ``[day_end, end]`` (degenerate when ``end`` is day-aligned,
        where it catches only rows at exactly ``end``).  Day partials
        come from the cache when the series generation proves them
        current; otherwise only days at or past the stale frontier are
        recomputed.
        """
        day0 = int(spec.start // DAY_SECONDS)
        day_end = int(spec.end // DAY_SECONDS)
        n_series = len(keys)
        n_fields = len(PARTIAL_FIELDS)
        day_mats = [np.zeros((n_series, n_fields))
                    for _ in range(day_end - day0)]
        edge_mat = np.zeros((n_series, n_fields))
        edge_start = day_end * DAY_SECONDS
        day_hits = day_recomputes = invalidations = 0

        with self._lock:
            store = self._rollups.setdefault((spec.table, spec.measure), {})

        for i, key in enumerate(keys):
            arrays = table.series_arrays(key)
            assert arrays is not None
            times, values = arrays
            series = table.series(key)
            gen_now = table.series_generation(key)
            entry = store.get(key)
            if entry is None or table.eviction_generation > entry.gen:
                if entry is not None:
                    invalidations += 1
                entry = _SeriesRollup(gen=gen_now, frontier=float("-inf"))
                store[key] = entry
            elif entry.gen != gen_now:
                stale_from = int(entry.frontier // DAY_SECONDS)
                entry.days = {d: vec for d, vec in entry.days.items()
                              if d < stale_from}
                entry.gen = gen_now
            entry.frontier = series.observed_until
            for d in range(day0, day_end):
                vec = entry.days.get(d)
                if vec is None:
                    vec = series_window_partial(
                        times, values, d * DAY_SECONDS,
                        (d + 1) * DAY_SECONDS, False)
                    entry.days[d] = vec
                    day_recomputes += 1
                else:
                    day_hits += 1
                day_mats[d - day0][i] = vec
            edge_mat[i] = series_window_partial(times, values, edge_start,
                                                spec.end, True)

        with self._lock:
            self._counters["rollup_day_hits"] += day_hits
            self._counters["rollup_day_recomputes"] += day_recomputes
            self._counters["rollup_invalidations"] += invalidations

        part: Optional[Partials] = None
        for d in range(day0, day_end):
            bucket = np.full(n_series, int(bucket_index(
                edges, np.asarray([d * DAY_SECONDS]))[0]), dtype=np.int64)
            lifted = lift_series_partials(day_mats[d - day0], bucket,
                                          group_of, n_groups, edges)
            part = lifted if part is None else \
                merge_partials(part, lifted, group_of, edges)
        bucket = np.full(n_series, int(bucket_index(
            edges, np.asarray([edge_start]))[0]), dtype=np.int64)
        lifted = lift_series_partials(edge_mat, bucket, group_of,
                                      n_groups, edges)
        return lifted if part is None else \
            merge_partials(part, lifted, group_of, edges)


def _rollup_eligible(spec: AggSpec) -> bool:
    """Day rollups apply to day-aligned windows on day-multiple buckets."""
    return (spec.bucket_seconds is not None
            and spec.bucket_seconds % DAY_SECONDS == 0
            and spec.start % DAY_SECONDS == 0
            and spec.end > spec.start)


def _group_labels(keys: Sequence[SeriesKey], group_by: Tuple[str, ...],
                  ) -> Tuple[np.ndarray, Tuple[Tuple[str, ...], ...]]:
    """Group subscript per series plus the sorted label tuples.

    Series missing a group-by dimension get subscript -1 (excluded);
    with no group-by every series lands in the single empty-label group.
    """
    group_of = np.full(len(keys), -1, dtype=np.int64)
    assigned: List[Tuple[int, Tuple[str, ...]]] = []
    for i, key in enumerate(keys):
        dims = key.dimension_dict
        label: Optional[Tuple[str, ...]] = ()
        for dim in group_by:
            value = dims.get(dim)
            if value is None:
                label = None
                break
            label = label + (value,)
        if label is not None:
            assigned.append((i, label))
    labels = tuple(sorted({label for _, label in assigned}))
    index = {label: g for g, label in enumerate(labels)}
    for i, label in assigned:
        group_of[i] = index[label]
    return group_of, labels
