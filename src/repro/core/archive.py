"""SpotLake archive: historical storage of the three spot datasets.

The archive wraps the time-series store with SpotLake's schema:

=========  =======================================  =========================
Table      Dimensions                               Measures
=========  =======================================  =========================
sps        InstanceType, Region, AvailabilityZone   sps (1..10)
advisor    InstanceType, Region                     interruption_ratio (raw),
                                                    if_score (1.0..3.0),
                                                    savings (percent)
price      InstanceType, Region, AvailabilityZone   spot_price ($/hour)
=========  =======================================  =========================

Historical queries -- the capability the vendor datasets lack and the
paper's core contribution -- are plain time-range reads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..storage import StorageEngine
from ..timeseries import (
    QueryCache,
    Record,
    RetentionPolicy,
    SeriesKey,
    Table,
    TimeSeriesStore,
    Value,
    dimension_key,
    resample_matrix,
    update_intervals,
)
from ..timeseries.cache import DEFAULT_MAX_ENTRIES

SPS_TABLE = "sps"
ADVISOR_TABLE = "advisor"
PRICE_TABLE = "price"
#: Explicit collection holes (graceful degradation): created lazily so
#: fault-free archives keep their original three-table shape.
GAPS_TABLE = "gaps"

SPS_MEASURE = "sps"
IF_SCORE_MEASURE = "if_score"
INTERRUPTION_RATIO_MEASURE = "interruption_ratio"
SAVINGS_MEASURE = "savings"
PRICE_MEASURE = "spot_price"

DIM_TYPE = "InstanceType"
DIM_REGION = "Region"
DIM_ZONE = "AvailabilityZone"

GAP_MEASURE = "gap"
DIM_SOURCE = "Source"
DIM_KEY = "Key"
DIM_REASON = "Reason"


class SpotLakeArchive:
    """Facade the collectors write to and the serving layer reads from."""

    def __init__(self, retention: Optional[RetentionPolicy] = None,
                 cache: bool = True,
                 cache_entries: int = DEFAULT_MAX_ENTRIES,
                 data_dir: Optional[Union[str, Path]] = None,
                 checkpoint_every: int = 4,
                 crash_hook=None):
        #: durable storage engine, or None for a purely in-memory archive
        self.engine: Optional[StorageEngine] = None
        self.checkpoint_every = checkpoint_every
        if data_dir is not None:
            self.engine = StorageEngine(data_dir, crash_hook=crash_hook)
            # a restarted archive adopts whatever the last committed round
            # left behind; a fresh directory recovers an empty store
            self.store = self.engine.recovered.store
        else:
            self.store = TimeSeriesStore()
        for name in (SPS_TABLE, ADVISOR_TABLE, PRICE_TABLE):
            self._ensure_table(name, retention)
        if self.engine is not None:
            self.engine.attach(self.store)
        #: generation-stamped read caches, one per table (lazily created;
        #: creation is guarded so concurrent serving workers agree on one
        #: cache instance per table)
        self._caches: Dict[str, QueryCache] = {}
        self._caches_lock = threading.Lock()
        self._cache_entries = cache_entries
        self.cache_enabled = cache
        # SeriesKey caches for the batched write path: every collection
        # round touches the same (type, region, zone) coordinates, so the
        # keys (and their cached hashes) are built once and reused
        self._sps_keys: Dict[Tuple[str, str, str], SeriesKey] = {}
        self._price_keys: Dict[Tuple[str, str, str], SeriesKey] = {}
        self._advisor_keys: Dict[Tuple[str, str],
                                 Tuple[SeriesKey, SeriesKey, SeriesKey]] = {}

    # -- durability ---------------------------------------------------------

    def _ensure_table(self, name: str,
                      retention: Optional[RetentionPolicy] = None) -> Table:
        """Create (and WAL-log) a table unless it already exists."""
        if name in self.store.table_names():
            return self.store.table(name)
        if self.engine is not None:
            self.engine.log_create_table(name, retention)
        return self.store.create_table(name, retention)

    def _write(self, table_name: str, record: Record) -> None:
        """Log-then-apply: the WAL sees every record before the table."""
        if self.engine is not None:
            self.engine.log_record(table_name, record)
        self.store.table(table_name).write(record)

    def apply_retention(self, now: float) -> Dict[str, int]:
        """Run the retention sweep, WAL-logging each eviction."""
        dropped: Dict[str, int] = {}
        for name in self.store.table_names():
            cutoff = self.store.policy(name).cutoff(now)
            if cutoff is None:
                continue
            table = self.store.table(name)
            if self.engine is not None:
                self.engine.log_eviction(name, cutoff, table.series_keys())
            dropped[name] = table.evict_before(cutoff)
        return dropped

    def commit_round(self, time: float) -> Dict[str, int]:
        """End-of-round hook: retention sweep, then durable group commit.

        The collection round is the crash-atomicity unit; every
        ``checkpoint_every`` committed rounds the log is folded into
        segments.  Without a storage engine only the sweep runs.
        """
        dropped = self.apply_retention(time)
        if self.engine is not None:
            self.engine.commit_round(time)
            if self.checkpoint_every > 0 and \
                    self.engine.rounds_committed % self.checkpoint_every == 0:
                self.engine.checkpoint(time)
        return dropped

    def checkpoint(self, time: float) -> None:
        """Force a checkpoint now (used at shutdown)."""
        if self.engine is not None:
            self.engine.checkpoint(time)

    def close(self) -> None:
        if self.engine is not None:
            self.engine.close()

    # -- read caching -------------------------------------------------------

    def query_cache(self, table_name: str) -> Optional[QueryCache]:
        """The table's read cache, or None while caching is disabled."""
        if not self.cache_enabled:
            return None
        with self._caches_lock:
            cache = self._caches.get(table_name)
            if cache is None:
                cache = QueryCache(self.store.table(table_name),
                                   max_entries=self._cache_entries)
                self._caches[table_name] = cache
            return cache

    def cache_stats(self) -> Dict[str, dict]:
        """Per-table cache counters plus an aggregate ``hit_rate``."""
        with self._caches_lock:
            caches = dict(self._caches)
        per_table = {name: cache.stats.as_dict()
                     for name, cache in sorted(caches.items())}
        hits = sum(c.stats.hits for c in caches.values())
        requests = sum(c.stats.requests for c in caches.values())
        return {
            "enabled": self.cache_enabled,
            "tables": per_table,
            "hits": hits,
            "misses": requests - hits,
            "hit_rate": hits / requests if requests else 0.0,
        }

    def _value_at(self, table_name: str, measure: str,
                  dimensions: Dict[str, str], time: float):
        cache = self.query_cache(table_name)
        if cache is not None:
            return cache.value_at(measure, dimensions, time)
        return self.store.table(table_name).value_at(measure, dimensions, time)

    # -- tables ------------------------------------------------------------

    @property
    def sps(self) -> Table:
        return self.store.table(SPS_TABLE)

    @property
    def advisor(self) -> Table:
        return self.store.table(ADVISOR_TABLE)

    @property
    def price(self) -> Table:
        return self.store.table(PRICE_TABLE)

    @property
    def gaps(self) -> Optional[Table]:
        """The gap table, or None while the archive has no holes."""
        if GAPS_TABLE not in self.store.table_names():
            return None
        return self.store.table(GAPS_TABLE)

    # -- writes (used by collectors) ------------------------------------------

    def put_sps(self, instance_type: str, region: str, zone: str,
                score: int, time: float) -> None:
        self._write(SPS_TABLE, Record.make(
            {DIM_TYPE: instance_type, DIM_REGION: region, DIM_ZONE: zone},
            SPS_MEASURE, int(score), time))

    def put_advisor(self, instance_type: str, region: str,
                    interruption_ratio: float, if_score: float,
                    savings_percent: int, time: float) -> None:
        dims = {DIM_TYPE: instance_type, DIM_REGION: region}
        self._write(ADVISOR_TABLE, Record.make(
            dims, INTERRUPTION_RATIO_MEASURE, float(interruption_ratio), time))
        self._write(ADVISOR_TABLE, Record.make(
            dims, IF_SCORE_MEASURE, float(if_score), time))
        self._write(ADVISOR_TABLE, Record.make(
            dims, SAVINGS_MEASURE, int(savings_percent), time))

    def put_price(self, instance_type: str, region: str, zone: str,
                  price: float, time: float) -> None:
        self._write(PRICE_TABLE, Record.make(
            {DIM_TYPE: instance_type, DIM_REGION: region, DIM_ZONE: zone},
            PRICE_MEASURE, float(price), time))

    # -- bulk writes (the batched ingest path) --------------------------------

    def _put_points(self, table_name: str,
                    points: List[Tuple[SeriesKey, float, Value]]) -> int:
        """Log-then-apply a batch: WAL first (in order), then the table.

        One :meth:`Table.append_many` call replaces N ``write`` calls;
        byte-identical archive state and WAL lines to the pointwise path
        because record order, encodings and the log-before-apply protocol
        are all preserved.
        """
        if self.engine is not None:
            self.engine.log_points(table_name, points)
        self.store.table(table_name).append_many(points)
        return len(points)

    def put_sps_batch(self, rows: Sequence[Tuple[str, str, str, int, float]]
                      ) -> int:
        """Bulk :meth:`put_sps`: rows of (type, region, zone, score, time)."""
        keys = self._sps_keys
        points: List[Tuple[SeriesKey, float, Value]] = []
        for instance_type, region, zone, score, time in rows:
            coords = (instance_type, region, zone)
            key = keys.get(coords)
            if key is None:
                key = SeriesKey(SPS_MEASURE, dimension_key(
                    {DIM_TYPE: instance_type, DIM_REGION: region,
                     DIM_ZONE: zone}))
                keys[coords] = key
            points.append((key, float(time), int(score)))
        return self._put_points(SPS_TABLE, points)

    def put_price_batch(self, rows: Sequence[Tuple[str, str, str, float, float]]
                        ) -> int:
        """Bulk :meth:`put_price`: rows of (type, region, zone, price, time)."""
        keys = self._price_keys
        points: List[Tuple[SeriesKey, float, Value]] = []
        for instance_type, region, zone, price, time in rows:
            coords = (instance_type, region, zone)
            key = keys.get(coords)
            if key is None:
                key = SeriesKey(PRICE_MEASURE, dimension_key(
                    {DIM_TYPE: instance_type, DIM_REGION: region,
                     DIM_ZONE: zone}))
                keys[coords] = key
            points.append((key, float(time), float(price)))
        return self._put_points(PRICE_TABLE, points)

    def put_advisor_batch(self,
                          rows: Sequence[Tuple[str, str, float, float, int,
                                               float]]) -> int:
        """Bulk :meth:`put_advisor`: rows of (type, region, ratio, if_score,
        savings, time); emits the same three records per row, in the same
        order."""
        keys = self._advisor_keys
        points: List[Tuple[SeriesKey, float, Value]] = []
        for instance_type, region, ratio, if_score, savings, time in rows:
            coords = (instance_type, region)
            triple = keys.get(coords)
            if triple is None:
                dims = dimension_key(
                    {DIM_TYPE: instance_type, DIM_REGION: region})
                triple = (SeriesKey(INTERRUPTION_RATIO_MEASURE, dims),
                          SeriesKey(IF_SCORE_MEASURE, dims),
                          SeriesKey(SAVINGS_MEASURE, dims))
                keys[coords] = triple
            stamp = float(time)
            points.append((triple[0], stamp, float(ratio)))
            points.append((triple[1], stamp, float(if_score)))
            points.append((triple[2], stamp, int(savings)))
        return self._put_points(ADVISOR_TABLE, points)

    def record_batch(self) -> "RecordBatch":
        """A fresh per-round buffer feeding the batch writers above."""
        return RecordBatch(self)

    def put_gap(self, source: str, key: str, reason: str,
                attempts: int, time: float) -> None:
        """Record an explicit collection hole.

        ``source`` is the data source ("sps" / "advisor" / "price"),
        ``key`` the logical query that failed, ``reason`` why collection
        gave up, ``attempts`` how many tries were spent.  An archived hole
        is the graceful-degradation contract: every planned query ends as
        either a dataset record or exactly one of these.
        """
        self._ensure_table(GAPS_TABLE)
        self._write(GAPS_TABLE, Record.make(
            {DIM_SOURCE: source, DIM_KEY: key, DIM_REASON: reason},
            GAP_MEASURE, int(attempts), time))

    # -- reads ------------------------------------------------------------------

    def sps_at(self, instance_type: str, region: str, zone: str,
               time: float) -> Optional[int]:
        value = self._value_at(SPS_TABLE, SPS_MEASURE, {
            DIM_TYPE: instance_type, DIM_REGION: region, DIM_ZONE: zone}, time)
        return None if value is None else int(value)

    def if_score_at(self, instance_type: str, region: str,
                    time: float) -> Optional[float]:
        value = self._value_at(ADVISOR_TABLE, IF_SCORE_MEASURE, {
            DIM_TYPE: instance_type, DIM_REGION: region}, time)
        return None if value is None else float(value)

    def savings_at(self, instance_type: str, region: str,
                   time: float) -> Optional[int]:
        value = self._value_at(ADVISOR_TABLE, SAVINGS_MEASURE, {
            DIM_TYPE: instance_type, DIM_REGION: region}, time)
        return None if value is None else int(value)

    def price_at(self, instance_type: str, region: str, zone: str,
                 time: float) -> Optional[float]:
        value = self._value_at(PRICE_TABLE, PRICE_MEASURE, {
            DIM_TYPE: instance_type, DIM_REGION: region, DIM_ZONE: zone}, time)
        return None if value is None else float(value)

    def gap_count(self) -> int:
        """Total gap records ever written (0 for a hole-free archive)."""
        table = self.gaps
        return 0 if table is None else table.stats.records_written

    def gap_history(self, filters: Optional[Dict[str, str]] = None,
                    start: float = float("-inf"),
                    end: float = float("inf")) -> List[Record]:
        """Gap change points in [start, end]; filter by Source/Key/Reason."""
        table = self.gaps
        if table is None:
            return []
        cache = self.query_cache(GAPS_TABLE)
        if cache is not None:
            return cache.scan(GAP_MEASURE, filters or {}, start, end)
        return table.scan(GAP_MEASURE, filters or {}, start, end)

    def history(self, table_name: str, measure: str,
                filters: Dict[str, str], start: float, end: float) -> List[Record]:
        """Change-point history of matching series in [start, end].

        Served through the table's generation-stamped read cache when
        caching is enabled; treat the returned list as immutable.
        """
        cache = self.query_cache(table_name)
        if cache is not None:
            return cache.scan(measure, filters, start, end)
        return self.store.table(table_name).scan(measure, filters, start, end)

    # -- analysis-facing bulk reads ------------------------------------------------

    def sps_matrix(self, sample_times: Sequence[float],
                   filters: Optional[Dict[str, str]] = None,
                   ) -> Tuple[List[SeriesKey], np.ndarray]:
        """Aligned SPS samples: one row per (type, region, zone) series."""
        return resample_matrix(self.sps, SPS_MEASURE, sample_times, filters)

    def if_score_matrix(self, sample_times: Sequence[float],
                        filters: Optional[Dict[str, str]] = None,
                        ) -> Tuple[List[SeriesKey], np.ndarray]:
        """Aligned interruption-free score samples per (type, region)."""
        return resample_matrix(self.advisor, IF_SCORE_MEASURE, sample_times, filters)

    def savings_matrix(self, sample_times: Sequence[float],
                       filters: Optional[Dict[str, str]] = None,
                       ) -> Tuple[List[SeriesKey], np.ndarray]:
        """Aligned savings-percent samples per (type, region)."""
        return resample_matrix(self.advisor, SAVINGS_MEASURE, sample_times, filters)

    def price_matrix(self, sample_times: Sequence[float],
                     filters: Optional[Dict[str, str]] = None,
                     ) -> Tuple[List[SeriesKey], np.ndarray]:
        """Aligned spot-price samples per (type, region, zone) series."""
        return resample_matrix(self.price, PRICE_MEASURE, sample_times, filters)

    def update_interval_samples(self, dataset: str) -> List[float]:
        """Elapsed seconds between value changes (Figure 10 input).

        ``dataset`` is one of "sps", "if_score", "price", "savings".
        """
        if dataset == "sps":
            return update_intervals(self.sps, SPS_MEASURE)
        if dataset == "if_score":
            return update_intervals(self.advisor, IF_SCORE_MEASURE)
        if dataset == "savings":
            return update_intervals(self.advisor, SAVINGS_MEASURE)
        if dataset == "price":
            return update_intervals(self.price, PRICE_MEASURE)
        raise ValueError(f"unknown dataset {dataset!r}")

    def stats(self) -> Dict[str, dict]:
        return self.store.stats()


class RecordBatch:
    """One round's buffered rows, flushed through the archive's batch APIs.

    Collectors accumulate typed rows during a round and land them with a
    single :meth:`flush` -- one ``append_many`` per touched table, one
    group-committed WAL run per table, instead of one call per point.
    Row order within each kind is preserved, so flushing a batch is
    byte-identical to issuing the same ``put_*`` calls pointwise.
    """

    def __init__(self, archive: SpotLakeArchive):
        self.archive = archive
        self._sps: List[Tuple[str, str, str, int, float]] = []
        self._price: List[Tuple[str, str, str, float, float]] = []
        self._advisor: List[Tuple[str, str, float, float, int, float]] = []

    def add_sps(self, instance_type: str, region: str, zone: str,
                score: int, time: float) -> None:
        self._sps.append((instance_type, region, zone, score, time))

    def add_sps_rows(self,
                     rows: Sequence[Tuple[str, str, str, int, float]]) -> None:
        self._sps.extend(rows)

    def add_price(self, instance_type: str, region: str, zone: str,
                  price: float, time: float) -> None:
        self._price.append((instance_type, region, zone, price, time))

    def add_price_rows(self,
                       rows: Sequence[Tuple[str, str, str, float, float]]
                       ) -> None:
        self._price.extend(rows)

    def add_advisor(self, instance_type: str, region: str,
                    interruption_ratio: float, if_score: float,
                    savings_percent: int, time: float) -> None:
        self._advisor.append((instance_type, region, interruption_ratio,
                              if_score, savings_percent, time))

    def add_advisor_rows(self,
                         rows: Sequence[Tuple[str, str, float, float, int,
                                              float]]) -> None:
        self._advisor.extend(rows)

    def __len__(self) -> int:
        """Archive records this batch will write (advisor rows count 3)."""
        return len(self._sps) + len(self._price) + 3 * len(self._advisor)

    def flush(self) -> int:
        """Write every buffered row and empty the batch.

        Tables flush in a fixed order (sps, advisor, price) so the WAL
        sequence is independent of buffering order; returns the number of
        archive records written.
        """
        written = 0
        if self._sps:
            written += self.archive.put_sps_batch(self._sps)
            self._sps = []
        if self._advisor:
            written += self.archive.put_advisor_batch(self._advisor)
            self._advisor = []
        if self._price:
            written += self.archive.put_price_batch(self._price)
            self._price = []
        return written
