"""SpotLake archive: historical storage of the three spot datasets.

The archive wraps the time-series store with SpotLake's schema:

=========  =======================================  =========================
Table      Dimensions                               Measures
=========  =======================================  =========================
sps        InstanceType, Region, AvailabilityZone   sps (1..10)
advisor    InstanceType, Region                     interruption_ratio (raw),
                                                    if_score (1.0..3.0),
                                                    savings (percent)
price      InstanceType, Region, AvailabilityZone   spot_price ($/hour)
=========  =======================================  =========================

Historical queries -- the capability the vendor datasets lack and the
paper's core contribution -- are plain time-range reads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..lake import (
    ADVISOR_TABLE,
    DIM_REGION,
    DIM_TYPE,
    DIM_ZONE,
    FederatedHistory,
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    LAKE_DIR_NAME,
    MERGED_TABLES,
    PRICE_MEASURE,
    PRICE_TABLE,
    RoundDiffer,
    RoundMerger,
    SAVINGS_MEASURE,
    SPS_MEASURE,
    SPS_TABLE,
    SpotDataLake,
)
from ..storage import StorageEngine
from ..timeseries import (
    QueryCache,
    Record,
    RetentionPolicy,
    SeriesKey,
    Table,
    TimeSeriesStore,
    Value,
    dimension_key,
    resample_matrix,
    update_intervals,
)
from ..timeseries.cache import DEFAULT_MAX_ENTRIES
from .analytics import AnalyticsRuntime

# The merged-record schema constants (SPS_TABLE, SPS_MEASURE, DIM_TYPE,
# ...) are defined once in repro.lake.schema and re-exported here, so the
# rest of the codebase keeps importing them from the archive facade.

#: Explicit collection holes (graceful degradation): created lazily so
#: fault-free archives keep their original three-table shape.
GAPS_TABLE = "gaps"

GAP_MEASURE = "gap"
DIM_SOURCE = "Source"
DIM_KEY = "Key"
DIM_REASON = "Reason"


class SpotLakeArchive:
    """Facade the collectors write to and the serving layer reads from."""

    def __init__(self, retention: Optional[RetentionPolicy] = None,
                 cache: bool = True,
                 cache_entries: int = DEFAULT_MAX_ENTRIES,
                 data_dir: Optional[Union[str, Path]] = None,
                 checkpoint_every: int = 4,
                 crash_hook=None,
                 lake: bool = False,
                 lake_full_refresh_every: int = 0):
        #: durable storage engine, or None for a purely in-memory archive
        self.engine: Optional[StorageEngine] = None
        self.checkpoint_every = checkpoint_every
        if data_dir is not None:
            self.engine = StorageEngine(data_dir, crash_hook=crash_hook)
            # a restarted archive adopts whatever the last committed round
            # left behind; a fresh directory recovers an empty store
            self.store = self.engine.recovered.store
        else:
            self.store = TimeSeriesStore()
        for name in (SPS_TABLE, ADVISOR_TABLE, PRICE_TABLE):
            self._ensure_table(name, retention)
        if self.engine is not None:
            self.engine.attach(self.store)
        #: tiered-lake mode: collectors feed a round merger; commits land
        #: the raw round in the cold tier and only changed rows in the hot
        #: engine; history queries federate across the eviction boundary
        self.lake: Optional[SpotDataLake] = None
        self._merger: Optional[RoundMerger] = None
        self._differ: Optional[RoundDiffer] = None
        self._federated: Optional[FederatedHistory] = None
        #: lifetime ingest-avoidance counters (lake mode): rows the merger
        #: captured vs rows the diff actually wrote to the hot engine
        self.rows_merged = 0
        self.rows_ingested = 0
        if lake:
            if data_dir is None:
                raise ValueError("lake mode requires a data_dir")
            self.lake = SpotDataLake(Path(data_dir) / LAKE_DIR_NAME,
                                     crash_hook=crash_hook)
            # rounds land in the lake before the hot WAL's group commit:
            # drop any round the crashed run archived but never committed
            # (it is re-collected deterministically)
            self.lake.trim_to(self.engine.last_commit_time)
            self._merger = RoundMerger()
            self._differ = RoundDiffer(
                full_refresh_every=lake_full_refresh_every)
            self._differ.seed(self.lake.latest_values(),
                              rounds=self.lake.round_count)
            self._federated = FederatedHistory(self.lake)
        #: generation-stamped read caches, one per table (lazily created;
        #: creation is guarded so concurrent serving workers agree on one
        #: cache instance per table)
        self._caches: Dict[str, QueryCache] = {}
        self._caches_lock = threading.Lock()
        self._cache_entries = cache_entries
        self.cache_enabled = cache
        #: vectorized aggregation engine (lazily created under the same
        #: guard as the query caches so serving workers share one)
        self._analytics: Optional[AnalyticsRuntime] = None
        # SeriesKey caches for the batched write path: every collection
        # round touches the same (type, region, zone) coordinates, so the
        # keys (and their cached hashes) are built once and reused
        self._sps_keys: Dict[Tuple[str, str, str], SeriesKey] = {}
        self._price_keys: Dict[Tuple[str, str, str], SeriesKey] = {}
        self._advisor_keys: Dict[Tuple[str, str],
                                 Tuple[SeriesKey, SeriesKey, SeriesKey]] = {}

    # -- durability ---------------------------------------------------------

    def _ensure_table(self, name: str,
                      retention: Optional[RetentionPolicy] = None) -> Table:
        """Create (and WAL-log) a table unless it already exists."""
        if name in self.store.table_names():
            return self.store.table(name)
        if self.engine is not None:
            self.engine.log_create_table(name, retention)
        return self.store.create_table(name, retention)

    def _write(self, table_name: str, record: Record) -> None:
        """Log-then-apply: the WAL sees every record before the table."""
        if self.engine is not None:
            self.engine.log_record(table_name, record)
        self.store.table(table_name).write(record)

    def apply_retention(self, now: float) -> Dict[str, int]:
        """Run the retention sweep, WAL-logging each eviction."""
        dropped: Dict[str, int] = {}
        for name in self.store.table_names():
            cutoff = self.store.policy(name).cutoff(now)
            if cutoff is None:
                continue
            table = self.store.table(name)
            if self.engine is not None:
                self.engine.log_eviction(name, cutoff, table.series_keys())
            dropped[name] = table.evict_before(cutoff)
        return dropped

    def commit_round(self, time: float) -> Dict[str, int]:
        """End-of-round hook: land the round, sweep retention, group-commit.

        The collection round is the crash-atomicity unit; every
        ``checkpoint_every`` committed rounds the log is folded into
        segments.  Without a storage engine only the sweep runs.  In lake
        mode the buffered merged round first lands raw in the cold tier,
        then only its changed rows are ingested into the hot engine --
        strictly before the WAL's group commit, so recovery can trim the
        lake to ``last_commit_time`` and re-collect the tail.
        """
        if self._merger is not None:
            self._commit_lake_round(time)
        dropped = self.apply_retention(time)
        if self.engine is not None:
            self.engine.commit_round(time)
            if self.checkpoint_every > 0 and \
                    self.engine.rounds_committed % self.checkpoint_every == 0:
                self.engine.checkpoint(time)
        return dropped

    def _commit_lake_round(self, time: float) -> None:
        """Archive the merged round cold, ingest its diff hot."""
        merged = self._merger.take_round(time)
        if merged.row_count == 0:
            return
        self.lake.append_round(merged)
        diff = self._differ.diff(merged)
        self.rows_merged += diff.rows_seen
        self.rows_ingested += diff.rows_changed
        # same fixed table order as RecordBatch.flush
        if diff.sps:
            self.put_sps_batch(diff.sps)
        if diff.advisor:
            self.put_advisor_batch(diff.advisor)
        if diff.price:
            self.put_price_batch(diff.price)

    def checkpoint(self, time: float) -> None:
        """Force a checkpoint now (used at shutdown)."""
        if self.engine is not None:
            self.engine.checkpoint(time)

    def close(self) -> None:
        if self.lake is not None:
            self.lake.close()
        if self.engine is not None:
            self.engine.close()

    # -- read caching -------------------------------------------------------

    def query_cache(self, table_name: str) -> Optional[QueryCache]:
        """The table's read cache, or None while caching is disabled."""
        if not self.cache_enabled:
            return None
        with self._caches_lock:
            cache = self._caches.get(table_name)
            if cache is None:
                cache = QueryCache(self.store.table(table_name),
                                   max_entries=self._cache_entries)
                self._caches[table_name] = cache
            return cache

    @property
    def analytics(self) -> AnalyticsRuntime:
        """The archive's vectorized aggregation runtime (shared)."""
        with self._caches_lock:
            if self._analytics is None:
                self._analytics = AnalyticsRuntime(self)
            return self._analytics

    def cache_stats(self) -> Dict[str, dict]:
        """Per-table cache counters plus an aggregate ``hit_rate``."""
        with self._caches_lock:
            caches = dict(self._caches)
        per_table = {name: cache.stats.as_dict()
                     for name, cache in sorted(caches.items())}
        hits = sum(c.stats.hits for c in caches.values())
        requests = sum(c.stats.requests for c in caches.values())
        return {
            "enabled": self.cache_enabled,
            "tables": per_table,
            "hits": hits,
            "misses": requests - hits,
            "hit_rate": hits / requests if requests else 0.0,
        }

    def _value_at(self, table_name: str, measure: str,
                  dimensions: Dict[str, str], time: float):
        cache = self.query_cache(table_name)
        if cache is not None:
            return cache.value_at(measure, dimensions, time)
        return self.store.table(table_name).value_at(measure, dimensions, time)

    # -- tables ------------------------------------------------------------

    @property
    def sps(self) -> Table:
        return self.store.table(SPS_TABLE)

    @property
    def advisor(self) -> Table:
        return self.store.table(ADVISOR_TABLE)

    @property
    def price(self) -> Table:
        return self.store.table(PRICE_TABLE)

    @property
    def gaps(self) -> Optional[Table]:
        """The gap table, or None while the archive has no holes."""
        if GAPS_TABLE not in self.store.table_names():
            return None
        return self.store.table(GAPS_TABLE)

    # -- writes (used by collectors) ------------------------------------------
    # In lake mode the pointwise puts (and RecordBatch.flush) hand rows
    # to the round merger instead of the hot engine; commit_round lands
    # the merged round cold and ingests only the diff.  The put_*_batch
    # writers below always write hot: they are the diff's landing path
    # (and bulk_backfill's, which bypasses the merge stage by design --
    # backfilled history predates the lake).

    def put_sps(self, instance_type: str, region: str, zone: str,
                score: int, time: float) -> None:
        if self._merger is not None:
            self._merger.add_sps(instance_type, region, zone, score, time)
            return
        self._write(SPS_TABLE, Record.make(
            {DIM_TYPE: instance_type, DIM_REGION: region, DIM_ZONE: zone},
            SPS_MEASURE, int(score), time))

    def put_advisor(self, instance_type: str, region: str,
                    interruption_ratio: float, if_score: float,
                    savings_percent: int, time: float) -> None:
        if self._merger is not None:
            self._merger.add_advisor(instance_type, region,
                                     interruption_ratio, if_score,
                                     savings_percent, time)
            return
        dims = {DIM_TYPE: instance_type, DIM_REGION: region}
        self._write(ADVISOR_TABLE, Record.make(
            dims, INTERRUPTION_RATIO_MEASURE, float(interruption_ratio), time))
        self._write(ADVISOR_TABLE, Record.make(
            dims, IF_SCORE_MEASURE, float(if_score), time))
        self._write(ADVISOR_TABLE, Record.make(
            dims, SAVINGS_MEASURE, int(savings_percent), time))

    def put_price(self, instance_type: str, region: str, zone: str,
                  price: float, time: float) -> None:
        if self._merger is not None:
            self._merger.add_price(instance_type, region, zone, price, time)
            return
        self._write(PRICE_TABLE, Record.make(
            {DIM_TYPE: instance_type, DIM_REGION: region, DIM_ZONE: zone},
            PRICE_MEASURE, float(price), time))

    # -- bulk writes (the batched ingest path) --------------------------------

    def _put_points(self, table_name: str,
                    points: List[Tuple[SeriesKey, float, Value]]) -> int:
        """Log-then-apply a batch: WAL first (in order), then the table.

        One :meth:`Table.append_many` call replaces N ``write`` calls;
        byte-identical archive state and WAL lines to the pointwise path
        because record order, encodings and the log-before-apply protocol
        are all preserved.
        """
        if self.engine is not None:
            self.engine.log_points(table_name, points)
        self.store.table(table_name).append_many(points)
        return len(points)

    def put_sps_batch(self, rows: Sequence[Tuple[str, str, str, int, float]]
                      ) -> int:
        """Bulk :meth:`put_sps`: rows of (type, region, zone, score, time)."""
        keys = self._sps_keys
        points: List[Tuple[SeriesKey, float, Value]] = []
        for instance_type, region, zone, score, time in rows:
            coords = (instance_type, region, zone)
            key = keys.get(coords)
            if key is None:
                key = SeriesKey(SPS_MEASURE, dimension_key(
                    {DIM_TYPE: instance_type, DIM_REGION: region,
                     DIM_ZONE: zone}))
                keys[coords] = key
            points.append((key, float(time), int(score)))
        return self._put_points(SPS_TABLE, points)

    def put_price_batch(self, rows: Sequence[Tuple[str, str, str, float, float]]
                        ) -> int:
        """Bulk :meth:`put_price`: rows of (type, region, zone, price, time)."""
        keys = self._price_keys
        points: List[Tuple[SeriesKey, float, Value]] = []
        for instance_type, region, zone, price, time in rows:
            coords = (instance_type, region, zone)
            key = keys.get(coords)
            if key is None:
                key = SeriesKey(PRICE_MEASURE, dimension_key(
                    {DIM_TYPE: instance_type, DIM_REGION: region,
                     DIM_ZONE: zone}))
                keys[coords] = key
            points.append((key, float(time), float(price)))
        return self._put_points(PRICE_TABLE, points)

    def put_advisor_batch(self,
                          rows: Sequence[Tuple[str, str, float, float, int,
                                               float]]) -> int:
        """Bulk :meth:`put_advisor`: rows of (type, region, ratio, if_score,
        savings, time); emits the same three records per row, in the same
        order."""
        keys = self._advisor_keys
        points: List[Tuple[SeriesKey, float, Value]] = []
        for instance_type, region, ratio, if_score, savings, time in rows:
            coords = (instance_type, region)
            triple = keys.get(coords)
            if triple is None:
                dims = dimension_key(
                    {DIM_TYPE: instance_type, DIM_REGION: region})
                triple = (SeriesKey(INTERRUPTION_RATIO_MEASURE, dims),
                          SeriesKey(IF_SCORE_MEASURE, dims),
                          SeriesKey(SAVINGS_MEASURE, dims))
                keys[coords] = triple
            stamp = float(time)
            points.append((triple[0], stamp, float(ratio)))
            points.append((triple[1], stamp, float(if_score)))
            points.append((triple[2], stamp, int(savings)))
        return self._put_points(ADVISOR_TABLE, points)

    def record_batch(self) -> "RecordBatch":
        """A fresh per-round buffer feeding the batch writers above."""
        return RecordBatch(self)

    def put_gap(self, source: str, key: str, reason: str,
                attempts: int, time: float) -> None:
        """Record an explicit collection hole.

        ``source`` is the data source ("sps" / "advisor" / "price"),
        ``key`` the logical query that failed, ``reason`` why collection
        gave up, ``attempts`` how many tries were spent.  An archived hole
        is the graceful-degradation contract: every planned query ends as
        either a dataset record or exactly one of these.
        """
        self._ensure_table(GAPS_TABLE)
        self._write(GAPS_TABLE, Record.make(
            {DIM_SOURCE: source, DIM_KEY: key, DIM_REASON: reason},
            GAP_MEASURE, int(attempts), time))

    # -- reads ------------------------------------------------------------------

    def sps_at(self, instance_type: str, region: str, zone: str,
               time: float) -> Optional[int]:
        value = self._value_at(SPS_TABLE, SPS_MEASURE, {
            DIM_TYPE: instance_type, DIM_REGION: region, DIM_ZONE: zone}, time)
        return None if value is None else int(value)

    def if_score_at(self, instance_type: str, region: str,
                    time: float) -> Optional[float]:
        value = self._value_at(ADVISOR_TABLE, IF_SCORE_MEASURE, {
            DIM_TYPE: instance_type, DIM_REGION: region}, time)
        return None if value is None else float(value)

    def savings_at(self, instance_type: str, region: str,
                   time: float) -> Optional[int]:
        value = self._value_at(ADVISOR_TABLE, SAVINGS_MEASURE, {
            DIM_TYPE: instance_type, DIM_REGION: region}, time)
        return None if value is None else int(value)

    def price_at(self, instance_type: str, region: str, zone: str,
                 time: float) -> Optional[float]:
        value = self._value_at(PRICE_TABLE, PRICE_MEASURE, {
            DIM_TYPE: instance_type, DIM_REGION: region, DIM_ZONE: zone}, time)
        return None if value is None else float(value)

    def gap_count(self) -> int:
        """Total gap records ever written (0 for a hole-free archive)."""
        table = self.gaps
        return 0 if table is None else table.stats.records_written

    def gap_history(self, filters: Optional[Dict[str, str]] = None,
                    start: float = float("-inf"),
                    end: float = float("inf")) -> List[Record]:
        """Gap change points in [start, end]; filter by Source/Key/Reason."""
        table = self.gaps
        if table is None:
            return []
        cache = self.query_cache(GAPS_TABLE)
        if cache is not None:
            return cache.scan(GAP_MEASURE, filters or {}, start, end)
        return table.scan(GAP_MEASURE, filters or {}, start, end)

    def history(self, table_name: str, measure: str,
                filters: Dict[str, str], start: float, end: float) -> List[Record]:
        """Change-point history of matching series in [start, end].

        Served through the table's generation-stamped read cache when
        caching is enabled; treat the returned list as immutable.  In
        lake mode the query federates across the retention boundary:
        rows the hot engine evicted are reconstructed from the cold
        tier, rows after the boundary come from the hot path unchanged.
        Cache coherence holds because an eviction that changes the hot
        table's contents bumps its generation (invalidating derived
        caches), while a boundary advance that evicts nothing leaves
        federated results bitwise unchanged (the cold reconstruction
        emits the identical rows the hot side stops serving).
        """
        hot = self._hot_history
        if self._federated is not None and table_name in MERGED_TABLES:
            boundary = self.evicted_through(table_name)
            return self._federated.query(
                measure, filters, start, end, boundary,
                hot_scan=lambda: hot(table_name, measure, filters,
                                     start, end))
        return hot(table_name, measure, filters, start, end)

    def _hot_history(self, table_name: str, measure: str,
                     filters: Dict[str, str], start: float,
                     end: float) -> List[Record]:
        cache = self.query_cache(table_name)
        if cache is not None:
            return cache.scan(measure, filters, start, end)
        return self.store.table(table_name).scan(measure, filters, start, end)

    def evicted_through(self, table_name: str) -> Optional[float]:
        """The table's hot/cold boundary, or None when nothing is evicted."""
        if self.engine is None:
            return None
        return self.engine.evicted_through(table_name)

    # -- analysis-facing bulk reads ------------------------------------------------

    def sps_matrix(self, sample_times: Sequence[float],
                   filters: Optional[Dict[str, str]] = None,
                   ) -> Tuple[List[SeriesKey], np.ndarray]:
        """Aligned SPS samples: one row per (type, region, zone) series."""
        return resample_matrix(self.sps, SPS_MEASURE, sample_times, filters)

    def if_score_matrix(self, sample_times: Sequence[float],
                        filters: Optional[Dict[str, str]] = None,
                        ) -> Tuple[List[SeriesKey], np.ndarray]:
        """Aligned interruption-free score samples per (type, region)."""
        return resample_matrix(self.advisor, IF_SCORE_MEASURE, sample_times, filters)

    def savings_matrix(self, sample_times: Sequence[float],
                       filters: Optional[Dict[str, str]] = None,
                       ) -> Tuple[List[SeriesKey], np.ndarray]:
        """Aligned savings-percent samples per (type, region)."""
        return resample_matrix(self.advisor, SAVINGS_MEASURE, sample_times, filters)

    def price_matrix(self, sample_times: Sequence[float],
                     filters: Optional[Dict[str, str]] = None,
                     ) -> Tuple[List[SeriesKey], np.ndarray]:
        """Aligned spot-price samples per (type, region, zone) series."""
        return resample_matrix(self.price, PRICE_MEASURE, sample_times, filters)

    def update_interval_samples(self, dataset: str) -> List[float]:
        """Elapsed seconds between value changes (Figure 10 input).

        ``dataset`` is one of "sps", "if_score", "price", "savings".
        """
        if dataset == "sps":
            return update_intervals(self.sps, SPS_MEASURE)
        if dataset == "if_score":
            return update_intervals(self.advisor, IF_SCORE_MEASURE)
        if dataset == "savings":
            return update_intervals(self.advisor, SAVINGS_MEASURE)
        if dataset == "price":
            return update_intervals(self.price, PRICE_MEASURE)
        raise ValueError(f"unknown dataset {dataset!r}")

    def stats(self) -> Dict[str, dict]:
        out = self.store.stats()
        out["analytics"] = self.analytics.stats()
        if self.lake is not None:
            out["lake"] = {
                **self.lake.census(),
                "differ": self._differ.stats(),
                "federated": self._federated.stats(),
                "rows_merged": self.rows_merged,
                "rows_ingested": self.rows_ingested,
            }
        return out


class RecordBatch:
    """One round's buffered rows, flushed through the archive's batch APIs.

    Collectors accumulate typed rows during a round and land them with a
    single :meth:`flush` -- one ``append_many`` per touched table, one
    group-committed WAL run per table, instead of one call per point.
    Row order within each kind is preserved, so flushing a batch is
    byte-identical to issuing the same ``put_*`` calls pointwise.
    """

    def __init__(self, archive: SpotLakeArchive):
        self.archive = archive
        self._sps: List[Tuple[str, str, str, int, float]] = []
        self._price: List[Tuple[str, str, str, float, float]] = []
        self._advisor: List[Tuple[str, str, float, float, int, float]] = []

    def add_sps(self, instance_type: str, region: str, zone: str,
                score: int, time: float) -> None:
        self._sps.append((instance_type, region, zone, score, time))

    def add_sps_rows(self,
                     rows: Sequence[Tuple[str, str, str, int, float]]) -> None:
        self._sps.extend(rows)

    def add_price(self, instance_type: str, region: str, zone: str,
                  price: float, time: float) -> None:
        self._price.append((instance_type, region, zone, price, time))

    def add_price_rows(self,
                       rows: Sequence[Tuple[str, str, str, float, float]]
                       ) -> None:
        self._price.extend(rows)

    def add_advisor(self, instance_type: str, region: str,
                    interruption_ratio: float, if_score: float,
                    savings_percent: int, time: float) -> None:
        self._advisor.append((instance_type, region, interruption_ratio,
                              if_score, savings_percent, time))

    def add_advisor_rows(self,
                         rows: Sequence[Tuple[str, str, float, float, int,
                                              float]]) -> None:
        self._advisor.extend(rows)

    def __len__(self) -> int:
        """Archive records this batch will write (advisor rows count 3)."""
        return len(self._sps) + len(self._price) + 3 * len(self._advisor)

    def flush(self) -> int:
        """Write every buffered row and empty the batch.

        Tables flush in a fixed order (sps, advisor, price) so the WAL
        sequence is independent of buffering order; returns the number of
        archive records written.  In lake mode the rows go to the round
        merger instead (the count then reflects rows captured for the
        merge; the diff decides at commit what the hot engine stores).
        """
        merger = self.archive._merger
        if merger is not None:
            captured = len(self)
            if self._sps:
                merger.add_sps_rows(self._sps)
                self._sps = []
            if self._advisor:
                merger.add_advisor_rows(self._advisor)
                self._advisor = []
            if self._price:
                merger.add_price_rows(self._price)
                self._price = []
            return captured
        written = 0
        if self._sps:
            written += self.archive.put_sps_batch(self._sps)
            self._sps = []
        if self._advisor:
            written += self.archive.put_advisor_batch(self._advisor)
            self._advisor = []
        if self._price:
            written += self.archive.put_price_batch(self._price)
            self._price = []
        return written
