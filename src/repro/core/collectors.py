"""Dataset collectors (paper Sections 3 and 4, Figure 2).

Three collectors feed the archive:

* :class:`SpsCollector` executes a bin-packed query plan against the SPS
  API, rotating across an account pool to stay inside the per-account
  50-unique-queries/24 h budget;
* :class:`AdvisorCollector` fetches the web-only advisor dataset through a
  SpotInfo-style scraper (:class:`SpotInfoScraper`), converting categorical
  buckets to the interruption-free score;
* :class:`PriceCollector` reads the current spot price per pool from the
  price-history API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cloudsim import (
    AccountPool,
    AdvisorEntry,
    QuotaExceededError,
    SimulatedCloud,
    make_query_key,
)
from ..scoring import score_from_bucket
from .archive import SpotLakeArchive
from .query_planner import QueryPlan, SpsQuery, plan_for_catalog


@dataclass
class CollectionReport:
    """What one collection round actually did."""

    queries_issued: int = 0
    queries_failed: int = 0
    records_written: int = 0
    accounts_used: int = 0

    def merge(self, other: "CollectionReport") -> "CollectionReport":
        return CollectionReport(
            self.queries_issued + other.queries_issued,
            self.queries_failed + other.queries_failed,
            self.records_written + other.records_written,
            max(self.accounts_used, other.accounts_used),
        )


class SpotInfoScraper:
    """Programmatic wrapper over the advisor's web-only dataset.

    Stands in for the SpotInfo CLI tool the paper uses: the advisor has no
    API, so SpotLake scrapes the website's JSON snapshot.
    """

    def __init__(self, cloud: SimulatedCloud):
        self._cloud = cloud

    def fetch(self) -> List[AdvisorEntry]:
        """The full advisor snapshot at the cloud's current time."""
        return self._cloud.advisor_web_snapshot()


class SpsCollector:
    """Collects placement scores per the packed query plan."""

    def __init__(self, cloud: SimulatedCloud, archive: SpotLakeArchive,
                 accounts: AccountPool, plan: Optional[QueryPlan] = None):
        self.cloud = cloud
        self.archive = archive
        self.accounts = accounts
        self.plan = plan or plan_for_catalog(cloud.catalog)

    def run_query(self, query: SpsQuery) -> CollectionReport:
        """Issue one planned query via whichever account has budget."""
        now = self.cloud.clock.now()
        key = make_query_key([query.instance_type], query.regions,
                             query.target_capacity,
                             query.single_availability_zone)
        report = CollectionReport(queries_issued=1)
        try:
            account = self.accounts.acquire(key, now)
        except QuotaExceededError:
            report.queries_failed = 1
            return report
        client = self.cloud.client(account)
        rows = client.get_spot_placement_scores(
            [query.instance_type], list(query.regions),
            target_capacity=query.target_capacity,
            single_availability_zone=query.single_availability_zone)
        for row in rows:
            zone = row["AvailabilityZoneId"]
            if zone is None:
                continue
            self.archive.put_sps(query.instance_type, row["Region"], zone,
                                 row["Score"], now)
            report.records_written += 1
        return report

    def collect(self) -> CollectionReport:
        """Run the full plan once (one collection round)."""
        total = CollectionReport()
        for query in self.plan.queries:
            result = self.run_query(query)
            total = total.merge(result)
        total.accounts_used = sum(
            1 for a in self.accounts.accounts
            if a.unique_queries_used(self.cloud.clock.now()) > 0)
        return total


class AdvisorCollector:
    """Collects the advisor dataset through the scraper."""

    def __init__(self, cloud: SimulatedCloud, archive: SpotLakeArchive,
                 scraper: Optional[SpotInfoScraper] = None):
        self.cloud = cloud
        self.archive = archive
        self.scraper = scraper or SpotInfoScraper(cloud)

    def collect(self) -> CollectionReport:
        now = self.cloud.clock.now()
        report = CollectionReport(queries_issued=1)
        for entry in self.scraper.fetch():
            # spotlint: disable=QUO001 -- the advisor is web-only (paper
            # Section 3.1): there is no API surface to route through; the
            # scraper's snapshot carries buckets, the raw ratio is archived
            ratio = self.cloud.advisor.interruption_ratio(
                entry.instance_type, entry.region, now)
            self.archive.put_advisor(
                entry.instance_type, entry.region, ratio,
                score_from_bucket(entry.interruption_bucket),
                entry.savings_percent, now)
            report.records_written += 3
        return report


class PriceCollector:
    """Records the current spot price of every offered pool."""

    def __init__(self, cloud: SimulatedCloud, archive: SpotLakeArchive,
                 pools: Optional[Sequence[Tuple[str, str, str]]] = None):
        self.cloud = cloud
        self.archive = archive
        self.pools = list(pools) if pools is not None else cloud.catalog.all_pools()

    def collect(self) -> CollectionReport:
        now = self.cloud.clock.now()
        report = CollectionReport(queries_issued=1)
        for itype, region, zone in self.pools:
            # spotlint: disable=QUO001 -- the price-history API is not
            # quota-limited (Section 2.1); the engine's current price equals
            # the newest describe_spot_price_history point
            price = self.cloud.pricing.spot_price(itype, region, now, zone)
            self.archive.put_price(itype, region, zone, price, now)
            report.records_written += 1
        return report
