"""Dataset collectors (paper Sections 3 and 4, Figure 2).

Three collectors feed the archive:

* :class:`SpsCollector` executes a bin-packed query plan against the SPS
  API, rotating across an account pool to stay inside the per-account
  50-unique-queries/24 h budget;
* :class:`AdvisorCollector` fetches the web-only advisor dataset through a
  SpotInfo-style scraper (:class:`SpotInfoScraper`), converting categorical
  buckets to the interruption-free score;
* :class:`PriceCollector` reads the current spot price per pool from the
  price-history API.

Each collector optionally runs behind a :class:`ResilientExecutor`
(retries, circuit breaker); a call that exhausts its budget degrades to
an explicit gap record instead of crashing the round, so the archive
never holes silently (the failure mode of the paper's Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cloudsim import (
    AccountPool,
    AdvisorEntry,
    CredentialExpiredError,
    QuotaExceededError,
    SimulatedCloud,
    make_query_key,
)
from ..scoring import score_from_bucket
from .archive import SpotLakeArchive
from .query_planner import QueryPlan, SpsQuery, plan_for_catalog
from .resilience import CallOutcome, ResilientExecutor


@dataclass
class CollectionReport:
    """What one collection round actually did.

    In tiered-lake mode ``records_written`` counts the records captured
    into the round merger (the collector's whole output); how many of
    them the diff actually ingests into the hot engine is decided at the
    round commit and reported by the archive's lake stats.
    """

    queries_issued: int = 0
    queries_failed: int = 0
    records_written: int = 0
    accounts_used: int = 0
    #: transient-fault retries spent (a retried-then-successful query
    #: counts here, never in queries_failed)
    retries: int = 0
    #: explicit gap records written; every failed query produces exactly
    #: one, so queries_failed == gaps whenever resilience is on
    gaps: int = 0
    #: circuit-breaker close->open transitions triggered this round
    breaker_trips: int = 0

    def merge(self, other: "CollectionReport") -> "CollectionReport":
        """Fold two partial reports into one.

        ``accounts_used`` is *not* additive: two shards running on disjoint
        accounts would double-count under ``+``, and ``max`` undercounts
        them.  Neither merge rule can be exact from partial counts alone,
        so collectors keep shard sub-reports **sum-free by construction**
        (``accounts_used == 0``) and stamp the true value once at round
        end, from the pool itself (``max`` then just propagates the single
        authoritative stamp unchanged).
        """
        return CollectionReport(
            self.queries_issued + other.queries_issued,
            self.queries_failed + other.queries_failed,
            self.records_written + other.records_written,
            max(self.accounts_used, other.accounts_used),
            self.retries + other.retries,
            self.gaps + other.gaps,
            self.breaker_trips + other.breaker_trips,
        )

    def apply_outcome(self, outcome: CallOutcome) -> None:
        """Fold one resilient call's accounting into this report."""
        self.retries += outcome.retries
        if outcome.breaker_tripped:
            self.breaker_trips += 1
        if not outcome.ok:
            self.queries_failed += 1
            self.gaps += 1


class SpotInfoScraper:
    """Programmatic wrapper over the advisor's web-only dataset.

    Stands in for the SpotInfo CLI tool the paper uses: the advisor has no
    API, so SpotLake scrapes the website's JSON snapshot.
    """

    def __init__(self, cloud: SimulatedCloud):
        self._cloud = cloud

    def fetch(self) -> List[AdvisorEntry]:
        """The full advisor snapshot at the cloud's current time."""
        return self._cloud.advisor_web_snapshot()


class SpsCollector:
    """Collects placement scores per the packed query plan."""

    def __init__(self, cloud: SimulatedCloud, archive: SpotLakeArchive,
                 accounts: AccountPool, plan: Optional[QueryPlan] = None,
                 resilience: Optional[ResilientExecutor] = None,
                 engine: Optional["object"] = None):
        self.cloud = cloud
        self.archive = archive
        self.accounts = accounts
        self.plan = plan or plan_for_catalog(cloud.catalog)
        self.resilience = resilience
        #: optional ParallelCollectionEngine; when set, ``collect`` routes
        #: the round through its sharded deferred-materialization path
        self.engine = engine

    @staticmethod
    def query_fingerprint(query: SpsQuery) -> str:
        """Stable human-readable identity of a planned query (gap key)."""
        return (f"{query.instance_type}@{'+'.join(query.regions)}"
                f"/cap={query.target_capacity}")

    def _attempt(self, query: SpsQuery):
        """One try of one planned query: acquire an account, call the API.

        Re-acquires on every try, so a retry may land on a different
        account; an expired token is refreshed before the error surfaces
        to the retry loop (re-auth is cheap, the retry backoff models it).
        """
        key = make_query_key([query.instance_type], query.regions,
                             query.target_capacity,
                             query.single_availability_zone)
        account = self.accounts.acquire(key, self.cloud.clock.now())
        client = self.cloud.client(account)
        try:
            return client.get_spot_placement_scores(
                [query.instance_type], list(query.regions),
                target_capacity=query.target_capacity,
                single_availability_zone=query.single_availability_zone)
        except CredentialExpiredError:
            account.refresh_credentials()
            raise

    def attempt_deferred(self, query: SpsQuery):
        """One try of one planned query via the deferred SPS entry point.

        Identical account/credential/fault/quota behavior to
        :meth:`_attempt` -- the full admission gauntlet runs here, on the
        caller's (serial) thread -- but the score computation is deferred:
        the returned :class:`~repro.cloudsim.ec2_api.DeferredScoreCall` is
        pure and can be materialized on any worker thread.
        """
        key = make_query_key([query.instance_type], query.regions,
                             query.target_capacity,
                             query.single_availability_zone)
        account = self.accounts.acquire(key, self.cloud.clock.now())
        client = self.cloud.client(account)
        try:
            return client.get_spot_placement_scores_deferred(
                [query.instance_type], list(query.regions),
                target_capacity=query.target_capacity,
                single_availability_zone=query.single_availability_zone)
        except CredentialExpiredError:
            account.refresh_credentials()
            raise

    def run_query(self, query: SpsQuery) -> CollectionReport:
        """Issue one planned query; a terminal failure archives a gap.

        The query is *issued* exactly once however many attempts it takes,
        and it is *failed* only when it ends as a gap -- a query that
        exhausts one account's quota but succeeds on another (or succeeds
        on a retry) contributes zero to ``queries_failed``.
        """
        report = CollectionReport(queries_issued=1)
        if self.resilience is None:
            try:
                rows = self._attempt(query)
            except QuotaExceededError:
                report.queries_failed = 1
                return report
        else:
            outcome = self.resilience.call(
                (self.query_fingerprint(query),), lambda: self._attempt(query))
            report.apply_outcome(outcome)
            if not outcome.ok:
                self.archive.put_gap(
                    "sps", self.query_fingerprint(query), outcome.gap_reason,
                    outcome.attempts, self.cloud.clock.now())
                return report
            rows = outcome.value
        now = self.cloud.clock.now()
        for row in rows:
            zone = row["AvailabilityZoneId"]
            if zone is None:
                continue
            self.archive.put_sps(query.instance_type, row["Region"], zone,
                                 row["Score"], now)
            report.records_written += 1
        return report

    def accounts_used_now(self) -> int:
        """Accounts with in-window charges -- the round-end authoritative
        ``accounts_used`` stamp (see :meth:`CollectionReport.merge`)."""
        return sum(
            1 for a in self.accounts.accounts
            if a.unique_queries_used(self.cloud.clock.now()) > 0)

    def collect(self) -> CollectionReport:
        """Run the full plan once (one collection round)."""
        if self.engine is not None:
            return self.engine.run_sps_round(self)
        if self.resilience is not None:
            self.resilience.start_round()
        total = CollectionReport()
        for query in self.plan.queries:
            result = self.run_query(query)
            total = total.merge(result)
        total.accounts_used = self.accounts_used_now()
        return total


class AdvisorCollector:
    """Collects the advisor dataset through the scraper."""

    def __init__(self, cloud: SimulatedCloud, archive: SpotLakeArchive,
                 scraper: Optional[SpotInfoScraper] = None,
                 resilience: Optional[ResilientExecutor] = None):
        self.cloud = cloud
        self.archive = archive
        self.scraper = scraper or SpotInfoScraper(cloud)
        self.resilience = resilience

    def collect(self) -> CollectionReport:
        report = CollectionReport(queries_issued=1)
        if self.resilience is None:
            entries = self.scraper.fetch()
        else:
            self.resilience.start_round()
            outcome = self.resilience.call(("snapshot",), self.scraper.fetch)
            report.apply_outcome(outcome)
            if not outcome.ok:
                self.archive.put_gap("advisor", "snapshot",
                                     outcome.gap_reason, outcome.attempts,
                                     self.cloud.clock.now())
                return report
            entries = outcome.value
        now = self.cloud.clock.now()
        batch = self.archive.record_batch()
        for entry in entries:
            # spotlint: disable=QUO001 -- the advisor is web-only (paper
            # Section 3.1): there is no API surface to route through; the
            # scraper's snapshot carries buckets, the raw ratio is archived
            ratio = self.cloud.advisor.interruption_ratio(
                entry.instance_type, entry.region, now)
            batch.add_advisor(entry.instance_type, entry.region, ratio,
                              score_from_bucket(entry.interruption_bucket),
                              entry.savings_percent, now)
        report.records_written += batch.flush()
        return report


class PriceCollector:
    """Records the current spot price of every offered pool."""

    def __init__(self, cloud: SimulatedCloud, archive: SpotLakeArchive,
                 pools: Optional[Sequence[Tuple[str, str, str]]] = None,
                 resilience: Optional[ResilientExecutor] = None):
        self.cloud = cloud
        self.archive = archive
        self.pools = list(pools) if pools is not None else cloud.catalog.all_pools()
        self.resilience = resilience

    def _sweep(self) -> List[Tuple[str, str, str, float, float]]:
        """One price sweep: a single describe-history-style fetch.

        The row timestamp MUST be read *after* the fault hook and *inside*
        this function: the resilient retry loop re-invokes ``_sweep`` after
        advancing the clock past the backoff, so a retried sweep stamps its
        rows with the post-backoff time.  Hoisting ``now`` out of the call
        (or reading it before ``maybe_fault``) would archive pre-fault
        timestamps on retry -- the chaos regression test
        ``tests/chaos/test_price_timestamps.py`` pins this ordering.
        """
        self.cloud.maybe_fault("price")
        now = self.cloud.clock.now()
        rows = []
        for itype, region, zone in self.pools:
            # spotlint: disable=QUO001 -- the price-history API is not
            # quota-limited (Section 2.1); the engine's current price equals
            # the newest describe_spot_price_history point
            price = self.cloud.pricing.spot_price(itype, region, now, zone)
            rows.append((itype, region, zone, price, now))
        return rows

    def collect(self) -> CollectionReport:
        report = CollectionReport(queries_issued=1)
        if self.resilience is None:
            rows = self._sweep()
        else:
            self.resilience.start_round()
            outcome = self.resilience.call(("sweep",), self._sweep)
            report.apply_outcome(outcome)
            if not outcome.ok:
                self.archive.put_gap("price", "sweep", outcome.gap_reason,
                                     outcome.attempts,
                                     self.cloud.clock.now())
                return report
            rows = outcome.value
        batch = self.archive.record_batch()
        batch.add_price_rows(rows)
        report.records_written += batch.flush()
        return report
