"""Concurrent serving front end: admission control over the API gateway.

The real SpotLake exposes its archive through API Gateway, which
multiplexes many tenants onto the Lambda fleet and throttles them with
per-key usage plans.  This module reproduces that front half (ROADMAP
item 1): a :class:`ServingFrontend` owns a worker pool that drains a
bounded admission queue into the single-dispatch
:class:`~.serving.ApiGateway`, with three admission gates in front of it:

1. **authentication** -- requests carry an API key; unknown keys are
   401s and never touch a handler;
2. **per-tenant throttling** -- a deterministic token bucket (rate +
   burst) and an optional rolling-window quota per tenant, mirroring the
   collector-side :class:`~repro.cloudsim.accounts.AccountPool`
   discipline on the read side.  Rejections are 429s carrying a
   ``retry_after`` hint;
3. **load shedding** -- when the admission queue is full the frontend
   flips to a SHEDDING state and answers 503 until the shed cool-down
   elapses *and* the queue has drained below the resume depth.  503s
   carry a ``retry_after`` of at least the remaining shed window, raised
   to the collection-side circuit-breaker cool-down when a data source
   is known to be recovering.

Every outcome -- 200/400/404/500 from the gateway, 401/429/503 from
admission -- is counted in the shared
:class:`~.metrics.MetricsRegistry`, per route and per tenant.

Determinism contract
--------------------

Admission is keyed on a caller-supplied virtual ``arrival_time``, never
a wall clock (spotlint DET001 holds for this module).  Token buckets and
quotas are per tenant and serialized on the tenant's own lock, so a
tenant's admit/reject sequence is a pure fold over that tenant's
``(arrival_time, cost)`` sequence -- independent of worker count and of
how other tenants' requests interleave.  Queue-occupancy shedding is the
one gate outside this envelope (it depends on drain speed); tests pin it
by filling the queue before :meth:`ServingFrontend.start`.

Thread-safety: the queue, the shed state machine, and the frontend
counters serialize on ``_admission_lock``; per-tenant throttle state on
the tenant's lock; everything downstream (cache, tables, metrics) on the
locks audited in their own modules.  The suite under ``tests/serving/``
runs with ``SPOTCONC_SANITIZE=1`` to keep that claim honest.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .serving import ApiGateway, Response

#: Admission states of the front end.
ACCEPTING = "accepting"
SHEDDING = "shedding"

#: Default worker threads draining the admission queue.
DEFAULT_WORKERS = 4

#: Default bound on queued-but-not-yet-dispatched requests.
DEFAULT_QUEUE_DEPTH = 64

#: Default virtual-seconds a shed frontend refuses new work.
DEFAULT_SHED_COOLDOWN = 5.0


class TokenBucket:
    """Deterministic token bucket over virtual time.

    ``tokens = min(burst, tokens + (now - last) * rate)`` on every
    admission attempt; a request costing more than the balance is
    rejected with the exact virtual-seconds deficit as its retry hint.
    State depends only on the sequence of ``(now, cost)`` arguments.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last: Optional[float] = None
        self._lock = threading.Lock()

    def admit(self, now: float, cost: float = 1.0) -> Tuple[bool, float]:
        """Try to take ``cost`` tokens at virtual time ``now``.

        Returns ``(admitted, retry_after)``; ``retry_after`` is 0.0 on
        admission, else the virtual-seconds until the deficit refills.
        """
        with self._lock:
            if self.last is not None:
                elapsed = max(0.0, now - self.last)
                self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last = now
            if self.tokens >= cost:
                self.tokens -= cost
                return True, 0.0
            return False, (cost - self.tokens) / self.rate

    def refund(self, cost: float = 1.0) -> None:
        """Return tokens taken by an admission a later gate vetoed."""
        with self._lock:
            self.tokens = min(self.burst, self.tokens + cost)


class RollingQuota:
    """Rolling-window request quota (at most ``limit`` per ``window``).

    The same shape as the account-side
    :class:`~repro.cloudsim.accounts.Account` call window: a deque of
    admission times, expired from the front as the window slides.
    """

    def __init__(self, limit: int, window: float):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        if window <= 0:
            raise ValueError("window must be positive")
        self.limit = limit
        self.window = window
        self._times: Deque[float] = deque()
        self._lock = threading.Lock()

    def admit(self, now: float) -> Tuple[bool, float]:
        """Try to charge one request at virtual time ``now``."""
        with self._lock:
            while self._times and now - self._times[0] >= self.window:
                self._times.popleft()
            if len(self._times) < self.limit:
                self._times.append(now)
                return True, 0.0
            return False, self.window - (now - self._times[0])

    def used(self) -> int:
        with self._lock:
            return len(self._times)


class Tenant:
    """One API key's identity and throttle state."""

    def __init__(self, name: str, api_key: Optional[str] = None,
                 rate: float = 100.0, burst: float = 20.0,
                 quota_limit: Optional[int] = None,
                 quota_window: float = 60.0):
        self.name = name
        self.api_key = api_key if api_key is not None else f"key-{name}"
        self.bucket = TokenBucket(rate, burst)
        self.quota = (RollingQuota(quota_limit, quota_window)
                      if quota_limit is not None else None)
        self.lock = threading.Lock()
        self.admitted = 0
        self.rejected = 0

    def admit(self, now: float) -> Tuple[bool, float]:
        """One admission decision at virtual time ``now``.

        Serialized on the tenant's lock, so the decision sequence is a
        pure fold over this tenant's arrival sequence regardless of how
        other tenants' requests interleave.  A request must pass *both*
        the token bucket and the quota; a bucket grant vetoed by the
        quota is refunded so the bucket, too, stays a function of the
        admitted sequence.
        """
        with self.lock:
            ok, retry_after = self.bucket.admit(now)
            if not ok:
                self.rejected += 1
                return False, retry_after
            if self.quota is not None:
                ok, retry_after = self.quota.admit(now)
                if not ok:
                    self.bucket.refund()
                    self.rejected += 1
                    return False, retry_after
            self.admitted += 1
            return True, 0.0


class FrontendTicket:
    """A submitted request's handle; resolved with a :class:`Response`."""

    def __init__(self, path: str, params: Dict[str, str]):
        self.path = path
        self.params = params
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._response: Optional[Response] = None

    def resolve(self, response: Response) -> None:
        with self._lock:
            self._response = response
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Response:
        """Block until resolved; raises ``TimeoutError`` on expiry."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"request {self.path!r} not served "
                               f"within {timeout}s")
        with self._lock:
            assert self._response is not None
            return self._response


@dataclass
class FrontendStats:
    """Admission-outcome counters (server totals live in the registry)."""

    submitted: int = 0
    accepted: int = 0
    served: int = 0
    unauthorized: int = 0
    rate_limited: int = 0
    shed: int = 0
    #: ACCEPTING -> SHEDDING transitions (overload episodes, not 503s)
    shed_events: int = 0
    resumed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "served": self.served,
            "unauthorized": self.unauthorized,
            "rate_limited": self.rate_limited,
            "shed": self.shed,
            "shed_events": self.shed_events,
            "resumed": self.resumed,
        }


class ServingFrontend:
    """Threaded admission-controlled request front end over the gateway.

    ``breaker_cooldown`` is an optional zero-argument callable returning
    the collection side's remaining breaker cool-down in seconds; 503
    ``retry_after`` hints are raised to it so shed clients back off at
    least as long as a degraded data source needs.

    Requests may be submitted before :meth:`start`; they queue up and
    are served once workers exist.  Tests use this to drive the shed
    state machine deterministically.
    """

    def __init__(self, gateway: ApiGateway,
                 tenants: Tuple[Tenant, ...] = (),
                 workers: int = DEFAULT_WORKERS,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 resume_depth: Optional[int] = None,
                 shed_cooldown: float = DEFAULT_SHED_COOLDOWN,
                 breaker_cooldown: Optional[Callable[[], float]] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.gateway = gateway
        self.workers = workers
        self.queue_depth = queue_depth
        self.resume_depth = (queue_depth // 2 if resume_depth is None
                             else resume_depth)
        self.shed_cooldown = shed_cooldown
        self._breaker_cooldown = breaker_cooldown
        self._tenants: Dict[str, Tenant] = {}
        for tenant in tenants:
            self.add_tenant(tenant)
        self._known_routes = frozenset(gateway.routes())
        # queue + shed state machine + counters all serialize on this
        # condition (its name keeps the guard visible to spotconc)
        self._admission_lock = threading.Condition()
        self._queue: Deque[Tuple[FrontendTicket, Tenant, str]] = deque()
        self._state = ACCEPTING
        self._shed_until = 0.0
        self._stopping = False
        self._pool: Optional[ThreadPoolExecutor] = None
        self.stats = FrontendStats()

    @property
    def metrics(self) -> MetricsRegistry:
        return self.gateway.metrics

    # -- tenancy -----------------------------------------------------------

    def add_tenant(self, tenant: Tenant) -> Tenant:
        if tenant.api_key in self._tenants:
            raise ValueError(f"duplicate api key {tenant.api_key!r}")
        self._tenants[tenant.api_key] = tenant
        return tenant

    def tenants(self) -> List[Tenant]:
        return sorted(self._tenants.values(), key=lambda t: t.name)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServingFrontend":
        """Spin up the worker pool (idempotent)."""
        if self._pool is not None:
            return self
        with self._admission_lock:
            self._stopping = False
        pool = ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="serve")
        for _ in range(self.workers):
            pool.submit(self._worker_loop)
        with self._admission_lock:
            self._pool = pool
        return self

    def stop(self) -> None:
        """Drain the queue, then stop the workers (idempotent)."""
        with self._admission_lock:
            pool = self._pool
            self._pool = None
            self._stopping = True
            self._admission_lock.notify_all()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- request intake ----------------------------------------------------

    def submit(self, api_key: str, path: str,
               params: Optional[Dict[str, str]] = None,
               arrival_time: float = 0.0) -> FrontendTicket:
        """Run one request through the admission gates.

        Returns a ticket that is already resolved for rejections
        (401/429/503) and resolves asynchronously once a worker serves
        an admitted request.  ``arrival_time`` is the request's virtual
        timestamp; it drives every throttle decision (see the module
        docstring's determinism contract).
        """
        ticket = FrontendTicket(path, dict(params or {}))
        route = path if path in self._known_routes else "<unknown>"
        with self._admission_lock:
            self.stats.submitted += 1
        tenant = self._tenants.get(api_key)
        if tenant is None:
            with self._admission_lock:
                self.stats.unauthorized += 1
            return self._reject(ticket, route, None, 401,
                                {"error": "unknown or missing api key"})
        admitted, retry_after = tenant.admit(arrival_time)
        if not admitted:
            with self._admission_lock:
                self.stats.rate_limited += 1
            return self._reject(
                ticket, route, tenant.name, 429,
                {"error": f"tenant {tenant.name!r} rate limited",
                 "retry_after": retry_after})
        with self._admission_lock:
            self._maybe_resume(arrival_time)
            if self._state == SHEDDING or len(self._queue) >= self.queue_depth:
                if self._state != SHEDDING:
                    self._state = SHEDDING
                    self._shed_until = arrival_time + self.shed_cooldown
                    self.stats.shed_events += 1
                self.stats.shed += 1
                retry_after = self._shed_until - arrival_time
                if self._breaker_cooldown is not None:
                    retry_after = max(retry_after, self._breaker_cooldown())
                overloaded = True
            else:
                self._queue.append((ticket, tenant, route))
                self.stats.accepted += 1
                self._admission_lock.notify()
                overloaded = False
        if overloaded:
            return self._reject(
                ticket, route, tenant.name, 503,
                {"error": "overloaded, shedding load",
                 "retry_after": retry_after})
        return ticket

    def request(self, api_key: str, path: str,
                params: Optional[Dict[str, str]] = None,
                arrival_time: float = 0.0,
                timeout: Optional[float] = 30.0) -> Response:
        """Synchronous submit + wait."""
        return self.submit(api_key, path, params, arrival_time).result(timeout)

    def _reject(self, ticket: FrontendTicket, route: str,
                tenant_name: Optional[str], status: int,
                body: dict) -> FrontendTicket:
        self.metrics.observe_rejection(route, status, tenant=tenant_name)
        ticket.resolve(Response(status, body))
        return ticket

    def _maybe_resume(self, now: float) -> None:
        """Leave SHEDDING once cooled down *and* drained.

        Callers already hold ``_admission_lock``; the re-entry here is
        free (the condition wraps an RLock) and keeps the state-machine
        write visibly guarded on its own.
        """
        with self._admission_lock:
            if self._state == SHEDDING and now >= self._shed_until \
                    and len(self._queue) <= self.resume_depth:
                self._state = ACCEPTING
                self.stats.resumed += 1

    # -- the worker side ---------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._admission_lock:
                while not self._queue and not self._stopping:
                    self._admission_lock.wait()
                if not self._queue and self._stopping:
                    return
                ticket, tenant, _route = self._queue.popleft()
            response = self.gateway.get(ticket.path, ticket.params,
                                        tenant=tenant.name)
            ticket.resolve(response)
            with self._admission_lock:
                self.stats.served += 1

    # -- observability -----------------------------------------------------

    def snapshot(self) -> dict:
        """Admission-state payload (folded into serving stats)."""
        with self._admission_lock:
            state = self._state
            depth = len(self._queue)
            counters = self.stats.as_dict()
        return {
            "state": state,
            "queue_depth": depth,
            "queue_limit": self.queue_depth,
            "workers": self.workers,
            "counters": counters,
            "tenants": {t.name: {"admitted": t.admitted,
                                 "rejected": t.rejected}
                        for t in self.tenants()},
        }
