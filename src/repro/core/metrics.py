"""Serving observability: per-route counters and latency percentiles.

The real SpotLake fronts its archive with API Gateway + Lambda, where
CloudWatch supplies request counts and latency distributions for free.
This module is the reproduction's stand-in: the :class:`ApiGateway` feeds
every dispatched request into a :class:`MetricsRegistry`, and the
``/metrics`` route (plus ``repro serve-bench``) surfaces the snapshot.

Determinism note: latency is measured with an *injectable* timer.  The
default is ``time.perf_counter`` -- a host clock -- which is fine here
because latency samples are observability-only: they never reach the
archive, a response body other than ``/metrics``, or any byte-compared
artifact.  Tests inject a fake timer to make percentile math exact.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Percentiles reported for every route's latency distribution.
LATENCY_PERCENTILES = (50, 95, 99)

#: Per-route cap on retained latency samples; beyond it the reservoir
#: keeps every k-th sample so long benchmarks stay O(1) per request.
MAX_SAMPLES = 4096


def percentile(sorted_samples: List[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(1, math.ceil(pct / 100.0 * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


@dataclass
class RouteMetrics:
    """Counters and latency samples for one route."""

    requests: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)
    server_errors: int = 0
    rows_served: int = 0
    total_latency_ms: float = 0.0
    max_latency_ms: float = 0.0
    #: ascending latency samples (decimated past MAX_SAMPLES)
    samples_ms: List[float] = field(default_factory=list)
    _sample_stride: int = 1
    _sample_clock: int = 0
    # serving workers share route objects; counter updates take this
    # (the registry nests it inside its own lock, always in that order)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def observe(self, status: int, rows: int, latency_ms: float,
                sample: bool = True) -> None:
        with self._lock:
            self.requests += 1
            bucket = str(status)
            self.by_status[bucket] = self.by_status.get(bucket, 0) + 1
            if status >= 500:
                self.server_errors += 1
            self.rows_served += rows
            if not sample:
                # admission rejections are counted but contribute no
                # latency sample: the percentiles keep describing served
                # requests
                return
            self.total_latency_ms += latency_ms
            self.max_latency_ms = max(self.max_latency_ms, latency_ms)
            self._sample_clock += 1
            if self._sample_clock % self._sample_stride:
                return
            insort(self.samples_ms, latency_ms)
            if len(self.samples_ms) >= MAX_SAMPLES:
                # halve the reservoir, double the stride: bounded memory
                # with an unbiased-enough tail for p50/p95/p99 reporting
                self.samples_ms = self.samples_ms[::2]
                self._sample_stride *= 2

    def snapshot(self) -> dict:
        latency = {f"p{p}_ms": percentile(self.samples_ms, p)
                   for p in LATENCY_PERCENTILES}
        latency["max_ms"] = self.max_latency_ms
        latency["mean_ms"] = (self.total_latency_ms / self.requests
                              if self.requests else 0.0)
        return {
            "requests": self.requests,
            "by_status": dict(sorted(self.by_status.items())),
            "server_errors": self.server_errors,
            "rows_served": self.rows_served,
            "latency": latency,
        }


@dataclass
class TenantMetrics:
    """Admission + serving outcome counters for one tenant.

    The front end's per-tenant fairness and throttling SLOs read these:
    ``rate_limited`` counts 429s (token bucket or quota), ``shed``
    counts 503s (admission queue overflow / shedding state).
    """

    requests: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)
    rate_limited: int = 0
    shed: int = 0
    rows_served: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def observe(self, status: int, rows: int) -> None:
        with self._lock:
            self.requests += 1
            bucket = str(status)
            self.by_status[bucket] = self.by_status.get(bucket, 0) + 1
            if status == 429:
                self.rate_limited += 1
            elif status == 503:
                self.shed += 1
            self.rows_served += rows

    @property
    def succeeded(self) -> int:
        return self.by_status.get("200", 0)

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "by_status": dict(sorted(self.by_status.items())),
            "rate_limited": self.rate_limited,
            "shed": self.shed,
            "succeeded": self.succeeded,
            "rows_served": self.rows_served,
        }


class MetricsRegistry:
    """Aggregates request metrics across routes.

    ``timer`` is any zero-argument monotonic-seconds callable; the
    default reads the host performance counter (see module docstring).
    """

    def __init__(self, timer: Optional[Callable[[], float]] = None):
        self._timer = timer if timer is not None else time.perf_counter
        self._routes: Dict[str, RouteMetrics] = {}
        self._tenants: Dict[str, TenantMetrics] = {}
        # the registry is shared across serving threads (ROADMAP item 1)
        self._lock = threading.Lock()

    def clock(self) -> float:
        """Current timer reading, in seconds."""
        return self._timer()

    def route(self, route: str) -> RouteMetrics:
        with self._lock:
            metrics = self._routes.get(route)
            if metrics is None:
                metrics = self._routes[route] = RouteMetrics()
            return metrics

    def tenant(self, tenant: str) -> TenantMetrics:
        with self._lock:
            metrics = self._tenants.get(tenant)
            if metrics is None:
                metrics = self._tenants[tenant] = TenantMetrics()
            return metrics

    def observe(self, route: str, status: int, rows: int,
                latency_seconds: float,
                tenant: Optional[str] = None) -> None:
        """Record one dispatched request (optionally tenant-attributed)."""
        metrics = self.route(route)
        per_tenant = self.tenant(tenant) if tenant is not None else None
        with self._lock:
            metrics.observe(status, rows, latency_seconds * 1000.0)
            if per_tenant is not None:
                per_tenant.observe(status, rows)

    def observe_rejection(self, route: str, status: int,
                          tenant: Optional[str] = None) -> None:
        """Record an admission rejection (429/503) that never reached a
        handler.  Counted per route and per tenant, but contributes no
        latency sample -- the percentiles describe served requests."""
        metrics = self.route(route)
        per_tenant = self.tenant(tenant) if tenant is not None else None
        with self._lock:
            metrics.observe(status, 0, 0.0, sample=False)
            if per_tenant is not None:
                per_tenant.observe(status, 0)

    def reset(self) -> None:
        with self._lock:
            self._routes.clear()
            self._tenants.clear()

    def snapshot(self) -> dict:
        """JSON-able metrics payload (the ``/metrics`` body core)."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict:
        routes = {route: metrics.snapshot()
                  for route, metrics in sorted(self._routes.items())}
        tenants = {tenant: metrics.snapshot()
                   for tenant, metrics in sorted(self._tenants.items())}
        return {
            "routes": routes,
            "tenants": tenants,
            "totals": {
                "requests": sum(m.requests for m in self._routes.values()),
                "server_errors": sum(m.server_errors
                                     for m in self._routes.values()),
                "rows_served": sum(m.rows_served
                                   for m in self._routes.values()),
                "rate_limited": sum(m.by_status.get("429", 0)
                                    for m in self._routes.values()),
                "shed": sum(m.by_status.get("503", 0)
                            for m in self._routes.values()),
            },
        }
