"""Parallel collection engine: sharded SPS execution with ordered merge.

The packed SPS plan (~2,200 queries per round) is embarrassingly parallel
in its *score arithmetic* but strictly ordered in its *control effects*:
account acquisition, quota charges, fault draws and retry backoffs must
happen in canonical plan order or determinism (and quota parity with the
serial collector) is lost.  The engine therefore splits every round into
three phases:

1. **Admission (serial).**  Walk the plan in order on the calling thread,
   running each query's full control gauntlet -- account acquire,
   credential check, fault hook, quota charge, resilient retries, gap
   archival -- through the *deferred* SPS entry point
   (:meth:`~repro.cloudsim.ec2_api.Ec2Client.get_spot_placement_scores_deferred`),
   which performs admission but returns a pure, unevaluated
   :class:`~repro.cloudsim.ec2_api.DeferredScoreCall` instead of rows.
   The admission timestamp is recorded per query.

2. **Materialization (parallel).**  Shard the admitted queries into
   contiguous runs and evaluate ``rows_at(t)`` on a
   :class:`~concurrent.futures.ThreadPoolExecutor`.  Evaluation touches no
   shared simulation state (scores are a pure function of the compiled
   query and the timestamp), so workers race nothing.

3. **Merge + batched write (serial).**  Concatenate the per-shard row
   buffers in shard order -- which *is* plan order, shards are contiguous
   -- and hand the archive a single :meth:`put_sps_batch`.

Because phase 1 is byte-for-byte the serial collector's control sequence
and phases 2-3 are pure and order-preserving, the archive bytes, gap
records, fault schedule, and per-account quota counts are identical for
every worker count (``--workers 1`` included) -- the property the
``doublerun --workers-sweep`` harness and ``tests/core/test_parallel.py``
pin down.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..cloudsim import QuotaExceededError
from .collectors import CollectionReport, SpsCollector

#: A materialized archive row: (type, region, zone, score, time).
SpsRow = Tuple[str, str, str, int, float]

#: One admitted query awaiting materialization: (query, deferred call,
#: admission timestamp).
_Admitted = Tuple[object, object, float]


def shard_ranges(count: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into at most ``shards`` contiguous spans.

    Spans are non-empty, cover every index exactly once, and appear in
    order -- concatenating per-span results reproduces the unsharded
    sequence.  Sizes differ by at most one.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, count)
    if shards == 0:
        return []
    base, extra = divmod(count, shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class ParallelCollectionEngine:
    """Executes SPS collection rounds with sharded materialization.

    ``workers=1`` runs the materialization inline (no executor, no
    threads) and is the reference the parallel paths must byte-match.
    The engine is reusable across rounds and services; ``close()`` (or the
    context manager) releases the thread pool.
    """

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor: Optional[ThreadPoolExecutor] = None
        #: rounds executed through this engine (introspection/bench)
        self.rounds = 0

    # -- lifecycle -----------------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="collect")
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelCollectionEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- round execution -----------------------------------------------------

    def run_sps_round(self, collector: SpsCollector) -> CollectionReport:
        """One collection round; drop-in for ``SpsCollector.collect``.

        The archive's record batch is the row sink either way: in tiered-
        lake mode its flush captures the rows into the round merger (the
        commit lands them cold and ingests only the diff); otherwise it
        writes the hot engine directly.  Materialization stays on the
        workers in both modes.
        """
        admitted, report = self._admit(collector)
        batch = collector.archive.record_batch()
        batch.add_sps_rows(self._materialize(admitted))
        report.records_written += batch.flush()
        report.accounts_used = collector.accounts_used_now()
        self.rounds += 1
        return report

    def _admit(self, collector: SpsCollector
               ) -> Tuple[List[_Admitted], CollectionReport]:
        """Phase 1: the serial control pass, in canonical plan order.

        Replicates ``SpsCollector.run_query``'s control flow exactly --
        same resilience keys, same gap records, same clock reads -- with
        the score computation deferred.
        """
        clock = collector.cloud.clock
        resilience = collector.resilience
        if resilience is not None:
            resilience.start_round()
        report = CollectionReport()
        admitted: List[_Admitted] = []
        for query in collector.plan.queries:
            report.queries_issued += 1
            if resilience is None:
                try:
                    deferred = collector.attempt_deferred(query)
                except QuotaExceededError:
                    report.queries_failed += 1
                    continue
            else:
                outcome = resilience.call(
                    (collector.query_fingerprint(query),),
                    lambda q=query: collector.attempt_deferred(q))
                report.apply_outcome(outcome)
                if not outcome.ok:
                    collector.archive.put_gap(
                        "sps", collector.query_fingerprint(query),
                        outcome.gap_reason, outcome.attempts, clock.now())
                    continue
                deferred = outcome.value
            # the serial collector stamps rows with the clock as of the
            # successful attempt; the admission pass records that instant
            # so late materialization reproduces it
            admitted.append((query, deferred, clock.now()))
        return admitted, report

    @staticmethod
    def _materialize_span(admitted: Sequence[_Admitted], start: int,
                          end: int) -> List[SpsRow]:
        """Phase 2 worker body: pure, shared-state-free row evaluation."""
        rows: List[SpsRow] = []
        for query, deferred, stamp in admitted[start:end]:
            for row in deferred.rows_at(stamp):
                zone = row["AvailabilityZoneId"]
                if zone is None:
                    continue
                rows.append((query.instance_type, row["Region"], zone,
                             row["Score"], stamp))
        return rows

    def _materialize(self, admitted: List[_Admitted]) -> List[SpsRow]:
        """Phases 2+3: evaluate shards, merge buffers in plan order."""
        if not admitted:
            return []
        if self.workers == 1:
            return self._materialize_span(admitted, 0, len(admitted))
        spans = shard_ranges(len(admitted), self.workers)
        buffers = self._pool().map(
            lambda span: self._materialize_span(admitted, span[0], span[1]),
            spans)
        merged: List[SpsRow] = []
        for buffer in buffers:  # executor.map preserves submission order
            merged.extend(buffer)
        return merged
