"""Content-addressed cache of packed SPS query plans.

Building the full-catalog plan runs the branch-and-bound solver once per
instance type (~550 solves).  The offering map changes rarely -- region
launches and new instance families are infrequent events -- so the solved
packing for each type is cached under a *content fingerprint* of everything
that determines it: the type name, its (region, zone-count) offering
profile, the bin capacity and the packing algorithm.

Re-planning an unchanged catalog is then pure lookup: **zero solver
invocations** (asserted against :data:`repro.solver.STATS` in the test
suite).  When the catalog drifts, only the types whose fingerprints changed
are re-solved -- targeted invalidation falls out of content addressing, no
explicit invalidation protocol is needed.

The cache also persists to disk (``plan-cache.json`` under the service's
``data_dir``) so a restarted collector skips the cold solve entirely.
Corrupt or version-skewed cache files are ignored, never fatal.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Mapping, Optional, Tuple

from .._util import atomic_open, stable_hash
from ..cloudsim.ec2_api import MAX_SPS_RESULTS
# re-exported: the zero-warm-solve contract is asserted against these
# counters, and layering lets devtools reach the solver only through core
from ..solver import STATS as SOLVER_STATS  # noqa: F401
from .query_planner import PackMemo, QueryPlan, SpsQuery, pack_offering

#: On-disk format version; bump on any incompatible change.
CACHE_VERSION = 1

#: Guards the process-wide singleton slot (PlanCache._shared).
_SHARED_LOCK = threading.Lock()


def type_signature(itype: str, region_zones: Mapping[str, int],
                   capacity: int, algorithm: str) -> str:
    """Content fingerprint of one type's packing subproblem.

    Covers every input the packed groups depend on; ``target_capacity`` is
    deliberately excluded (it parameterizes the query, not the packing).
    """
    parts: List[object] = ["plan-sig", itype, int(capacity), algorithm]
    for region in sorted(region_zones):
        parts.append(region)
        parts.append(int(region_zones[region]))
    return format(stable_hash(*parts), "016x")


class PlanCache:
    """Memoized query planner with optional on-disk persistence.

    Two cache layers compose:

    * per-type packed groups, keyed by :func:`type_signature` -- a hit
      skips the solver for that type entirely;
    * the shared :data:`~repro.core.query_planner.PackMemo` of solved
      ``(weights, capacity, algorithm)`` subproblems -- a miss on one type
      can still reuse the solve of another type with the same offering
      profile.
    """

    _shared: Optional["PlanCache"] = None

    def __init__(self) -> None:
        self._groups: Dict[str, List[Tuple[str, ...]]] = {}
        self._memo: PackMemo = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        # reentrant: plan() and the persistence hooks may nest via the
        # service's save-on-close path
        self._lock = threading.RLock()

    @classmethod
    def shared(cls) -> "PlanCache":
        """The process-wide cache instance (lazily created)."""
        with _SHARED_LOCK:
            if cls._shared is None:
                cls._shared = cls()
            return cls._shared

    @classmethod
    def reset_shared(cls) -> None:
        """Drop the process-wide instance (test isolation hook)."""
        with _SHARED_LOCK:
            cls._shared = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._groups)

    @property
    def dirty(self) -> bool:
        """True when the cache holds entries not yet saved to disk."""
        with self._lock:
            return self._dirty

    def plan(self, offering_map: Mapping[str, Mapping[str, int]],
             capacity: int = MAX_SPS_RESULTS, target_capacity: int = 1,
             algorithm: str = "exact") -> QueryPlan:
        """Build a query plan, reusing cached packings where possible.

        Produces byte-identical plans to
        :func:`~repro.core.query_planner.plan_for_offering_map` -- the
        cache only changes *whether* the solver runs, never its output.
        """
        if algorithm not in ("exact", "ffd", "naive"):
            raise ValueError(f"unknown planning algorithm {algorithm!r}")
        queries: List[SpsQuery] = []
        naive = 0
        with self._lock:
            for itype, region_zones in sorted(offering_map.items()):
                regions = sorted(region_zones)
                naive += len(regions)
                sig = type_signature(itype, region_zones, capacity, algorithm)
                groups = self._groups.get(sig)
                if groups is None:
                    self.misses += 1
                    weights = [min(region_zones[r], capacity)
                               for r in regions]
                    groups = pack_offering(regions, weights, capacity,
                                           algorithm, self._memo)
                    self._groups[sig] = groups
                    self._dirty = True
                else:
                    self.hits += 1
                for packed in groups:
                    queries.append(SpsQuery(itype, packed, target_capacity))
        all_regions = {r for zones in offering_map.values() for r in zones}
        pair_bound = len(offering_map) * len(all_regions)
        return QueryPlan(queries, naive, algorithm, pair_bound)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the per-type groups to ``path`` (atomic replace)."""
        with self._lock:
            payload = {
                "version": CACHE_VERSION,
                "entries": {sig: [list(group) for group in groups]
                            for sig, groups in sorted(self._groups.items())},
            }
            with atomic_open(path) as handle:
                json.dump(payload, handle, separators=(",", ":"))
            self._dirty = False

    def load(self, path: str) -> int:
        """Merge entries from ``path``; returns how many were loaded.

        Missing, unreadable, corrupt, or version-skewed files load nothing
        -- the cache must never make startup fail.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return 0
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            return 0
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            return 0
        loaded = 0
        with self._lock:
            for sig, groups in entries.items():
                if sig in self._groups:
                    continue
                try:
                    self._groups[sig] = [tuple(str(r) for r in group)
                                         for group in groups]
                except TypeError:
                    continue
                loaded += 1
        return loaded

    def stats(self) -> Dict[str, int]:
        """Counters for CLI / benchmark reporting."""
        with self._lock:
            return {"entries": len(self._groups), "hits": self.hits,
                    "misses": self.misses}
