"""Spot placement score query planner (paper Section 3.2, Figure 1).

The SPS API returns at most 10 score rows per query.  When querying one
instance type with ``SingleAvailabilityZone=true`` across several regions,
each region contributes one row per zone supporting the type -- so regions
can be *packed together* as long as their zone counts sum to at most 10.
That is a textbook bin-packing problem: items = regions (weight = number of
supporting zones), bins = queries (capacity = 10).

The paper reports the full-catalog plan shrinking from 9,299 naive queries
(one per type-region pair, bounded by 547 x 17) to 2,226 packed queries, a
~4.5x reduction; this module reproduces that construction with the exact
branch-and-bound solver from :mod:`repro.solver` (the MIP/CBC stand-in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cloudsim.catalog import Catalog
from ..cloudsim.ec2_api import MAX_SPS_RESULTS
from ..solver import branch_and_bound, first_fit_decreasing


@dataclass(frozen=True)
class SpsQuery:
    """One planned placement-score query: a type over packed regions."""

    instance_type: str
    regions: Tuple[str, ...]
    target_capacity: int = 1
    single_availability_zone: bool = True

    @property
    def expected_rows(self) -> int:
        """Zone rows this query will produce (must be <= the API cap)."""
        return len(self.regions)


@dataclass
class QueryPlan:
    """The full per-round collection plan plus its efficiency accounting.

    Two baselines are tracked: ``naive_query_count`` is one query per
    actually-offered (type, region) pair, while ``pair_bound_query_count``
    is the paper's #types x #regions upper bound (547 x 17 = 9,299), which
    assumes every type is offered everywhere.
    """

    queries: List[SpsQuery]
    naive_query_count: int
    algorithm: str
    pair_bound_query_count: int = 0

    @property
    def optimized_query_count(self) -> int:
        return len(self.queries)

    @property
    def reduction_factor(self) -> float:
        """Offered-pair baseline / optimized query ratio."""
        if not self.queries:
            return 1.0
        return self.naive_query_count / len(self.queries)

    @property
    def bound_reduction_factor(self) -> float:
        """Paper-style ratio against the #types x #regions bound (~4.5x)."""
        if not self.queries or not self.pair_bound_query_count:
            return self.reduction_factor
        return self.pair_bound_query_count / len(self.queries)


#: Memo of solved packing subproblems:
#: (weights tuple, capacity, algorithm) -> solver bins (item-index lists).
#: Weights are derived from sorted region lists, so a solution is reusable
#: across any instance type whose offering profile matches.
PackMemo = Dict[Tuple[Tuple[float, ...], float, str], List[List[int]]]


def pack_offering(regions: Sequence[str], weights: Sequence[float],
                  capacity: float, algorithm: str,
                  memo: Optional[PackMemo] = None) -> List[Tuple[str, ...]]:
    """Pack one type's regions into query groups, optionally memoized.

    Returns sorted region tuples, one per query.  With a ``memo``, an
    identical ``(weights, capacity, algorithm)`` subproblem reuses the
    previously solved bin structure instead of re-running the solver --
    many instance types share an offering profile, so a full-catalog plan
    solves only the distinct profiles.
    """
    if algorithm == "naive":
        return [(region,) for region in regions]
    bins: Optional[List[List[int]]] = None
    sig = None
    if memo is not None:
        sig = (tuple(weights), float(capacity), algorithm)
        bins = memo.get(sig)
    if bins is None:
        if algorithm == "exact":
            bins = branch_and_bound(weights, capacity).bins
        else:
            bins = first_fit_decreasing(weights, capacity)
        if memo is not None:
            memo[sig] = bins
    return [tuple(sorted(regions[i] for i in item_indexes))
            for item_indexes in bins]


def plan_for_offering_map(offering_map: Mapping[str, Mapping[str, int]],
                          capacity: int = MAX_SPS_RESULTS,
                          target_capacity: int = 1,
                          algorithm: str = "exact",
                          memo: Optional[PackMemo] = None) -> QueryPlan:
    """Build a packed query plan from {type: {region: zone_count}}.

    ``algorithm`` selects the packing solver: "exact" (branch-and-bound,
    the CBC stand-in), "ffd" (first-fit decreasing), or "naive" (one query
    per type-region pair -- the unoptimized baseline of Figure 1).  By
    default each call shares solved subproblems across the types it plans
    (see :func:`pack_offering`); pass an explicit ``memo`` to share across
    calls as well.
    """
    if algorithm not in ("exact", "ffd", "naive"):
        raise ValueError(f"unknown planning algorithm {algorithm!r}")
    if memo is None:
        memo = {}
    queries: List[SpsQuery] = []
    naive = 0
    for itype, region_zones in sorted(offering_map.items()):
        regions = sorted(region_zones)
        naive += len(regions)
        # zones-per-region can exceed the cap only if a region had > capacity
        # zones; our catalog maxes at 6 so every item fits.
        weights = [min(region_zones[r], capacity) for r in regions]
        for packed in pack_offering(regions, weights, capacity, algorithm,
                                    memo):
            queries.append(SpsQuery(itype, packed, target_capacity))
    all_regions = {r for zones in offering_map.values() for r in zones}
    pair_bound = len(offering_map) * len(all_regions)
    return QueryPlan(queries, naive, algorithm, pair_bound)


def plan_for_catalog(catalog: Catalog, capacity: int = MAX_SPS_RESULTS,
                     target_capacity: int = 1,
                     algorithm: str = "exact") -> QueryPlan:
    """Convenience wrapper: plan over a catalog's full offering map."""
    return plan_for_offering_map(catalog.offering_map(), capacity,
                                 target_capacity, algorithm)


def pack_example(offering_map: Mapping[str, Mapping[str, int]],
                 instance_type: str,
                 capacity: int = MAX_SPS_RESULTS) -> List[Tuple[Tuple[str, int], ...]]:
    """The Figure-1 illustration for one type: groups of (region, zones).

    Returns the packed groups with each region's zone count, mirroring the
    paper's p3.2xlarge walk-through.
    """
    region_zones = offering_map[instance_type]
    regions = sorted(region_zones)
    weights = [region_zones[r] for r in regions]
    bins = branch_and_bound(weights, capacity).bins
    return [tuple((regions[i], region_zones[regions[i]]) for i in sorted(b))
            for b in bins]
