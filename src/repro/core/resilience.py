"""Resilient execution for collectors: retries, breakers, graceful gaps.

The real SpotLake lost collection periods to "system management issues"
(paper Section 5); this layer is the reproduction's answer.  Every
collector call runs through a :class:`ResilientExecutor` that

* retries transient faults with exponential backoff and *deterministic*
  jitter (seeded, so chaos runs replay byte-identically),
* trips a per-data-source :class:`CircuitBreaker` after consecutive
  failures, probing half-open after a cool-down,
* and, when a call is truly unrecoverable, degrades gracefully: the
  caller records an explicit *gap record* in the archive instead of
  crashing the round -- a hole you can see beats a hole you discover
  months later.

Backoff waits advance the *simulation* clock (collection time is real
time in this world); they never touch the host clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from .._util import stable_uniform
from ..cloudsim import QuotaExceededError, SimulationClock, TransientError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule with deterministic jitter.

    ``max_attempts`` counts the initial try; ``round_retry_budget`` caps
    total retries a data source may spend per collection round (None =
    uncapped), so one bad round cannot stall the cadence indefinitely.
    """

    max_attempts: int = 4
    base_delay: float = 2.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    #: +/- fraction of the raw delay; drawn from a stable hash, not a PRNG
    jitter: float = 0.1
    seed: int = 0
    round_retry_budget: Optional[int] = None

    def delay(self, attempt: int, *key_parts: object) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered but exact:
        the same (seed, attempt, key) always yields the same delay."""
        raw = min(self.base_delay * self.multiplier ** attempt,
                  self.max_delay)
        if self.jitter <= 0.0:
            return raw
        unit = stable_uniform("retry-jitter", self.seed, attempt, *key_parts)
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def schedule(self, *key_parts: object) -> List[float]:
        """The full deterministic delay sequence for one call key."""
        return [self.delay(attempt, *key_parts)
                for attempt in range(self.max_attempts - 1)]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    closed --(``failure_threshold`` consecutive failures)--> open
    open --(``reset_timeout`` sim-seconds elapse)--> half-open
    half-open --(probe succeeds)--> closed, --(probe fails)--> open
    """

    def __init__(self, clock: SimulationClock, failure_threshold: int = 5,
                 reset_timeout: float = 1800.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self.trips = 0
        #: (time, new_state) transition log for tests and reports
        self.transitions: List[Tuple[float, BreakerState]] = []

    @property
    def state(self) -> BreakerState:
        self._maybe_half_open()
        return self._state

    def _transition(self, new_state: BreakerState) -> None:
        self._state = new_state
        self.transitions.append((self.clock.now(), new_state))

    def _maybe_half_open(self) -> None:
        if self._state is BreakerState.OPEN and self._opened_at is not None \
                and self.clock.now() - self._opened_at >= self.reset_timeout:
            self._transition(BreakerState.HALF_OPEN)

    def allow(self) -> bool:
        """May the caller attempt a call right now?"""
        self._maybe_half_open()
        return self._state is not BreakerState.OPEN

    def cooldown_remaining(self) -> float:
        """Sim-seconds until an open breaker starts half-open probing.

        0.0 whenever the breaker is not open -- the serving front end
        folds this into 503 ``Retry-After`` hints so shed clients back
        off at least as long as the degraded source needs to recover.
        """
        self._maybe_half_open()
        if self._state is not BreakerState.OPEN or self._opened_at is None:
            return 0.0
        remaining = self.reset_timeout - (self.clock.now() - self._opened_at)
        return max(0.0, remaining)

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._state is BreakerState.CLOSED and \
                self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._consecutive_failures = 0
        self._opened_at = self.clock.now()
        self.trips += 1
        self._transition(BreakerState.OPEN)


#: Gap reasons a :class:`CallOutcome` can carry.
GAP_BREAKER_OPEN = "breaker-open"
GAP_RETRIES_EXHAUSTED = "retries-exhausted"
GAP_QUOTA_EXHAUSTED = "quota-exhausted"


@dataclass
class CallOutcome:
    """What one resilient call did: a value, or an explicit gap."""

    ok: bool
    value: Any = None
    attempts: int = 0
    retries: int = 0
    gap_reason: str = ""
    #: True when this call's final failure tripped the breaker open
    breaker_tripped: bool = False
    #: codes of the transient errors seen along the way
    errors: List[str] = field(default_factory=list)


class ResilientExecutor:
    """Runs one data source's calls under a retry policy and a breaker."""

    def __init__(self, source: str, clock: SimulationClock,
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None):
        self.source = source
        self.clock = clock
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(clock)
        self.retries_total = 0
        self.gaps_total = 0
        self.calls_total = 0
        self._round_retries = 0

    def start_round(self) -> None:
        """Reset the per-round retry budget (call at round start)."""
        self._round_retries = 0

    def _budget_left(self) -> bool:
        budget = self.policy.round_retry_budget
        return budget is None or self._round_retries < budget

    def call(self, key: Tuple[object, ...],
             attempt_fn: Callable[[], Any]) -> CallOutcome:
        """Run ``attempt_fn`` to completion, retrying transient faults.

        ``key`` identifies the logical call (it keys the jitter draw and
        should be stable across rounds).  Returns a :class:`CallOutcome`;
        never raises for transient faults, breaker rejections, or quota
        exhaustion -- non-cloud exceptions still propagate, they are bugs.
        """
        self.calls_total += 1
        outcome = CallOutcome(ok=False)
        if not self.breaker.allow():
            outcome.gap_reason = GAP_BREAKER_OPEN
            self.gaps_total += 1
            return outcome
        trips_before = self.breaker.trips
        for attempt in range(self.policy.max_attempts):
            outcome.attempts = attempt + 1
            try:
                outcome.value = attempt_fn()
            except QuotaExceededError as exc:
                # a drained account pool will not refill within a round;
                # retrying would only burn the budget
                outcome.errors.append(exc.code)
                outcome.gap_reason = GAP_QUOTA_EXHAUSTED
                self.gaps_total += 1
                return outcome
            except TransientError as exc:
                outcome.errors.append(exc.code)
                self.breaker.record_failure()
                outcome.breaker_tripped = self.breaker.trips > trips_before
                can_retry = (attempt + 1 < self.policy.max_attempts
                             and self._budget_left()
                             and self.breaker.allow())
                if not can_retry:
                    outcome.gap_reason = GAP_RETRIES_EXHAUSTED
                    self.gaps_total += 1
                    return outcome
                outcome.retries += 1
                self.retries_total += 1
                self._round_retries += 1
                self.clock.advance(self.policy.delay(attempt, self.source,
                                                     *key))
            else:
                self.breaker.record_success()
                outcome.ok = True
                return outcome
        raise AssertionError("unreachable: retry loop must return")

    def stats(self) -> dict:
        """Counters and breaker state for reports and the CLI."""
        return {
            "source": self.source,
            "calls": self.calls_total,
            "retries": self.retries_total,
            "gaps": self.gaps_total,
            "breaker_state": self.breaker.state.value,
            "breaker_trips": self.breaker.trips,
        }
