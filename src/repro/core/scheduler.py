"""Periodic collection scheduling (paper Section 4: "periodically executes
collection tasks for different data sources").

The scheduler advances the simulation clock and fires each collector at its
own cadence -- the paper collected SPS and advisor data every 10 minutes.
A round-robin log records what ran when, so tests can assert cadences.

Failure isolation: a collector that raises must not starve its siblings
(the seed version aborted ``run_due`` mid-loop, exactly the bug class that
holed the paper's archive).  A raising job is recorded as an ``"error"``
history entry and its cadence resumes at the next period; rounds skipped
during a stall are counted per job in ``missed_rounds``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..cloudsim import SimulationClock
from .collectors import CollectionReport

#: The paper's collection interval.
DEFAULT_INTERVAL_SECONDS = 600.0


@dataclass
class RunEntry:
    """One history line: when a job fired and how it went.

    Iterates as ``(time, name)`` for backwards compatibility with the
    original two-tuple history; the richer fields ride along.
    """

    time: float
    name: str
    status: str = "ok"
    error: str = ""
    #: wall-clock seconds the job body took (host timer, not sim time);
    #: feeds the collection benchmark's round-latency measurements
    duration: float = 0.0

    def __iter__(self) -> Iterator:
        return iter((self.time, self.name))


@dataclass
class ScheduledJob:
    """One collector registered with its own period."""

    name: str
    collect: Callable[[], CollectionReport]
    period: float
    next_due: float
    runs: int = 0
    last_report: Optional[CollectionReport] = None
    #: times this job raised out of collect() (the round is then missed)
    failures: int = 0
    last_error: str = ""
    #: periods skipped while the scheduler was stalled past next_due
    missed_rounds: int = 0
    #: cumulative wall-clock seconds spent inside collect() (host timer)
    total_runtime: float = 0.0


class CollectionScheduler:
    """Fires registered collectors as the simulation clock advances."""

    def __init__(self, clock: SimulationClock,
                 timer: Optional[Callable[[], float]] = None):
        self.clock = clock
        self._jobs: Dict[str, ScheduledJob] = {}
        self.history: List[RunEntry] = []
        # injectable monotonic timer (same idiom as MetricsRegistry): the
        # reading never influences scheduling decisions or archived data --
        # it only annotates history entries -- so determinism is preserved;
        # tests inject a fake timer to pin the accounting
        self._timer = timer if timer is not None else time.perf_counter

    def register(self, name: str, collect: Callable[[], CollectionReport],
                 period: float = DEFAULT_INTERVAL_SECONDS,
                 initial_delay: float = 0.0) -> ScheduledJob:
        """Register a collector; it first fires at now + initial_delay."""
        if name in self._jobs:
            raise ValueError(f"job {name!r} already registered")
        if period <= 0:
            raise ValueError("period must be positive")
        job = ScheduledJob(name, collect, period,
                           self.clock.now() + initial_delay)
        self._jobs[name] = job
        return job

    def jobs(self) -> List[ScheduledJob]:
        return list(self._jobs.values())

    def _due_jobs(self) -> List[ScheduledJob]:
        now = self.clock.now()
        due = [j for j in self._jobs.values() if j.next_due <= now]
        # stable sort: ties keep registration order, so rounds replay
        # identically run to run
        due.sort(key=lambda j: j.next_due)
        return due

    def _run_job(self, job: ScheduledJob) -> None:
        started = self._timer()
        try:
            job.last_report = job.collect()
        except Exception as exc:  # noqa: BLE001 -- isolation boundary:
            # one bad collector must not starve its siblings
            elapsed = self._timer() - started
            job.failures += 1
            job.total_runtime += elapsed
            job.last_error = f"{type(exc).__name__}: {exc}"
            self.history.append(RunEntry(self.clock.now(), job.name,
                                         status="error",
                                         error=job.last_error,
                                         duration=elapsed))
        else:
            elapsed = self._timer() - started
            job.runs += 1
            job.total_runtime += elapsed
            self.history.append(RunEntry(self.clock.now(), job.name,
                                         duration=elapsed))

    def run_due(self) -> int:
        """Run every job due at the current clock time; returns run count.

        Jobs that raise still count as a (failed) run and still have their
        cadence advanced -- the round is missed, visibly, not retried in a
        tight loop.
        """
        count = 0
        for job in self._due_jobs():
            self._run_job(job)
            # schedule strictly forward even after long stalls; every
            # period skipped beyond the normal reschedule is a missed round
            skipped = 0
            while job.next_due <= self.clock.now():
                job.next_due += job.period
                skipped += 1
            job.missed_rounds += max(0, skipped - 1)
            count += 1
        return count

    def run_for(self, duration: float, step: float = DEFAULT_INTERVAL_SECONDS) -> int:
        """Advance the clock in ``step`` increments for ``duration`` seconds,
        firing due jobs after each advance.  Returns total job runs."""
        if step <= 0:
            raise ValueError("step must be positive")
        runs = self.run_due()
        end = self.clock.now() + duration
        while self.clock.now() < end:
            hop = min(step, end - self.clock.now())
            self.clock.advance(hop)
            runs += self.run_due()
        return runs
