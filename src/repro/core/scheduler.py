"""Periodic collection scheduling (paper Section 4: "periodically executes
collection tasks for different data sources").

The scheduler advances the simulation clock and fires each collector at its
own cadence -- the paper collected SPS and advisor data every 10 minutes.
A round-robin log records what ran when, so tests can assert cadences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..cloudsim import SimulationClock
from .collectors import CollectionReport

#: The paper's collection interval.
DEFAULT_INTERVAL_SECONDS = 600.0


@dataclass
class ScheduledJob:
    """One collector registered with its own period."""

    name: str
    collect: Callable[[], CollectionReport]
    period: float
    next_due: float
    runs: int = 0
    last_report: Optional[CollectionReport] = None


class CollectionScheduler:
    """Fires registered collectors as the simulation clock advances."""

    def __init__(self, clock: SimulationClock):
        self.clock = clock
        self._jobs: Dict[str, ScheduledJob] = {}
        self.history: List[Tuple[float, str]] = []

    def register(self, name: str, collect: Callable[[], CollectionReport],
                 period: float = DEFAULT_INTERVAL_SECONDS,
                 initial_delay: float = 0.0) -> ScheduledJob:
        """Register a collector; it first fires at now + initial_delay."""
        if name in self._jobs:
            raise ValueError(f"job {name!r} already registered")
        if period <= 0:
            raise ValueError("period must be positive")
        job = ScheduledJob(name, collect, period,
                           self.clock.now() + initial_delay)
        self._jobs[name] = job
        return job

    def jobs(self) -> List[ScheduledJob]:
        return list(self._jobs.values())

    def _due_jobs(self) -> List[ScheduledJob]:
        now = self.clock.now()
        due = [j for j in self._jobs.values() if j.next_due <= now]
        due.sort(key=lambda j: j.next_due)
        return due

    def run_due(self) -> int:
        """Run every job due at the current clock time; returns run count."""
        count = 0
        for job in self._due_jobs():
            job.last_report = job.collect()
            job.runs += 1
            self.history.append((self.clock.now(), job.name))
            # schedule strictly forward even after long stalls
            while job.next_due <= self.clock.now():
                job.next_due += job.period
            count += 1
        return count

    def run_for(self, duration: float, step: float = DEFAULT_INTERVAL_SECONDS) -> int:
        """Advance the clock in ``step`` increments for ``duration`` seconds,
        firing due jobs after each advance.  Returns total job runs."""
        if step <= 0:
            raise ValueError("step must be positive")
        runs = self.run_due()
        remaining = duration
        while remaining > 0:
            hop = min(step, remaining)
            self.clock.advance(hop)
            remaining -= hop
            runs += self.run_due()
        return runs
