"""SpotLake service facade: one object wiring the whole Figure-2 pipeline.

``SpotLakeService`` owns the simulated cloud, the account pool, the packed
query plan, the three collectors, the scheduler, the archive and the API
gateway.  Two population paths exist:

* :meth:`collect_once` / :meth:`run_collection` -- the *faithful* path: every
  record travels through the quota-limited API client exactly as the real
  service's records do.  Use it for integration testing and modest windows.
* :meth:`bulk_backfill` -- the *fast* path for research-scale windows (the
  paper's 181 days x 10-minute cadence is ~26k rounds): it samples the
  dataset engines directly and writes the archive in bulk.  The data is
  identical -- both paths read the same deterministic engines -- only the
  API quota accounting is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..cloudsim import (
    AccountPool,
    FaultInjector,
    FaultPlan,
    SimulatedCloud,
    resolve_profile,
)
from ..scoring import interruption_free_score
from ..timeseries import RetentionPolicy
from .archive import SpotLakeArchive
from .collectors import (
    AdvisorCollector,
    CollectionReport,
    PriceCollector,
    SpsCollector,
)
from .parallel import ParallelCollectionEngine
from .plan_cache import PlanCache
from .query_planner import QueryPlan, plan_for_offering_map
from .resilience import CircuitBreaker, ResilientExecutor, RetryPolicy
from .frontend import ServingFrontend, Tenant
from .scheduler import CollectionScheduler, DEFAULT_INTERVAL_SECONDS
from .serving import ApiGateway


@dataclass
class ServiceConfig:
    """Knobs of a SpotLake deployment."""

    seed: int = 0
    #: accounts in the SPS collection pool; sized for the full plan by
    #: default when left at 0.
    account_pool_size: int = 0
    #: collection cadence (the paper used 10 minutes).
    collection_interval: float = DEFAULT_INTERVAL_SECONDS
    #: restrict collection to these instance types (None = whole catalog).
    instance_types: Optional[Sequence[str]] = None
    #: packing algorithm for the query plan ("exact", "ffd", "naive").
    plan_algorithm: str = "exact"
    #: named fault-injection profile ("none" disables injection).
    chaos_profile: str = "none"
    #: seed of the fault schedule; defaults to the world seed.
    chaos_seed: Optional[int] = None
    #: run collectors behind retry/breaker/gap-record protection.
    resilience: bool = True
    #: retry attempts per call (1 initial + N-1 retries).
    retry_attempts: int = 4
    #: first backoff delay in sim-seconds.
    retry_base_delay: float = 2.0
    #: consecutive failures before a data source's breaker opens.
    breaker_threshold: int = 5
    #: sim-seconds an open breaker waits before half-open probing.
    breaker_reset: float = 1800.0
    #: serve reads through the generation-stamped query cache.
    serving_cache: bool = True
    #: per-table cache entry bound (LRU beyond it).
    cache_entries: int = 1024
    #: durable storage directory (None = purely in-memory archive).
    data_dir: Optional[str] = None
    #: checkpoint cadence in committed collection rounds (0 = never).
    checkpoint_every: int = 4
    #: tiered-lake mode: land every merged round in the date-partitioned
    #: cold tier and ingest only changed rows into the hot engine;
    #: history queries federate across the retention boundary.  Requires
    #: ``data_dir``.
    lake: bool = False
    #: emit every row (not just changes) each Nth round (0 = never).
    lake_full_refresh_every: int = 0
    #: hot-tier retention: evict change points older than this many
    #: sim-seconds at each round commit (None = keep all).  With the
    #: lake enabled, evicted history remains queryable from the cold
    #: tier through the same ``history`` routes.
    retention_max_age: Optional[float] = None
    #: storage crash-hook (doublerun --durability installs a CrashInjector).
    storage_crash_hook: Optional[object] = None
    #: SPS materialization worker threads (None = legacy serial collector;
    #: 1 = engine path with inline materialization -- byte-identical).
    workers: Optional[int] = None
    #: reuse solved query packings via the content-addressed plan cache
    #: (in-memory always; persisted under ``data_dir`` when durable).
    plan_cache: bool = True
    #: serving worker threads behind the admission-controlled frontend.
    frontend_workers: int = 4
    #: bound on queued-but-undispatched serving requests (overflow sheds).
    frontend_queue_depth: int = 64
    #: virtual-seconds a shed frontend refuses new work.
    frontend_shed_cooldown: float = 5.0


class SpotLakeService:
    """The assembled data archive service."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 cloud: Optional[SimulatedCloud] = None):
        self.config = config or ServiceConfig()
        self.cloud = cloud or SimulatedCloud(seed=self.config.seed)
        retention = None
        if self.config.retention_max_age is not None:
            retention = RetentionPolicy(
                max_age_seconds=self.config.retention_max_age)
        self.archive = SpotLakeArchive(
            retention=retention,
            cache=self.config.serving_cache,
            cache_entries=self.config.cache_entries,
            data_dir=self.config.data_dir,
            checkpoint_every=self.config.checkpoint_every,
            crash_hook=self.config.storage_crash_hook,
            lake=self.config.lake,
            lake_full_refresh_every=self.config.lake_full_refresh_every)

        profile = resolve_profile(self.config.chaos_profile)
        if profile.total_rate > 0.0:
            chaos_seed = self.config.chaos_seed
            if chaos_seed is None:
                chaos_seed = self.config.seed
            self.cloud.faults = FaultInjector(
                FaultPlan(seed=chaos_seed, profile=profile),
                self.cloud.clock)

        offering_map = self.cloud.catalog.offering_map()
        if self.config.instance_types is not None:
            wanted = set(self.config.instance_types)
            offering_map = {t: rz for t, rz in offering_map.items() if t in wanted}
        self.plan: QueryPlan = self._build_plan(offering_map)

        pool_size = self.config.account_pool_size or AccountPool.size_for(
            self.plan.optimized_query_count)
        self.accounts = AccountPool(pool_size)

        self.executors: Dict[str, ResilientExecutor] = {}
        if self.config.resilience:
            policy = RetryPolicy(max_attempts=self.config.retry_attempts,
                                 base_delay=self.config.retry_base_delay,
                                 seed=self.config.seed)
            for source in ("sps", "advisor", "price"):
                self.executors[source] = ResilientExecutor(
                    source, self.cloud.clock, policy,
                    CircuitBreaker(self.cloud.clock,
                                   self.config.breaker_threshold,
                                   self.config.breaker_reset))

        self.engine: Optional[ParallelCollectionEngine] = None
        if self.config.workers is not None:
            self.engine = ParallelCollectionEngine(self.config.workers)

        self.sps_collector = SpsCollector(
            self.cloud, self.archive, self.accounts, self.plan,
            resilience=self.executors.get("sps"),
            engine=self.engine)
        self.advisor_collector = AdvisorCollector(
            self.cloud, self.archive,
            resilience=self.executors.get("advisor"))
        price_pools = None
        if self.config.instance_types is not None:
            wanted = set(self.config.instance_types)
            price_pools = [p for p in self.cloud.catalog.all_pools()
                           if p[0] in wanted]
        self.price_collector = PriceCollector(
            self.cloud, self.archive, price_pools,
            resilience=self.executors.get("price"))

        self.scheduler = CollectionScheduler(self.cloud.clock)
        self.scheduler.register("sps", self.sps_collector.collect,
                                self.config.collection_interval)
        self.scheduler.register("advisor", self.advisor_collector.collect,
                                self.config.collection_interval)
        self.scheduler.register("price", self.price_collector.collect,
                                self.config.collection_interval)

        self.gateway = ApiGateway(self.archive)

    # -- planning ---------------------------------------------------------------

    def _plan_cache_path(self) -> Optional[str]:
        if self.config.data_dir is None:
            return None
        return str(Path(self.config.data_dir) / "plan-cache.json")

    def _build_plan(self, offering_map) -> QueryPlan:
        """Build the packed plan, through the plan cache when enabled.

        The cached and uncached constructions produce identical plans; the
        cache only skips solver work.  With durable storage the cache also
        round-trips through ``data_dir/plan-cache.json`` so a restarted
        service replans without a single solver call.
        """
        if not self.config.plan_cache:
            return plan_for_offering_map(
                offering_map, algorithm=self.config.plan_algorithm)
        cache = PlanCache.shared()
        path = self._plan_cache_path()
        if path is not None:
            cache.load(path)
        plan = cache.plan(offering_map, algorithm=self.config.plan_algorithm)
        if path is not None and cache.dirty:
            cache.save(path)
        return plan

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool and the archive's storage engine."""
        if self.engine is not None:
            self.engine.close()
        self.archive.close()

    # -- faithful collection ---------------------------------------------------

    def collect_once(self) -> Dict[str, CollectionReport]:
        """Run all three collectors once at the current clock time.

        Ends with the archive's round commit: the round is the durable
        group-commit unit, so a crash between rounds never loses data and
        a crash mid-round loses exactly the in-flight round.
        """
        reports = {
            "sps": self.sps_collector.collect(),
            "advisor": self.advisor_collector.collect(),
            "price": self.price_collector.collect(),
        }
        self.archive.commit_round(self.cloud.clock.now())
        return reports

    def run_collection(self, duration: float) -> int:
        """Advance time for ``duration`` seconds, firing due collectors.

        With durable storage enabled, every scheduler tick that fired at
        least one collector ends in a round commit (mirroring
        :meth:`collect_once`); the in-memory path delegates to the
        scheduler untouched.
        """
        step = self.config.collection_interval
        if self.archive.engine is None:
            return self.scheduler.run_for(duration, step)
        clock = self.cloud.clock
        runs = self.scheduler.run_due()
        if runs:
            self.archive.commit_round(clock.now())
        end = clock.now() + duration
        while clock.now() < end:
            clock.advance(min(step, end - clock.now()))
            fired = self.scheduler.run_due()
            if fired:
                self.archive.commit_round(clock.now())
            runs += fired
        return runs

    # -- resilience accounting -------------------------------------------------

    @property
    def chaos_enabled(self) -> bool:
        return self.cloud.faults is not None

    def resilience_stats(self) -> Dict[str, dict]:
        """Per-data-source retry/gap/breaker counters (empty when off)."""
        return {source: executor.stats()
                for source, executor in self.executors.items()}

    # -- serving observability -------------------------------------------------

    @property
    def metrics(self):
        """The gateway's serving metrics registry."""
        return self.gateway.metrics

    def serving_stats(self) -> dict:
        """Request metrics + cache counters (the ``/metrics`` payload)."""
        snapshot = self.gateway.metrics.snapshot()
        snapshot["cache"] = self.archive.cache_stats()
        return snapshot

    # -- concurrent serving ----------------------------------------------------

    def breaker_cooldown(self) -> float:
        """Longest remaining breaker cool-down across the data sources.

        0.0 when every source is healthy; the serving frontend raises
        its 503 ``retry_after`` hints to this, so shed clients back off
        until degraded collection can plausibly have recovered.
        """
        if not self.executors:
            return 0.0
        return max(e.breaker.cooldown_remaining()
                   for e in self.executors.values())

    def frontend(self, tenants: Optional[Sequence[Tenant]] = None,
                 workers: Optional[int] = None,
                 **kwargs) -> ServingFrontend:
        """An admission-controlled frontend over this service's gateway.

        Config supplies the worker/queue/shed defaults; keyword
        arguments pass straight through to :class:`ServingFrontend`.
        The frontend is not started -- use it as a context manager or
        call ``start()``.
        """
        kwargs.setdefault("queue_depth", self.config.frontend_queue_depth)
        kwargs.setdefault("shed_cooldown", self.config.frontend_shed_cooldown)
        kwargs.setdefault("breaker_cooldown", self.breaker_cooldown)
        return ServingFrontend(
            self.gateway,
            tenants=tuple(tenants) if tenants is not None else (),
            workers=(workers if workers is not None
                     else self.config.frontend_workers),
            **kwargs)

    # -- fast backfill -------------------------------------------------------------

    def _selected_pools(self) -> List[Tuple[str, str, str]]:
        pools = self.cloud.catalog.all_pools()
        if self.config.instance_types is not None:
            wanted = set(self.config.instance_types)
            pools = [p for p in pools if p[0] in wanted]
        return pools

    def bulk_backfill(self, sample_times: Sequence[float],
                      pools: Optional[Sequence[Tuple[str, str, str]]] = None,
                      include_price: bool = True) -> int:
        """Populate the archive by sampling the engines directly.

        Writes, for every pool and every sample time: the zone placement
        score, the advisor measures (per (type, region), deduplicated), and
        optionally the spot price.  Returns records written (pre-dedup).
        """
        cloud = self.cloud
        archive = self.archive
        if archive.lake is not None:
            raise RuntimeError(
                "bulk_backfill bypasses the round-merge stage and is not "
                "supported in lake mode; collect through collect_once / "
                "run_collection instead")
        pool_list = list(pools) if pools is not None else self._selected_pools()
        pair_seen = set()
        pairs: List[Tuple[str, str]] = []
        for itype, region, _zone in pool_list:
            if (itype, region) not in pair_seen:
                pair_seen.add((itype, region))
                pairs.append((itype, region))
        written = 0
        # spotlint: disable=QUO001 -- the documented fast path (see class
        # docstring): research-scale backfill samples the engines directly;
        # both paths read the same deterministic engines, only the API
        # quota accounting is skipped (covers the engine reads below)
        for ts in sample_times:
            for itype, region, zone in pool_list:
                score = cloud.placement.zone_score(itype, region, zone, ts)  # spotlint: disable=QUO001
                archive.put_sps(itype, region, zone, score, ts)
                written += 1
                if include_price:
                    price = cloud.pricing.spot_price(itype, region, ts, zone)  # spotlint: disable=QUO001
                    archive.put_price(itype, region, zone, price, ts)
                    written += 1
            for itype, region in pairs:
                ratio = cloud.advisor.interruption_ratio(itype, region, ts)  # spotlint: disable=QUO001
                savings = cloud.advisor.savings_percent(itype, region, ts)  # spotlint: disable=QUO001
                archive.put_advisor(
                    itype, region, ratio, interruption_free_score(ratio),
                    savings, ts)
                written += 3
        return written
