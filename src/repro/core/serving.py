"""Serving layer: the API-gateway/Lambda-like front of SpotLake (Figure 2).

A user's HTTP-style request (path + query parameters) is routed by the
:class:`ApiGateway` to a handler function that reads the archive and
returns a JSON-able dict -- the same serverless shape as the real service
(API Gateway -> Lambda -> Timestream).  Parameter validation errors map to
status 400, unknown routes to 404.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .archive import (
    ADVISOR_TABLE,
    DIM_REGION,
    DIM_TYPE,
    DIM_ZONE,
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    PRICE_MEASURE,
    PRICE_TABLE,
    SAVINGS_MEASURE,
    SPS_MEASURE,
    SPS_TABLE,
    SpotLakeArchive,
)


@dataclass
class Response:
    """An HTTP-ish response envelope."""

    status: int
    body: dict

    def json(self) -> str:
        return json.dumps(self.body, sort_keys=True)


class BadRequest(ValueError):
    """Raised by handlers on invalid query parameters."""


def _require(params: Dict[str, str], key: str) -> str:
    value = params.get(key)
    if not value:
        raise BadRequest(f"missing required parameter {key!r}")
    return value


def _time_range(params: Dict[str, str]) -> tuple:
    try:
        start = float(_require(params, "start"))
        end = float(_require(params, "end"))
    except ValueError as exc:
        raise BadRequest(f"invalid time range: {exc}") from exc
    if end < start:
        raise BadRequest("end precedes start")
    return start, end


class LambdaHandlers:
    """The archive-reading functions behind each route."""

    def __init__(self, archive: SpotLakeArchive):
        self.archive = archive

    def _history_payload(self, table: str, measure: str,
                         params: Dict[str, str],
                         dims: List[str]) -> dict:
        start, end = _time_range(params)
        filters = {}
        for dim, param in ((DIM_TYPE, "instance_type"),
                           (DIM_REGION, "region"),
                           (DIM_ZONE, "zone")):
            if dim in dims and params.get(param):
                filters[dim] = params[param]
        records = self.archive.history(table, measure, filters, start, end)
        return {
            "measure": measure,
            "count": len(records),
            "rows": [
                {"time": r.time, "value": r.value, **r.dimension_dict}
                for r in records
            ],
        }

    def sps_history(self, params: Dict[str, str]) -> dict:
        """GET /sps/history -- placement score change points."""
        return self._history_payload(SPS_TABLE, SPS_MEASURE, params,
                                     [DIM_TYPE, DIM_REGION, DIM_ZONE])

    def advisor_history(self, params: Dict[str, str]) -> dict:
        """GET /advisor/history -- interruption-free score change points."""
        measure = params.get("measure", IF_SCORE_MEASURE)
        if measure not in (IF_SCORE_MEASURE, INTERRUPTION_RATIO_MEASURE,
                           SAVINGS_MEASURE):
            raise BadRequest(f"unknown advisor measure {measure!r}")
        return self._history_payload(ADVISOR_TABLE, measure, params,
                                     [DIM_TYPE, DIM_REGION])

    def price_history(self, params: Dict[str, str]) -> dict:
        """GET /price/history -- spot price change points."""
        return self._history_payload(PRICE_TABLE, PRICE_MEASURE, params,
                                     [DIM_TYPE, DIM_REGION, DIM_ZONE])

    def latest(self, params: Dict[str, str]) -> dict:
        """GET /latest -- current value of all three datasets for a pool."""
        itype = _require(params, "instance_type")
        region = _require(params, "region")
        zone = params.get("zone")
        try:
            at = float(_require(params, "at"))
        except ValueError as exc:
            raise BadRequest("invalid 'at' timestamp") from exc
        payload: dict = {
            "instance_type": itype,
            "region": region,
            "if_score": self.archive.if_score_at(itype, region, at),
            "savings": self.archive.savings_at(itype, region, at),
        }
        if zone:
            payload["zone"] = zone
            payload["sps"] = self.archive.sps_at(itype, region, zone, at)
            payload["spot_price"] = self.archive.price_at(itype, region, zone, at)
        return payload

    def stats(self, params: Dict[str, str]) -> dict:
        """GET /stats -- archive ingestion statistics."""
        return self.archive.stats()


class ApiGateway:
    """Routes paths to Lambda handlers, mapping errors to status codes."""

    def __init__(self, archive: SpotLakeArchive):
        self.handlers = LambdaHandlers(archive)
        self._routes: Dict[str, Callable[[Dict[str, str]], dict]] = {
            "/sps/history": self.handlers.sps_history,
            "/advisor/history": self.handlers.advisor_history,
            "/price/history": self.handlers.price_history,
            "/latest": self.handlers.latest,
            "/stats": self.handlers.stats,
        }

    def routes(self) -> List[str]:
        return sorted(self._routes)

    def get(self, path: str, params: Optional[Dict[str, str]] = None) -> Response:
        """Dispatch a GET request."""
        handler = self._routes.get(path)
        if handler is None:
            return Response(404, {"error": f"no route {path!r}"})
        try:
            return Response(200, handler(params or {}))
        except BadRequest as exc:
            return Response(400, {"error": str(exc)})
