"""Serving layer: the API-gateway/Lambda-like front of SpotLake (Figure 2).

A user's HTTP-style request (path + query parameters) is routed by the
:class:`ApiGateway` to a handler function that reads the archive and
returns a JSON-able dict -- the same serverless shape as the real service
(API Gateway -> Lambda -> Timestream).  Parameter validation errors map to
status 400, unknown routes to 404, handler crashes to a 500 envelope.

The read path is built for repeated dashboard-style traffic:

* record scans go through the archive's generation-stamped
  :class:`~repro.timeseries.cache.QueryCache`, and the *rendered* response
  rows are memoized under the same invalidation rule, so a repeated
  history query costs a dict probe plus a page slice;
* all ``/…/history`` routes paginate via ``limit`` and an opaque
  ``next_token`` cursor that is stable across later writes (it encodes
  the last row's sort position, not an offset);
* every dispatch is recorded in a :class:`~.metrics.MetricsRegistry`
  surfaced at ``/metrics``.
"""

from __future__ import annotations

import base64
import binascii
import json
import math
import threading
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..timeseries.vector import AGGREGATES, AggSpec
from .archive import (
    ADVISOR_TABLE,
    DIM_REGION,
    DIM_TYPE,
    DIM_ZONE,
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    PRICE_MEASURE,
    PRICE_TABLE,
    SAVINGS_MEASURE,
    SPS_MEASURE,
    SPS_TABLE,
    SpotLakeArchive,
)
from .metrics import MetricsRegistry

#: Sort position of one history row: (time, measure, dimension items).
#: ``Table.scan`` output is strictly increasing under this comparator
#: (stable time sort over series in (measure, dimensions) order), which
#: is what makes the pagination cursor stable across later writes.
CursorPos = Tuple[float, str, Tuple[Tuple[str, str], ...]]

_CURSOR_VERSION = 1


def _sanitize(value):
    """Map non-finite floats to None so the payload is spec-valid JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


@dataclass
class Response:
    """An HTTP-ish response envelope."""

    status: int
    body: dict

    def json(self) -> str:
        # allow_nan=False guarantees we never emit the bare NaN/Infinity
        # literals standards-compliant parsers reject; _sanitize maps any
        # non-finite measure to null first so serialization cannot fail.
        return json.dumps(_sanitize(self.body), sort_keys=True,
                          allow_nan=False)


class BadRequest(ValueError):
    """Raised by handlers on invalid query parameters."""


class NotFound(LookupError):
    """Raised by handlers when the addressed resource does not exist."""


#: Parameters every paginated history route accepts.
_HISTORY_COMMON_PARAMS = ("start", "end", "limit", "next_token")


def _validate_params(params: Dict[str, str], allowed) -> None:
    """Reject parameters no branch of the handler would read.

    A misspelled dimension filter (``instancetype=...``) would otherwise
    silently match *everything* -- the most dangerous possible default
    for a dataset API -- so unknown names are 400s, listed explicitly.
    """
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise BadRequest(
            "unknown parameter(s): " + ", ".join(repr(p) for p in unknown)
            + "; expected any of: " + ", ".join(repr(p) for p in
                                                sorted(allowed)))


def _require(params: Dict[str, str], key: str) -> str:
    value = params.get(key)
    if not value:
        raise BadRequest(f"missing required parameter {key!r}")
    return value


def _finite(raw: str, name: str) -> float:
    """Parse a finite timestamp; NaN/±inf are 400s, not silent matches."""
    try:
        value = float(raw)
    except ValueError as exc:
        raise BadRequest(f"invalid {name!r} timestamp: {raw!r}") from exc
    if not math.isfinite(value):
        raise BadRequest(f"non-finite {name!r} timestamp: {raw!r}")
    return value


def _time_range(params: Dict[str, str]) -> Tuple[float, float]:
    start = _finite(_require(params, "start"), "start")
    end = _finite(_require(params, "end"), "end")
    if end < start:
        raise BadRequest("end precedes start")
    return start, end


def _parse_limit(params: Dict[str, str]) -> Optional[int]:
    raw = params.get("limit")
    if raw is None:
        return None
    try:
        limit = int(raw)
    except ValueError as exc:
        raise BadRequest(f"invalid 'limit': {raw!r}") from exc
    if limit < 1:
        raise BadRequest("'limit' must be a positive integer")
    return limit


def encode_cursor(pos: CursorPos) -> str:
    """Opaque, stable pagination token for the row at ``pos``."""
    payload = {"v": _CURSOR_VERSION, "t": pos[0], "m": pos[1],
               "d": [list(item) for item in pos[2]]}
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return base64.urlsafe_b64encode(raw.encode("utf-8")).decode("ascii")


def decode_cursor(token: str) -> CursorPos:
    """Inverse of :func:`encode_cursor`; malformed tokens are 400s."""
    try:
        raw = base64.urlsafe_b64decode(token.encode("ascii"))
        payload = json.loads(raw.decode("utf-8"))
        if payload["v"] != _CURSOR_VERSION:
            raise BadRequest(f"unsupported cursor version {payload['v']!r}")
        return (float(payload["t"]), str(payload["m"]),
                tuple((str(k), str(v)) for k, v in payload["d"]))
    except BadRequest:
        raise
    except (ValueError, KeyError, TypeError, UnicodeDecodeError,
            binascii.Error) as exc:
        raise BadRequest(f"malformed 'next_token': {exc}") from exc


#: dataset name -> (table, allowed measures (first is the default),
#: dimension constants the dataset's series carry)
_ANALYTICS_DATASETS: Dict[str, Tuple[str, Tuple[str, ...], Tuple[str, ...]]] = {
    "sps": (SPS_TABLE, (SPS_MEASURE,), (DIM_TYPE, DIM_REGION, DIM_ZONE)),
    "advisor": (ADVISOR_TABLE,
                (IF_SCORE_MEASURE, INTERRUPTION_RATIO_MEASURE,
                 SAVINGS_MEASURE),
                (DIM_TYPE, DIM_REGION)),
    "price": (PRICE_TABLE, (PRICE_MEASURE,),
              (DIM_TYPE, DIM_REGION, DIM_ZONE)),
}

#: query-parameter name of each filterable/groupable dimension
_DIM_PARAMS: Tuple[Tuple[str, str], ...] = (
    (DIM_TYPE, "instance_type"), (DIM_REGION, "region"), (DIM_ZONE, "zone"))


def _encode_agg_cursor(label: Tuple[str, ...], bucket_start: float) -> str:
    """Pagination token for an /analytics row: (group label, bucket)."""
    payload = {"v": _CURSOR_VERSION, "k": "analytics", "g": list(label),
               "b": bucket_start}
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return base64.urlsafe_b64encode(raw.encode("utf-8")).decode("ascii")


def _decode_agg_cursor(token: str) -> Tuple[Tuple[str, ...], float]:
    """Inverse of :func:`_encode_agg_cursor`; malformed tokens are 400s."""
    try:
        raw = base64.urlsafe_b64decode(token.encode("ascii"))
        payload = json.loads(raw.decode("utf-8"))
        if payload["v"] != _CURSOR_VERSION or payload["k"] != "analytics":
            raise BadRequest("cursor is not an analytics cursor")
        return (tuple(str(v) for v in payload["g"]), float(payload["b"]))
    except BadRequest:
        raise
    except (ValueError, KeyError, TypeError, UnicodeDecodeError,
            binascii.Error) as exc:
        raise BadRequest(f"malformed 'next_token': {exc}") from exc


class LambdaHandlers:
    """The archive-reading functions behind each route."""

    def __init__(self, archive: SpotLakeArchive):
        self.archive = archive
        # fallback rows memo for cache-disabled archives: nothing is
        # memoized, rows are rendered per request
        self._render_calls = 0
        self._render_lock = threading.Lock()

    # -- history -------------------------------------------------------------

    def _rendered_rows(self, table: str, measure: str,
                       filters: Dict[str, str], start: float,
                       end: float) -> Tuple[List[dict], List[CursorPos]]:
        """All rendered rows + their cursor positions for one query slice.

        Memoized in the table's query cache (same generation-stamp rule as
        the records themselves), so repeated dashboard queries skip both
        the scan and the row rendering.
        """
        def render() -> Tuple[List[dict], List[CursorPos]]:
            with self._render_lock:
                self._render_calls += 1
            records = self.archive.history(table, measure, filters,
                                           start, end)
            rows = [{"time": r.time, "value": r.value, **r.dimension_dict}
                    for r in records]
            positions = [(r.time, r.measure_name, r.dimensions)
                         for r in records]
            return rows, positions

        cache = self.archive.query_cache(table)
        if cache is None:
            return render()
        return cache.derived("rows", measure, filters, (start, end), render)

    def _history_payload(self, table: str, measure: str,
                         params: Dict[str, str],
                         dims: List[str],
                         extra_params: Tuple[str, ...] = ()) -> dict:
        dim_params = [param for dim, param in
                      ((DIM_TYPE, "instance_type"), (DIM_REGION, "region"),
                       (DIM_ZONE, "zone")) if dim in dims]
        _validate_params(params, (*_HISTORY_COMMON_PARAMS, *dim_params,
                                  *extra_params))
        start, end = _time_range(params)
        limit = _parse_limit(params)
        token = params.get("next_token")
        filters = {}
        for dim, param in ((DIM_TYPE, "instance_type"),
                           (DIM_REGION, "region"),
                           (DIM_ZONE, "zone")):
            if dim in dims and params.get(param):
                filters[dim] = params[param]
        rows, positions = self._rendered_rows(table, measure, filters,
                                              start, end)
        begin = bisect_right(positions, decode_cursor(token)) if token else 0
        page = rows[begin:begin + limit] if limit is not None else rows[begin:]
        next_pos = begin + len(page)
        next_token = (encode_cursor(positions[next_pos - 1])
                      if page and next_pos < len(rows) else None)
        return {
            "measure": measure,
            "count": len(page),
            "total": len(rows),
            "rows": page,
            "next_token": next_token,
        }

    def sps_history(self, params: Dict[str, str]) -> dict:
        """GET /sps/history -- placement score change points."""
        return self._history_payload(SPS_TABLE, SPS_MEASURE, params,
                                     [DIM_TYPE, DIM_REGION, DIM_ZONE])

    def advisor_history(self, params: Dict[str, str]) -> dict:
        """GET /advisor/history -- interruption-free score change points."""
        measure = params.get("measure", IF_SCORE_MEASURE)
        if measure not in (IF_SCORE_MEASURE, INTERRUPTION_RATIO_MEASURE,
                           SAVINGS_MEASURE):
            raise BadRequest(f"unknown advisor measure {measure!r}")
        return self._history_payload(ADVISOR_TABLE, measure, params,
                                     [DIM_TYPE, DIM_REGION],
                                     extra_params=("measure",))

    def price_history(self, params: Dict[str, str]) -> dict:
        """GET /price/history -- spot price change points."""
        return self._history_payload(PRICE_TABLE, PRICE_MEASURE, params,
                                     [DIM_TYPE, DIM_REGION, DIM_ZONE])

    # -- point reads ---------------------------------------------------------

    def latest(self, params: Dict[str, str]) -> dict:
        """GET /latest -- current value of all three datasets for a pool."""
        itype = _require(params, "instance_type")
        region = _require(params, "region")
        zone = params.get("zone")
        at = _finite(_require(params, "at"), "at")
        payload: dict = {
            "instance_type": itype,
            "region": region,
            "if_score": self.archive.if_score_at(itype, region, at),
            "savings": self.archive.savings_at(itype, region, at),
        }
        if zone:
            payload["zone"] = zone
            payload["sps"] = self.archive.sps_at(itype, region, zone, at)
            payload["spot_price"] = self.archive.price_at(itype, region, zone, at)
        return payload

    def stats(self, params: Dict[str, str]) -> dict:
        """GET /stats -- archive ingestion statistics."""
        return self.archive.stats()

    # -- cold-tier round browsing ---------------------------------------------

    def rounds(self, date: str, params: Dict[str, str]) -> dict:
        """GET /rounds/<YYYY-MM-DD> -- archived rounds of one lake day.

        Without ``at``: the day's archived round commit times.  With
        ``at=<time>``: additionally the wide merged per-pool rows of that
        round (the paper's merged record shape), paged by ``limit`` and
        ``offset``.  404 when the service runs without a cold lake tier.
        """
        lake = self.archive.lake
        if lake is None:
            raise NotFound("this deployment has no cold lake tier")
        _validate_params(params, ("at", "limit", "offset"))
        parts = date.split("-")
        if len(parts) != 3 or [len(p) for p in parts] != [4, 2, 2] or \
                not all(p.isdigit() for p in parts):
            raise BadRequest(f"invalid date {date!r}; expected YYYY-MM-DD")
        times = lake.rounds_on(date)
        payload: dict = {"date": date, "rounds": times, "count": len(times)}
        raw_at = params.get("at")
        if raw_at:
            at = _finite(raw_at, "at")
            if at not in times:
                raise NotFound(f"no archived round at t={raw_at} on {date}")
            rows = lake.round_snapshot(at)
            limit = _parse_limit(params)
            offset = 0
            raw_offset = params.get("offset")
            if raw_offset is not None:
                try:
                    offset = int(raw_offset)
                except ValueError as exc:
                    raise BadRequest(
                        f"invalid 'offset': {raw_offset!r}") from exc
                if offset < 0:
                    raise BadRequest("'offset' must be >= 0")
            page = rows[offset:offset + limit] if limit is not None \
                else rows[offset:]
            payload["round"] = {
                "time": at,
                "total": len(rows),
                "count": len(page),
                "offset": offset,
                "rows": page,
            }
        return payload

    # -- analytics -----------------------------------------------------------

    def _analytics_rows(self, spec: AggSpec, param_of: Dict[str, str],
                        ) -> Tuple[List[dict],
                                   List[Tuple[Tuple[str, ...], float]]]:
        """Rendered aggregate rows + their cursor positions for one spec.

        Rows are ordered by (group label, bucket start) and carry only
        populated cells (observed rows, or step-function cover for
        ``twa_mean``), so sparse group/bucket grids stay small.  The
        rendering is memoized in the table's query cache under the same
        generation-stamp rule as record scans; the engine result behind
        it has its own memo, so only the first request per generation
        touches the kernels.
        """
        def render() -> Tuple[List[dict],
                              List[Tuple[Tuple[str, ...], float]]]:
            result = self.archive.analytics.run(spec)
            tables = result.tables
            edges = result.edges
            count = result.count
            cover = result.cover
            rows: List[dict] = []
            positions: List[Tuple[Tuple[str, ...], float]] = []
            for g, label in enumerate(result.group_labels):
                group_dims = {param_of[dim]: label[i]
                              for i, dim in enumerate(spec.group_by)}
                for b in range(result.n_buckets):
                    populated = count[g, b] > 0 or (
                        cover is not None and cover[g, b] > 0)
                    if not populated:
                        continue
                    row = dict(group_dims)
                    row["bucket_start"] = float(edges[b])
                    row["bucket_end"] = float(edges[b + 1])
                    for agg in spec.aggregates:
                        cell = tables[agg][g, b]
                        # count-like aggregates are integer tables; keep
                        # them integers in the JSON payload
                        row[agg] = (int(cell)
                                    if agg in ("count", "change_count")
                                    else float(cell))
                    rows.append(row)
                    positions.append((label, float(edges[b])))
            return rows, positions

        cache = self.archive.query_cache(spec.table)
        if cache is None:
            return render()
        return cache.derived(
            "analytics", spec.measure, dict(spec.filters) or None,
            (spec.start, spec.end, spec.bucket_seconds, spec.group_by,
             spec.aggregates), render)

    def analytics(self, params: Dict[str, str]) -> dict:
        """GET /analytics -- bucketed group-by aggregates over both tiers."""
        dataset = _require(params, "dataset")
        entry = _ANALYTICS_DATASETS.get(dataset)
        if entry is None:
            raise BadRequest(
                f"unknown dataset {dataset!r}; expected one of: "
                + ", ".join(repr(d) for d in sorted(_ANALYTICS_DATASETS)))
        table, measures, dims = entry
        dim_param = {dim: param for dim, param in _DIM_PARAMS if dim in dims}
        _validate_params(params, ("dataset", "measure", "bucket", "group_by",
                                  "agg", *_HISTORY_COMMON_PARAMS,
                                  *dim_param.values()))
        measure = params.get("measure", measures[0])
        if measure not in measures:
            raise BadRequest(
                f"unknown {dataset!r} measure {measure!r}; expected one "
                "of: " + ", ".join(repr(m) for m in measures))
        start, end = _time_range(params)
        bucket: Optional[float] = None
        raw_bucket = params.get("bucket")
        if raw_bucket is not None:
            bucket = _finite(raw_bucket, "bucket")
            if bucket <= 0:
                raise BadRequest("'bucket' must be a positive number "
                                 "of seconds")
        param_dim = {param: dim for dim, param in dim_param.items()}
        group_by: List[str] = []
        raw_group = params.get("group_by")
        if raw_group:
            for name in raw_group.split(","):
                dim = param_dim.get(name.strip())
                if dim is None:
                    raise BadRequest(
                        f"cannot group {dataset!r} by {name.strip()!r}; "
                        "expected any of: "
                        + ", ".join(repr(p) for p in sorted(param_dim)))
                group_by.append(dim)
        aggregates = ("mean", "count")
        raw_agg = params.get("agg")
        if raw_agg:
            parsed = tuple(a.strip() for a in raw_agg.split(","))
            unknown = [a for a in parsed if a not in AGGREGATES]
            if unknown:
                raise BadRequest(
                    "unknown aggregate(s): "
                    + ", ".join(repr(a) for a in unknown)
                    + "; expected any of: "
                    + ", ".join(repr(a) for a in AGGREGATES))
            aggregates = parsed
        filters = {dim: params[param]
                   for dim, param in dim_param.items() if params.get(param)}
        limit = _parse_limit(params)
        token = params.get("next_token")
        spec = AggSpec.make(table, measure, start, end, bucket_seconds=bucket,
                            group_by=group_by, aggregates=aggregates,
                            filters=filters)
        param_of = {dim: param for dim, param in _DIM_PARAMS}
        rows, positions = self._analytics_rows(spec, param_of)
        begin = (bisect_right(positions, _decode_agg_cursor(token))
                 if token else 0)
        page = rows[begin:begin + limit] if limit is not None else rows[begin:]
        next_pos = begin + len(page)
        next_token = (_encode_agg_cursor(*positions[next_pos - 1])
                      if page and next_pos < len(rows) else None)
        return {
            "dataset": dataset,
            "measure": measure,
            "start": start,
            "end": end,
            "bucket_seconds": bucket,
            "group_by": [dim_param[d] for d in group_by],
            "aggregates": list(aggregates),
            "count": len(page),
            "total": len(rows),
            "rows": page,
            "next_token": next_token,
        }


class ApiGateway:
    """Routes paths to Lambda handlers, mapping errors to status codes.

    Every dispatch (including 404s and crashes) is recorded in the
    metrics registry; ``/metrics`` serves the live snapshot plus the
    archive's cache counters.
    """

    def __init__(self, archive: SpotLakeArchive,
                 metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.handlers = LambdaHandlers(archive)
        self._routes: Dict[str, Callable[[Dict[str, str]], dict]] = {
            "/sps/history": self.handlers.sps_history,
            "/advisor/history": self.handlers.advisor_history,
            "/price/history": self.handlers.price_history,
            "/latest": self.handlers.latest,
            "/stats": self.handlers.stats,
            "/analytics": self.handlers.analytics,
            "/metrics": self._metrics_payload,
        }

    def _metrics_payload(self, params: Dict[str, str]) -> dict:
        """GET /metrics -- serving observability snapshot."""
        payload = self.metrics.snapshot()
        payload["cache"] = self.handlers.archive.cache_stats()
        payload["analytics"] = self.handlers.archive.analytics.stats()
        return payload

    def routes(self) -> List[str]:
        return sorted([*self._routes, "/rounds/<date>"])

    def get(self, path: str, params: Optional[Dict[str, str]] = None,
            tenant: Optional[str] = None) -> Response:
        """Dispatch a GET request.

        The whole dispatch -- route resolution included -- runs inside
        the error envelope: a crash *before* a route is resolved (e.g.
        an unhashable path object blowing up the route lookup) still
        yields a counted 500 under the shared ``<unknown>`` label
        instead of escaping with no envelope and no metrics sample,
        and a crash after resolution keeps its real route label.
        """
        started = self.metrics.clock()
        # one shared label keeps route cardinality in /metrics bounded;
        # it sticks until a real route is resolved so pre-resolution
        # crashes are still attributed somewhere
        route = "<unknown>"
        try:
            handler = self._routes.get(path)
            operand: Optional[str] = None
            if handler is None and isinstance(path, str) and \
                    path.startswith("/rounds/"):
                # the one parameterized route; the shared "<date>" label
                # keeps per-day paths from exploding /metrics cardinality
                route = "/rounds/<date>"
                operand = path[len("/rounds/"):]
                handler = self.handlers.rounds
            if handler is None:
                response = Response(404, {"error": f"no route {path!r}"})
            else:
                if operand is None:
                    route = path
                try:
                    body = (handler(params or {}) if operand is None
                            else handler(operand, params or {}))
                    response = Response(200, body)
                except BadRequest as exc:
                    response = Response(400, {"error": str(exc)})
                except NotFound as exc:
                    response = Response(404, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 -- the 500 envelope
            response = Response(500, {
                "error": "internal server error",
                "exception": type(exc).__name__,
            })
        rows = response.body.get("count") if response.status == 200 else 0
        self.metrics.observe(route, response.status,
                             rows if isinstance(rows, int) else 0,
                             self.metrics.clock() - started,
                             tenant=tenant)
        return response
