"""spotlint: AST-based invariant checking for the SpotLake reproduction.

The language cannot enforce the properties the reproduction rests on --
seed/clock determinism of the simulated substrate, the paper's SPS query
quota, the package layering of DESIGN.md -- so this package checks them
statically at lint time:

=======  ==============================================================
DET001   wall-clock reads where the simulation Clock is the time source
DET002   unseeded / process-global randomness
DET003   PYTHONHASHSEED-dependent ordering escaping into output
QUO001   dataset reads bypassing the quota-enforcing Ec2Client
LAY001   imports violating the declared package DAG
CLK001   archive writes timestamped from the host wall clock
=======  ==============================================================

Run it via ``python -m repro.cli lint src/repro`` or programmatically via
:func:`lint_paths`.  A runtime companion, :mod:`repro.devtools.doublerun`,
executes a seeded collection round twice and byte-compares the archive
snapshots.
"""

from .config import ConfigError, LintConfig, config_from_table, load_config
from .engine import discover_files, lint_paths, lint_source
from .findings import Finding, LintResult
from .registry import FileContext, Rule, make_rules, registered_codes, rule
from .reporters import render_json, render_text, write_report

__all__ = [
    "ConfigError", "LintConfig", "config_from_table", "load_config",
    "discover_files", "lint_paths", "lint_source",
    "Finding", "LintResult",
    "FileContext", "Rule", "make_rules", "registered_codes", "rule",
    "render_json", "render_text", "write_report",
]
