"""Analytics benchmark harness: vectorized pushdown vs the row path.

Four questions decide whether the vectorized analytics engine earns its
keep:

1. **Cold bucketed aggregation** -- a compacted, retention-evicted lake
   is aggregated through the columnar ``scan_columns`` pushdown and
   through the row-at-a-time reference (``archive.history`` + a Python
   accumulation loop, the pre-engine implementation).  Gate: >= 5x, and
   the two answers must agree numerically.
2. **Hot heatmap construction** -- Figure 3's temporal heatmap over a
   backfilled archive, new single-resample engine path vs the old
   day-at-a-time, value-at-a-time loop (kept here as ``_reference_*``
   oracles).  Gate: >= 3x with byte-identical matrices.
3. **Rollup-warm repeats** -- a day-aligned hot aggregation repeated
   against an unchanged archive must hit the generation-stamped result
   memo.  Gate: >= 10x over the first (cold) evaluation; after an
   append, cached per-day partials must carry most of the recompute.
4. **Worker byte-identity** -- the same ``/analytics`` request mix
   served through 1/2/4 frontend workers must produce byte-identical
   response streams.

A fifth, ungated section times ``SpotDataLake.scan`` over an
*uncompacted* multi-partition window -- the workload the heap-based
k-way run merge in ``lake.store`` exists for.

Lives in ``devtools`` (not ``analysis``) because it times with the
*host* clock: benchmarking latency is meta-observation, outside the
simulation's seed+clock determinism envelope.
"""

from __future__ import annotations

import math
import shutil
import tempfile
import time
from bisect import bisect_right
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.archive import (
    DIM_TYPE,
    DIM_ZONE,
    SPS_MEASURE,
    SPS_TABLE,
    SpotLakeArchive,
)
from ..core.service import SpotLakeService
from ..timeseries import AggSpec, RetentionPolicy, SeriesKey
from ..timeseries.table import Table
from .frontendbench import bench_tenants, run_closed_loop
from .lakebench import (
    BENCH_REGION,
    COLD_INTERVAL,
    COLD_ROUNDS,
    COLD_TYPES,
    DEFAULT_ZONES,
    EPOCH,
    _dense_round,
    _drive_churn_round,
)
from .servebench import build_backfilled_service

DAY = 86400.0

#: Cold-aggregation workload: dense churn (every series changes every
#: round) evicted deep enough that the timed window is served purely
#: cold -- big enough that per-row work, not fixed overhead, dominates.
COLD_AGG_ROUNDS = 96
COLD_AGG_TYPES = 60
#: Wide enough that the workload spans multiple UTC days, so compaction
#: yields several day partitions and the narrow-window probe has
#: whole partitions for the zone maps to prune.
COLD_AGG_INTERVAL = 1800.0
COLD_AGG_RETENTION_ROUNDS = 12
COLD_AGG_CHURN = 1

#: Aggregates exercised by the timed cold comparison (all of them).
COLD_AGGREGATES = ("count", "min", "max", "mean", "sum", "std", "last",
                   "change_count", "mean_interval", "twa_mean")

#: Baseline lookback used by the reference oracle (finite stand-in for
#: "the beginning of time"; the simulation epoch is 2022).
_EARLY = -1.0e15


# -- row-at-a-time reference implementations (the oracles) -----------------


def reference_aggregate(archive: SpotLakeArchive, spec: AggSpec) -> dict:
    """The pre-engine answer: ``archive.history`` rows + Python loops.

    Semantically ground truth: rows are read through the federated
    row path and accumulated series-major in time order with plain
    Python floats -- the same accumulation order the vectorized kernels
    use, so single-tier sums agree bit-for-bit and cross-tier merges
    agree to rounding.
    """
    table = archive.store.table(spec.table)
    filters = dict(spec.filters) or None
    keys = table.series_keys(spec.measure, filters)
    group_of, labels = _reference_groups(keys, spec.group_by)
    n_groups = max(len(labels), 1)
    edges = _reference_edges(spec)
    nb = len(edges) - 1

    rows = archive.history(spec.table, spec.measure, dict(spec.filters),
                           spec.start, spec.end)
    earlier = archive.history(spec.table, spec.measure, dict(spec.filters),
                              _EARLY, spec.start)
    row_of = {key.dimensions: i for i, key in enumerate(keys)}
    per_series: List[List] = [[] for _ in keys]
    for r in rows:
        per_series[row_of[r.dimensions]].append(r)
    baseline: List[Optional[float]] = [None] * len(keys)
    for r in earlier:
        if r.time < spec.start:
            baseline[row_of[r.dimensions]] = float(r.value)

    def cells(fill):
        return [[fill] * nb for _ in range(n_groups)]

    count = cells(0)
    vsum = cells(0.0)
    vsumsq = cells(0.0)
    vmin = cells(math.inf)
    vmax = cells(-math.inf)
    last_key = cells(None)
    last_val = cells(math.nan)
    changes = cells(0)
    ivl_sum = cells(0.0)
    ivl_count = cells(0)
    area = cells(0.0)
    cover = cells(0.0)

    for i, srows in enumerate(per_series):
        g = group_of[i]
        if g < 0:
            continue
        prev_t: Optional[float] = None
        for j, r in enumerate(srows):
            t, v = float(r.time), float(r.value)
            b = min(max(bisect_right(edges, t) - 1, 0), nb - 1)
            count[g][b] += 1
            vsum[g][b] += v
            vsumsq[g][b] += v * v
            vmin[g][b] = min(vmin[g][b], v)
            vmax[g][b] = max(vmax[g][b], v)
            if last_key[g][b] is None or (t, i) >= last_key[g][b]:
                last_key[g][b] = (t, i)
                last_val[g][b] = v
            if j > 0 or baseline[i] is not None:
                changes[g][b] += 1
            if prev_t is not None:
                ivl_sum[g][b] += t - prev_t
                ivl_count[g][b] += 1
            prev_t = t
        if spec.wants_twa:
            _reference_step_area(srows, baseline[i], spec, edges,
                                 area[g], cover[g])

    tables: Dict[str, np.ndarray] = {}
    for agg in spec.aggregates:
        out = np.full((n_groups, nb), np.nan)
        for g in range(n_groups):
            for b in range(nb):
                n = count[g][b]
                if agg == "count":
                    out[g, b] = n
                elif agg == "change_count":
                    out[g, b] = changes[g][b]
                elif n and agg == "sum":
                    out[g, b] = vsum[g][b]
                elif n and agg == "min":
                    out[g, b] = vmin[g][b]
                elif n and agg == "max":
                    out[g, b] = vmax[g][b]
                elif n and agg == "mean":
                    out[g, b] = vsum[g][b] / n
                elif n and agg == "std":
                    mean = vsum[g][b] / n
                    out[g, b] = math.sqrt(
                        max(vsumsq[g][b] / n - mean * mean, 0.0))
                elif n and agg == "last":
                    out[g, b] = last_val[g][b]
                elif agg == "mean_interval" and ivl_count[g][b]:
                    out[g, b] = ivl_sum[g][b] / ivl_count[g][b]
                elif agg == "twa_mean" and cover[g][b] > 0:
                    out[g, b] = area[g][b] / cover[g][b]
        tables[agg] = out
    return {"labels": labels, "edges": edges, "tables": tables}


def _reference_edges(spec: AggSpec) -> List[float]:
    if spec.bucket_seconds is None:
        return [spec.start, spec.end]
    n = max(int(math.ceil((spec.end - spec.start) / spec.bucket_seconds)), 1)
    edges = [min(spec.start + spec.bucket_seconds * i, spec.end)
             for i in range(n + 1)]
    for i in range(1, len(edges)):
        edges[i] = max(edges[i], edges[i - 1])
    return edges


def _reference_groups(keys: Sequence[SeriesKey], group_by: Sequence[str],
                      ) -> Tuple[List[int], Tuple[Tuple[str, ...], ...]]:
    assigned: List[Tuple[int, Tuple[str, ...]]] = []
    for i, key in enumerate(keys):
        dims = key.dimension_dict
        if all(dim in dims for dim in group_by):
            assigned.append((i, tuple(dims[d] for d in group_by)))
    labels = tuple(sorted({label for _, label in assigned}))
    index = {label: g for g, label in enumerate(labels)}
    group_of = [-1] * len(keys)
    for i, label in assigned:
        group_of[i] = index[label]
    return group_of, labels


def _reference_step_area(srows, base: Optional[float], spec: AggSpec,
                         edges: List[float], area: List[float],
                         cover: List[float]) -> None:
    """Per-bucket step-function integral of one series, piecewise."""
    if base is not None:
        knots = [spec.start] + [float(r.time) for r in srows]
        levels = [base] + [float(r.value) for r in srows]
    else:
        knots = [float(r.time) for r in srows]
        levels = [float(r.value) for r in srows]
    if not knots or knots[0] >= spec.end:
        return
    for b in range(len(edges) - 1):
        lo = min(max(edges[b], knots[0]), spec.end)
        hi = min(max(edges[b + 1], knots[0]), spec.end)
        cover[b] += hi - lo
        for s in range(len(knots)):
            seg_end = knots[s + 1] if s + 1 < len(knots) else spec.end
            left = max(lo, knots[s])
            right = min(hi, seg_end)
            if right > left:
                area[b] += levels[s] * (right - left)


def compare_aggregates(result, reference: dict,
                       float_rtol: float = 1.0e-9) -> dict:
    """Numeric-identity check between an AggResult and the reference.

    Integer-valued and order-statistic aggregates must match exactly;
    accumulated floats must agree within ``float_rtol`` (cross-tier
    merges and the two twa integral formulations reassociate float
    additions, which exact equality would spuriously flag).
    """
    if tuple(result.group_labels) != tuple(reference["labels"]):
        return {"identical": False, "max_rel_err": math.inf,
                "mismatch": "group labels differ"}
    if not np.allclose(result.edges, np.asarray(reference["edges"]),
                       rtol=0, atol=0):
        return {"identical": False, "max_rel_err": math.inf,
                "mismatch": "bucket edges differ"}
    exact = ("count", "min", "max", "last", "change_count")
    max_rel = 0.0
    for agg, ref in reference["tables"].items():
        got = result.tables[agg]
        got_nan = np.isnan(got)
        ref_nan = np.isnan(ref)
        if not np.array_equal(got_nan, ref_nan):
            return {"identical": False, "max_rel_err": math.inf,
                    "mismatch": f"{agg}: NaN patterns differ"}
        g = got[~got_nan]
        r = ref[~ref_nan]
        if agg in exact:
            if not np.array_equal(g, r):
                return {"identical": False, "max_rel_err": math.inf,
                        "mismatch": f"{agg}: exact values differ"}
        elif g.size:
            denom = np.abs(r)
            if agg == "std" and "mean" in reference["tables"]:
                # std is a cancellation of O(mean^2) moments, so its
                # absolute error floor is eps*|mean|, not eps*|std|;
                # measure the error against the moment scale
                mean_ref = np.asarray(
                    reference["tables"]["mean"])[~ref_nan]
                denom = np.maximum(denom, np.abs(mean_ref))
            rel = np.abs(g - r) / np.maximum(denom, 1.0e-30)
            max_rel = max(max_rel, float(rel.max()))
    return {"identical": max_rel <= float_rtol, "max_rel_err": max_rel,
            "mismatch": None}


def _reference_resample_matrix(table: Table, measure_name: str,
                               sample_times: Sequence[float],
                               filters=None):
    """The old value-at-a-time resample loop (pre-vectorization)."""
    keys = table.series_keys(measure_name, filters)
    matrix = np.full((len(keys), len(sample_times)), np.nan)
    for row, key in enumerate(keys):
        series = table.series(key)
        assert series is not None
        for col, value in enumerate(series.resample(sample_times)):
            if value is None:
                continue
            if isinstance(value, str):
                raise TypeError(f"series {key} holds strings; resample "
                                f"numeric measures only")
            matrix[row, col] = float(value)
    return keys, matrix


def _reference_temporal_heatmap(archive: SpotLakeArchive, catalog,
                                day_times, dataset: str = "sps"):
    """The old day-at-a-time Figure-3 construction (pre-engine)."""
    from ..analysis.heatmaps import Heatmap, _class_of

    measure_table = {"sps": (archive.sps, SPS_MEASURE)}
    if dataset == "if_score":
        from ..core.archive import IF_SCORE_MEASURE
        measure_table["if_score"] = (archive.advisor, IF_SCORE_MEASURE)
    table, measure = measure_table[dataset]
    classes = catalog.classes
    class_row = {c: i for i, c in enumerate(classes)}
    n_days = len(day_times)
    sums = np.zeros((len(classes), n_days))
    counts = np.zeros((len(classes), n_days))
    for d, times in enumerate(day_times):
        keys, matrix = _reference_resample_matrix(table, measure, times)
        for row, key in enumerate(keys):
            cls = _class_of(catalog, key)
            if cls is None:
                continue
            vals = matrix[row]
            good = ~np.isnan(vals)
            if good.any():
                sums[class_row[cls], d] += vals[good].sum()
                counts[class_row[cls], d] += good.sum()
    with np.errstate(invalid="ignore"):
        values = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return Heatmap(list(classes), [f"day{i}" for i in range(n_days)], values)


def _reference_row_means(heatmap) -> Dict[str, float]:
    out = {}
    for i, label in enumerate(heatmap.row_labels):
        row = heatmap.values[i]
        if not np.all(np.isnan(row)):
            out[label] = float(np.nanmean(row))
    return out


def _reference_temporal_std(heatmap) -> float:
    stds = [float(np.nanstd(heatmap.values[i]))
            for i in range(len(heatmap.row_labels))
            if not np.all(np.isnan(heatmap.values[i]))]
    return float(np.mean(stds)) if stds else float("nan")


# -- bench sections --------------------------------------------------------


def _bench_cold_aggregation(base: Path, repeats: int) -> dict:
    """Columnar pushdown vs the row path on a purely-cold window."""
    archive = SpotLakeArchive(
        data_dir=base / "coldagg", checkpoint_every=4, lake=True,
        cache=False,
        retention=RetentionPolicy(
            max_age_seconds=COLD_AGG_RETENTION_ROUNDS * COLD_AGG_INTERVAL))
    for r in range(COLD_AGG_ROUNDS):
        _drive_churn_round(archive, r, COLD_AGG_TYPES, DEFAULT_ZONES,
                           COLD_AGG_INTERVAL, churn=COLD_AGG_CHURN)
    archive.lake.compact(include_active=True)
    boundary = archive.evicted_through(SPS_TABLE)
    assert boundary is not None and boundary > EPOCH
    spec = AggSpec.make(SPS_TABLE, SPS_MEASURE, EPOCH, float(boundary),
                        bucket_seconds=COLD_AGG_INTERVAL * 6,
                        group_by=(DIM_TYPE,), aggregates=COLD_AGGREGATES)

    vec_s = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = archive.analytics.run(spec)
        vec_s = min(vec_s, time.perf_counter() - started)
    ref_s = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        reference = reference_aggregate(archive, spec)
        ref_s = min(ref_s, time.perf_counter() - started)
    identity = compare_aggregates(result, reference)
    counters = archive.analytics.stats()

    # a narrow interior window exercises the zone maps: partitions and
    # chunks wholly outside [narrow_start, narrow_end] must be pruned,
    # not decoded, and the pruned result must still match the row fold
    narrow = AggSpec.make(
        SPS_TABLE, SPS_MEASURE, EPOCH + 2 * COLD_AGG_INTERVAL,
        EPOCH + 8 * COLD_AGG_INTERVAL, bucket_seconds=COLD_AGG_INTERVAL,
        group_by=(DIM_TYPE,), aggregates=COLD_AGGREGATES)
    narrow_result = archive.analytics.run(narrow)
    narrow_identity = compare_aggregates(
        narrow_result, reference_aggregate(archive, narrow))
    after_narrow = archive.analytics.stats()
    narrow_pruned = (
        after_narrow["chunks_pruned"] - counters["chunks_pruned"]
        + after_narrow["partitions_pruned"] - counters["partitions_pruned"])
    archive.close()
    return {
        "narrow_pruned": narrow_pruned,
        "narrow_identical": narrow_identity["identical"],
        "rounds": COLD_AGG_ROUNDS,
        "series": COLD_AGG_TYPES * DEFAULT_ZONES,
        "groups": len(result.group_labels),
        "buckets": result.n_buckets,
        "boundary": boundary,
        "aggregates": list(COLD_AGGREGATES),
        "rows_decoded": counters["rows_decoded"],
        "chunks_pruned": counters["chunks_pruned"],
        "chunks_decoded": counters["chunks_decoded"],
        "vector_seconds": vec_s,
        "row_seconds": ref_s,
        "speedup": ref_s / vec_s if vec_s > 0 else float("inf"),
        "identical": identity["identical"],
        "max_rel_err": identity["max_rel_err"],
        "mismatch": identity["mismatch"],
    }


#: Hot-heatmap workload shape (a scaled-down benchmarks/conftest grid).
HEATMAP_DAYS = 45
HEATMAP_POOL_TYPES = 12
HEATMAP_SAMPLES_PER_DAY = 2


def _bench_hot_heatmap(repeats: int) -> dict:
    """Figure-3 temporal heatmap, engine path vs the old row loop."""
    from ..analysis.heatmaps import temporal_heatmap

    service = build_backfilled_service(seed=0, days=HEATMAP_DAYS,
                                       pool_types=HEATMAP_POOL_TYPES,
                                       samples_per_day=HEATMAP_SAMPLES_PER_DAY)
    catalog = service.cloud.catalog
    start = service.cloud.clock.start
    day_times = [[start + d * DAY + s * (DAY / HEATMAP_SAMPLES_PER_DAY)
                  + 3600.0 for s in range(HEATMAP_SAMPLES_PER_DAY)]
                 for d in range(HEATMAP_DAYS)]
    archive = service.archive

    new_s = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        new = temporal_heatmap(archive, catalog, day_times, "sps")
        new_s = min(new_s, time.perf_counter() - started)
    old_s = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        old = _reference_temporal_heatmap(archive, catalog, day_times, "sps")
        old_s = min(old_s, time.perf_counter() - started)

    identical = (
        np.array_equal(new.values, old.values, equal_nan=True)
        and new.row_labels == old.row_labels
        and new.col_labels == old.col_labels
        and new.row_means() == _reference_row_means(old)
        and (new.temporal_std() == _reference_temporal_std(old)
             or (math.isnan(new.temporal_std())
                 and math.isnan(_reference_temporal_std(old)))))
    return {
        "days": HEATMAP_DAYS,
        "pool_types": HEATMAP_POOL_TYPES,
        "cells": int(new.values.size),
        "engine_seconds": new_s,
        "row_seconds": old_s,
        "speedup": old_s / new_s if new_s > 0 else float("inf"),
        "byte_identical": bool(identical),
    }


#: Rollup workload shape: a month of day-aligned hot history.
ROLLUP_DAYS = 30
ROLLUP_TYPES = 12
ROLLUP_SAMPLES_PER_DAY = 8
ROLLUP_WARM_REPEATS = 25


def _bench_rollup() -> dict:
    """Result-memo warm repeats vs the first evaluation; partial reuse."""
    archive = SpotLakeArchive()
    t = EPOCH
    for d in range(ROLLUP_DAYS):
        for s in range(ROLLUP_SAMPLES_PER_DAY):
            t = EPOCH + d * DAY + s * (DAY / ROLLUP_SAMPLES_PER_DAY)
            for p in range(ROLLUP_TYPES):
                for z in range(DEFAULT_ZONES):
                    pool = p * DEFAULT_ZONES + z
                    archive.put_sps(f"bench{p}.large", BENCH_REGION,
                                    f"{BENCH_REGION}{chr(ord('a') + z)}",
                                    (d + s + pool) % 3 + 1, t)
    end = EPOCH + ROLLUP_DAYS * DAY
    spec = AggSpec.make(SPS_TABLE, SPS_MEASURE, EPOCH, end,
                        bucket_seconds=DAY, group_by=(DIM_TYPE,),
                        aggregates=("count", "mean", "min", "max", "std",
                                    "change_count", "twa_mean"))

    started = time.perf_counter()
    first = archive.analytics.run(spec)
    cold_s = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(ROLLUP_WARM_REPEATS):
        archive.analytics.run(spec)
    warm_s = (time.perf_counter() - started) / ROLLUP_WARM_REPEATS
    stats_before = archive.analytics.stats()

    # one appended round invalidates the result memo; day partials for
    # the untouched days must be reused
    archive.put_sps("bench0.large", BENCH_REGION, f"{BENCH_REGION}a",
                    9, end - 1.0)
    wider = AggSpec.make(SPS_TABLE, SPS_MEASURE, EPOCH, end,
                         bucket_seconds=DAY, group_by=(DIM_TYPE,),
                         aggregates=spec.aggregates)
    after_append = archive.analytics.run(wider)
    stats_after = archive.analytics.stats()
    hits = stats_after["rollup_day_hits"] - stats_before["rollup_day_hits"]
    recomputes = (stats_after["rollup_day_recomputes"]
                  - stats_before["rollup_day_recomputes"])
    touched = hits + recomputes
    # the partially-reused result must still match the full row fold
    identity = compare_aggregates(after_append,
                                  reference_aggregate(archive, wider))
    return {
        "identical": identity["identical"],
        "max_rel_err": identity["max_rel_err"],
        "days": ROLLUP_DAYS,
        "series": ROLLUP_TYPES * DEFAULT_ZONES,
        "buckets": first.n_buckets,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_repeats": ROLLUP_WARM_REPEATS,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "after_append_day_hits": hits,
        "after_append_day_recomputes": recomputes,
        "partial_reuse_ratio": hits / touched if touched else 0.0,
        "result_hits": stats_after["result_hits"],
    }


#: Worker-identity workload shape.
IDENTITY_DAYS = 20
IDENTITY_POOL_TYPES = 6
WORKER_COUNTS = (1, 2, 4)


def _analytics_mix(service: SpotLakeService) -> List[Tuple[str, Dict[str, str]]]:
    start = service.cloud.clock.start
    now = service.cloud.clock.now()
    base = {"start": str(start - 1.0), "end": str(now + 1.0)}
    mix = [
        ("/analytics", {**base, "dataset": "sps", "bucket": str(DAY),
                        "group_by": "region", "agg": "count,mean,std"}),
        ("/analytics", {**base, "dataset": "advisor",
                        "agg": "mean,min,max"}),
        ("/analytics", {**base, "dataset": "price", "bucket": str(2 * DAY),
                        "group_by": "instance_type,region",
                        "agg": "mean,last,twa_mean"}),
        ("/analytics", {**base, "dataset": "sps", "bucket": str(DAY),
                        "group_by": "instance_type",
                        "agg": "change_count,mean_interval",
                        "limit": "7"}),
    ]
    return mix * 6


def _bench_worker_identity(repeats: int) -> dict:
    """The same /analytics mix through 1/2/4 workers must byte-match."""
    service = build_backfilled_service(seed=0, days=IDENTITY_DAYS,
                                       pool_types=IDENTITY_POOL_TYPES)
    mix = _analytics_mix(service)
    tenants = bench_tenants(2)
    digests: Dict[str, str] = {}
    throughput: Dict[str, float] = {}
    for workers in WORKER_COUNTS:
        report = run_closed_loop(service, mix, tenants, clients=2,
                                 workers=workers)
        digests[str(workers)] = report["response_digest"]
        throughput[str(workers)] = report["throughput_rps"]
    return {
        "requests": len(mix),
        "workers": list(WORKER_COUNTS),
        "digests": digests,
        "throughput_rps": throughput,
        "byte_identical": len(set(digests.values())) == 1,
    }


def _bench_multipartition_scan(base: Path, repeats: int) -> dict:
    """Windowed scan over many per-round partitions (k-way merge path)."""
    from ..lake import RoundMerger, SpotDataLake

    lake = SpotDataLake(base / "kway")
    merger = RoundMerger()
    for r in range(COLD_ROUNDS):
        _dense_round(merger, r, COLD_TYPES, DEFAULT_ZONES)
        lake.append_round(merger.take_round(EPOCH + r * COLD_INTERVAL))
    start = EPOCH
    end = EPOCH + COLD_ROUNDS * COLD_INTERVAL
    best, rows = float("inf"), 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = lake.scan(start, end)
        best = min(best, time.perf_counter() - started)
        rows = sum(len(r) for _, r in result)
    return {
        "partitions": len(lake.partitions),
        "rounds": COLD_ROUNDS,
        "rows": rows,
        "scan_seconds": best,
        "rows_per_second": rows / best if best > 0 else 0.0,
    }


def run_analysis_bench(repeats: int = 3,
                       workdir: Optional[Path] = None) -> dict:
    """Full analytics benchmark; returns the JSON-serializable report."""
    own_tmp = workdir is None
    base = Path(tempfile.mkdtemp(prefix="analysisbench-")) if own_tmp \
        else Path(workdir)
    try:
        return {
            "config": {"repeats": repeats},
            "cold_aggregation": _bench_cold_aggregation(base, repeats),
            "hot_heatmap": _bench_hot_heatmap(repeats),
            "rollup": _bench_rollup(),
            "worker_identity": _bench_worker_identity(repeats),
            "multipartition_scan": _bench_multipartition_scan(base, repeats),
        }
    finally:
        if own_tmp:
            shutil.rmtree(base, ignore_errors=True)


def summary_lines(report: dict) -> List[str]:
    cold = report["cold_aggregation"]
    heat = report["hot_heatmap"]
    roll = report["rollup"]
    ident = report["worker_identity"]
    kway = report["multipartition_scan"]
    return [
        f"cold aggregation: {cold['groups']} groups x {cold['buckets']} "
        f"buckets, {cold['rows_decoded']:,} rows decoded "
        f"({cold['chunks_pruned']} chunks pruned / "
        f"{cold['chunks_decoded']} decoded), vector "
        f"{cold['vector_seconds']*1000:.1f}ms vs rows "
        f"{cold['row_seconds']*1000:.1f}ms ({cold['speedup']:.1f}x), "
        f"identical={cold['identical']} "
        f"(max_rel_err={cold['max_rel_err']:.2e})",
        f"hot heatmap: {heat['days']} days x {heat['pool_types']} types, "
        f"engine {heat['engine_seconds']*1000:.1f}ms vs rows "
        f"{heat['row_seconds']*1000:.1f}ms ({heat['speedup']:.1f}x), "
        f"byte-identical={heat['byte_identical']}",
        f"rollups: cold {roll['cold_seconds']*1000:.1f}ms vs warm repeat "
        f"{roll['warm_seconds']*1000:.3f}ms ({roll['speedup']:.0f}x); "
        f"after append {roll['after_append_day_hits']} day partials "
        f"reused / {roll['after_append_day_recomputes']} recomputed "
        f"(reuse {roll['partial_reuse_ratio']:.2f})",
        f"worker identity: /analytics x{ident['requests']} through "
        f"{ident['workers']} workers, byte-identical="
        f"{ident['byte_identical']}",
        f"k-way merge: {kway['rows']:,} rows over {kway['partitions']} "
        f"uncompacted partitions in {kway['scan_seconds']*1000:.1f}ms "
        f"({kway['rows_per_second']:,.0f} rows/s)",
    ]
