"""Small AST helpers shared by the spotlint rules.

Everything here operates on dotted attribute chains ("self.cloud.pricing
.spot_price" -> ("self", "cloud", "pricing", "spot_price")); rules match
chain *suffixes* so that aliasing through intermediate attributes does not
hide a banned call.
"""

from __future__ import annotations

import ast
from typing import Optional, Sequence, Tuple

#: Wall-clock reads that break "pure function of seed + sim clock".
#: Matched as dotted suffixes of a call chain (see chain_matches).
WALL_CLOCK_CALLS: Tuple[Tuple[str, ...], ...] = (
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
)


def dotted_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The dotted name chain of a Name/Attribute expression, or None.

    ``self.cloud.pricing.spot_price`` -> ("self", "cloud", "pricing",
    "spot_price").  Returns None when the chain bottoms out in something
    that is not a plain name (a call result, a subscript, ...), in which
    case the known suffix is still returned with a leading "?" marker so
    suffix matching keeps working: ``cloud().pricing.spot_price`` ->
    ("?", "pricing", "spot_price").
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")
    else:
        return None
    return tuple(reversed(parts))


def chain_suffix_matches(chain: Sequence[str],
                         pattern: Sequence[str]) -> bool:
    """True when ``chain`` ends with ``pattern`` as whole dotted segments."""
    n = len(pattern)
    return len(chain) >= n and tuple(chain[-n:]) == tuple(pattern)


def deep_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Like :func:`dotted_chain` but descends through call results.

    Intermediate calls are marked with a ``"()"`` segment so patterns can
    anchor on them: ``self.store.table(name).write`` -> ("self", "store",
    "table", "()", "write").  Chains bottoming out in anything else keep
    the ``"?"`` marker of :func:`dotted_chain`.
    """
    parts = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            parts.append("()")
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            if not parts:
                return None
            parts.append("?")
            break
    return tuple(reversed(parts))


def call_chain(node: ast.Call) -> Optional[Tuple[str, ...]]:
    """The dotted chain of a call's function expression."""
    return dotted_chain(node.func)


def is_wall_clock_call(node: ast.Call) -> bool:
    """True when the call reads the host wall clock."""
    chain = call_chain(node)
    if chain is None:
        return False
    # ``time()`` bare is too ambiguous to flag; require a module anchor,
    # except for datetime.now()/utcnow() which only exist on datetime.
    return any(chain_suffix_matches(chain, pat) for pat in WALL_CLOCK_CALLS)


def contains_wall_clock_call(node: ast.AST) -> Optional[ast.Call]:
    """The first wall-clock call anywhere inside ``node``, or None."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and is_wall_clock_call(sub):
            return sub
    return None


def is_set_expression(node: ast.AST) -> bool:
    """True for expressions that statically evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = call_chain(node)
        if chain and chain[-1] in ("set", "frozenset") and len(chain) == 1:
            return True
    return False
