"""Project-wide module/call graph for the interprocedural spotconc rules.

The single-file rules of PR 1 see one AST at a time; the concurrency rules
(CONC001, FLOW001) need to answer *reachability* questions -- "can this
function run on a thread-pool worker?", "does every path from collection
code to a table apply pass through the WAL?" -- which requires a view of
the whole package tree at once.  This module builds that view:

* a :class:`ModuleInfo` per source file (imports resolved to absolute
  dotted targets, module-level bindings, process-wide mutable globals);
* a :class:`FunctionInfo` per function, method, nested function and
  lambda, each carrying its outgoing :class:`CallSite` list;
* a :class:`CallGraph` resolving call sites to callee functions and
  exposing reachability, path reconstruction, thread-pool submit seeds
  and a project-wide watched-globals index.

Resolution is deliberately an *over-approximation*: an attribute call
whose receiver cannot be typed falls back to matching every project
function with that bare name (minus ubiquitous builtin-collection method
names, which would only add noise edges).  Over-approximating keeps the
reachability analyses sound -- a function is only reported as
unreachable when no resolution strategy connects it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .astutil import deep_chain

#: Method names shared with the builtin collections; receiver-less
#: name-matching on these would wire ``rows.append`` to every project
#: ``append`` method, so they never resolve through the fallback.
_BUILTIN_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "pop", "popitem",
    "clear", "remove", "discard", "setdefault", "sort", "reverse", "copy",
    "get", "items", "keys", "values", "join", "split", "strip", "format",
    "encode", "decode", "read", "readline", "write", "flush", "close",
    "open", "index", "count", "startswith", "endswith", "lower", "upper",
    "map", "submit", "shutdown", "result", "dump", "dumps", "load", "loads",
})

#: Module-level names matching this pattern are screened as process-wide
#: globals (see :meth:`CallGraph.watched_globals`).
_GLOBAL_NAME = re.compile(r"^_?[A-Z][A-Z0-9_]*$")

#: Value constructors that produce a mutable container / instance.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "Counter", "OrderedDict",
})


@dataclass
class CallSite:
    """One call expression inside a function body."""

    chain: Tuple[str, ...]  #: deep chain with "()" markers (see astutil)
    lineno: int
    col: int
    node: ast.Call


@dataclass
class FunctionInfo:
    """One function-like scope: def, method, nested def, or lambda."""

    qualname: str            #: "repro.core.archive.SpotLakeArchive._write"
    module: str
    package: str
    path: str
    name: str                #: bare name ("<lambda>" for lambdas)
    cls: Optional[str]       #: enclosing class name, if a method
    node: ast.AST
    lineno: int
    parent: Optional[str] = None  #: enclosing function qualname, if nested
    calls: List[CallSite] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Per-file facts the graph and the rules share."""

    module: str
    package: str
    path: str
    tree: ast.Module
    #: local alias -> absolute dotted target ("pkg.mod" or "pkg.mod.attr")
    aliases: Dict[str, str] = field(default_factory=dict)
    #: every dotted module named by an import statement
    imported_modules: Set[str] = field(default_factory=set)
    #: names bound at module level (assignments, defs, classes, imports)
    global_names: Set[str] = field(default_factory=set)
    #: process-wide mutable globals: name -> definition line
    watched_globals: Dict[str, int] = field(default_factory=dict)
    #: classes defined at module level
    class_names: Set[str] = field(default_factory=set)


@dataclass
class PoolSubmit:
    """One thread-pool dispatch: ``executor.submit(fn, ...)`` / ``.map``."""

    caller: FunctionInfo
    site: CallSite
    targets: Tuple[str, ...]  #: resolved target qualnames

    def where(self) -> str:
        return f"{self.caller.path}:{self.site.lineno}"


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Call expressions in ``node``, excluding nested function bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)):
            continue
        if isinstance(sub, ast.Call):
            yield sub
        stack.extend(ast.iter_child_nodes(sub))


def _is_mutable_value(value: ast.AST) -> bool:
    """Does this module-level initializer build a mutable object?"""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        chain = deep_chain(value.func)
        if chain is None:
            return False
        last = chain[-1]
        if "Lock" in last or "Semaphore" in last or "Condition" in last:
            return False  # synchronization primitives are the guards
        if last in _MUTABLE_FACTORIES:
            return True
        # CamelCase call: instantiating a project class -> mutable instance
        return bool(last[:1].isupper() and last not in
                    ("Tuple", "FrozenSet", "NamedTuple"))
    return False


class CallGraph:
    """The resolved project graph plus memoized whole-project analyses."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._by_name: Dict[str, List[str]] = {}
        self._by_module: Dict[str, List[str]] = {}
        self._node_to_function: Dict[int, str] = {}
        self._callees: Dict[str, Tuple[str, ...]] = {}
        self._threaded: Optional[Dict[str, PoolSubmit]] = None
        self._watched: Optional[Dict[str, Dict[str, int]]] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, modules: Iterable[Tuple[str, str, str, ast.Module]]
              ) -> "CallGraph":
        """Build a graph from (path, module, package, tree) tuples."""
        graph = cls()
        for path, module, package, tree in modules:
            graph._add_module(path, module, package, tree)
        return graph

    def _add_module(self, path: str, module: str, package: str,
                    tree: ast.Module) -> None:
        info = ModuleInfo(module=module, package=package, path=path,
                          tree=tree)
        self.modules[module] = info
        self._scan_imports(info)
        self._scan_globals(info)
        self._register_scope(info, tree.body, cls=None, parent=None)

    def _scan_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    info.imported_modules.add(alias.name)
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    info.aliases[bound] = target
                    info.global_names.add(bound)
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_base(info, node)
                if base:
                    info.imported_modules.add(base)
                for alias in node.names:
                    bound = alias.asname or alias.name
                    prefix = f"{base}." if base else ""
                    info.aliases[bound] = f"{prefix}{alias.name}"
                    info.global_names.add(bound)

    @staticmethod
    def _absolute_base(info: ModuleInfo, node: ast.ImportFrom) -> str:
        """Absolute dotted module an ImportFrom pulls names out of."""
        if node.level == 0:
            return node.module or ""
        base = info.module.split(".")[:-1]
        if node.level > 1:
            base = base[:-(node.level - 1)]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def _scan_globals(self, info: ModuleInfo) -> None:
        for stmt in info.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, ast.ClassDef):
                info.global_names.add(stmt.name)
                info.class_names.add(stmt.name)
                continue
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.global_names.add(stmt.name)
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                info.global_names.add(target.id)
                if _GLOBAL_NAME.match(target.id) and "LOCK" not in target.id \
                        and value is not None and _is_mutable_value(value):
                    info.watched_globals[target.id] = stmt.lineno

    def _register_scope(self, info: ModuleInfo, body: Sequence[ast.stmt],
                        cls: Optional[str], parent: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(info, stmt, cls, parent)
            elif isinstance(stmt, ast.ClassDef) and parent is None:
                self._register_scope(info, stmt.body, cls=stmt.name,
                                     parent=None)

    def _register_function(self, info: ModuleInfo, node: ast.AST,
                           cls: Optional[str], parent: Optional[str],
                           name: Optional[str] = None) -> FunctionInfo:
        bare = name if name is not None else getattr(node, "name", "<lambda>")
        if parent is not None:
            qual = f"{parent}.{bare}"
        elif cls is not None:
            qual = f"{info.module}.{cls}.{bare}"
        else:
            qual = f"{info.module}.{bare}"
        if isinstance(node, ast.Lambda):
            qual = f"{qual}:{node.lineno}"
        fn = FunctionInfo(qualname=qual, module=info.module,
                          package=info.package, path=info.path, name=bare,
                          cls=cls, node=node, lineno=node.lineno,
                          parent=parent)
        self.functions[qual] = fn
        self._by_name.setdefault(bare, []).append(qual)
        self._by_module.setdefault(info.module, []).append(qual)
        self._node_to_function[id(node)] = qual
        for call in _calls_in(node):
            chain = deep_chain(call.func)
            if chain is None:
                continue
            fn.calls.append(CallSite(chain=chain, lineno=call.lineno,
                                     col=call.col_offset, node=call))
        # nested defs and lambdas are functions of their own
        for sub in ast.walk(node):
            if sub is node:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)) and \
                    id(sub) not in self._node_to_function:
                if self._encloses_directly(node, sub):
                    self._register_function(
                        info, sub, cls,
                        parent=qual,
                        name=getattr(sub, "name", "<lambda>"))
        return fn

    def _encloses_directly(self, outer: ast.AST, inner: ast.AST) -> bool:
        """True when no other function scope sits between outer and inner."""
        between = [sub for sub in ast.walk(outer)
                   if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.Lambda))
                   and sub is not outer and sub is not inner
                   and any(n is inner for n in ast.walk(sub))]
        return not between

    # -- lookup ------------------------------------------------------------

    def functions_in_module(self, module: str) -> List[FunctionInfo]:
        return [self.functions[q] for q in self._by_module.get(module, [])]

    def function_for_node(self, node: ast.AST) -> Optional[FunctionInfo]:
        qual = self._node_to_function.get(id(node))
        return self.functions.get(qual) if qual else None

    def functions_matching(self, suffix: str) -> List[str]:
        """Qualnames ending with ``suffix`` as whole dotted segments."""
        dotted = f".{suffix}"
        return sorted(q for q in self.functions
                      if q == suffix or q.endswith(dotted))

    # -- edge resolution ---------------------------------------------------

    def callees(self, qual: str) -> Tuple[str, ...]:
        """Resolved callee qualnames of one function (memoized)."""
        cached = self._callees.get(qual)
        if cached is not None:
            return cached
        fn = self.functions.get(qual)
        resolved: Set[str] = set()
        if fn is not None:
            for site in fn.calls:
                resolved.update(self._resolve_site(fn, site))
            # calling a function can invoke the closures defined in it
            # only via the call sites above; defining alone adds no edge
        out = tuple(sorted(resolved))
        self._callees[qual] = out
        return out

    def _resolve_site(self, fn: FunctionInfo, site: CallSite) -> Set[str]:
        chain = tuple(seg for seg in site.chain if seg != "()")
        if not chain:
            return set()
        last = chain[-1]
        if last == "?" or not last:
            return set()
        if len(chain) == 1:
            return self._resolve_bare(fn, last)
        if chain[0] in ("self", "cls") and fn.cls is not None \
                and len(chain) == 2:
            qual = f"{fn.module}.{fn.cls}.{last}"
            if qual in self.functions:
                return {qual}
        info = self.modules.get(fn.module)
        if info is not None:
            target = info.aliases.get(chain[0])
            if target is not None:
                dotted = ".".join((target,) + chain[1:])
                if dotted in self.functions:
                    return {dotted}
        if last in _BUILTIN_METHODS:
            return set()
        # untyped receiver: every project function with this bare name
        return set(self._by_name.get(last, ()))

    def _resolve_bare(self, fn: FunctionInfo, name: str) -> Set[str]:
        # innermost enclosing scope first: nested def defined in an ancestor
        ancestor: Optional[str] = fn.qualname
        while ancestor is not None:
            nested = f"{ancestor}.{name}"
            if nested in self.functions:
                return {nested}
            ancestor = self.functions[ancestor].parent \
                if ancestor in self.functions else None
        info = self.modules.get(fn.module)
        if fn.cls is not None:
            method = f"{fn.module}.{fn.cls}.{name}"
            if method in self.functions:
                return {method}
        local = f"{fn.module}.{name}"
        if local in self.functions:
            return {local}
        if info is not None:
            target = info.aliases.get(name)
            if target is not None:
                if target in self.functions:
                    return {target}
                ctor = f"{target}.__init__"
                if ctor in self.functions:
                    return {ctor}
            if name in info.class_names:
                ctor = f"{fn.module}.{name}.__init__"
                if ctor in self.functions:
                    return {ctor}
        return set()

    # -- reachability ------------------------------------------------------

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Roots plus every function transitively callable from them."""
        seen: Set[str] = set()
        frontier = [q for q in roots if q in self.functions]
        seen.update(frontier)
        while frontier:
            nxt: List[str] = []
            for qual in frontier:
                for callee in self.callees(qual):
                    if callee not in seen:
                        seen.add(callee)
                        nxt.append(callee)
            frontier = nxt
        return seen

    def call_path(self, roots: Iterable[str], dest: str
                  ) -> Optional[List[str]]:
        """Shortest root->dest call chain, for rule messages."""
        parents: Dict[str, Optional[str]] = {}
        frontier = sorted(q for q in roots if q in self.functions)
        for q in frontier:
            parents[q] = None
        while frontier:
            nxt: List[str] = []
            for qual in frontier:
                if qual == dest:
                    path = [qual]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])  # type: ignore[arg-type]
                    return list(reversed(path))
                for callee in self.callees(qual):
                    if callee not in parents:
                        parents[callee] = qual
                        nxt.append(callee)
            frontier = nxt
        return None

    # -- concurrency seeds -------------------------------------------------

    def pool_submit_sites(self) -> List[PoolSubmit]:
        """Thread-pool dispatch call sites with resolved target callables."""
        out: List[PoolSubmit] = []
        for qual in sorted(self.functions):
            fn = self.functions[qual]
            info = self.modules.get(fn.module)
            if info is None or not any(
                    mod.startswith(("concurrent.futures", "multiprocessing"))
                    for mod in info.imported_modules):
                continue
            for site in fn.calls:
                if site.chain[-1] not in ("submit", "map") or \
                        len(site.chain) < 2 or not site.node.args:
                    continue
                targets = self._resolve_callable(fn, site.node.args[0])
                if targets:
                    out.append(PoolSubmit(fn, site, tuple(sorted(targets))))
        return out

    def _resolve_callable(self, fn: FunctionInfo,
                          expr: ast.AST) -> Set[str]:
        """Resolve a callable *expression* (a submit/map first argument)."""
        if isinstance(expr, ast.Lambda):
            qual = self._node_to_function.get(id(expr))
            return {qual} if qual else set()
        if isinstance(expr, ast.Name):
            return self._resolve_bare(fn, expr.id)
        if isinstance(expr, ast.Attribute):
            chain = deep_chain(expr)
            if chain is None:
                return set()
            fake = CallSite(chain=chain, lineno=expr.lineno,
                            col=expr.col_offset, node=None)  # type: ignore[arg-type]
            return self._resolve_site(fn, fake)
        return set()

    def threaded_functions(self) -> Dict[str, PoolSubmit]:
        """Functions that may execute on a pool worker -> their seed.

        The map covers every submit/map target plus its transitive
        callees; the value records the dispatch site that makes the
        function threaded (the first one found, deterministically).
        """
        if self._threaded is not None:
            return self._threaded
        threaded: Dict[str, PoolSubmit] = {}
        for submit in self.pool_submit_sites():
            for root in submit.targets:
                for qual in sorted(self.reachable([root])):
                    threaded.setdefault(qual, submit)
        self._threaded = threaded
        return threaded

    # -- watched globals ---------------------------------------------------

    def watched_globals(self) -> Dict[str, Dict[str, int]]:
        """module -> {global name -> def line} of process-wide mutables."""
        if self._watched is None:
            self._watched = {m: dict(info.watched_globals)
                             for m, info in self.modules.items()
                             if info.watched_globals}
        return self._watched

    def watched_names_for(self, module: str,
                          extra: Sequence[str] = ()) -> Dict[str, str]:
        """Local names in ``module`` bound to a watched global.

        Covers the module's own watched globals plus imported aliases of
        other modules' watched globals; ``extra`` adds config-listed
        dotted names ("pkg.mod.NAME").  Returns local name -> origin
        ("pkg.mod.NAME") for messages.
        """
        info = self.modules.get(module)
        if info is None:
            return {}
        watched = self.watched_globals()
        extra_set = set(extra)
        out: Dict[str, str] = {}
        for name in info.watched_globals:
            out[name] = f"{module}.{name}"
        for local, target in info.aliases.items():
            owner, _, attr = target.rpartition(".")
            if not owner:
                continue
            if attr in watched.get(owner, {}) or target in extra_set:
                out[local] = target
        for dotted in extra_set:
            owner, _, attr = dotted.rpartition(".")
            if owner == module:
                out[attr] = dotted
        return out
