"""Collection engine benchmark harness: round latency, ingest, plan cache.

Three questions decide whether the parallel collection engine (sharded
query execution + batched ingest + plan caching) earns its complexity:

1. **Round latency** -- one full-catalog SPS collection round through the
   legacy serial collector versus the :class:`ParallelCollectionEngine`
   at several worker counts.  Each leg runs on a fresh, identically
   seeded service (warm-up round first, minimum of ``rounds`` measured
   rounds taken), and the resulting archives are digest-compared: a
   speedup only counts when the bytes are identical.
2. **Ingest throughput** -- the same SPS row stream written pointwise
   (``put_sps`` per row) versus batched (``put_sps_batch``), both over a
   durable WAL-backed archive, with a directory-level byte-identity
   check of the two data dirs.
3. **Plan cache** -- cold plan construction (every packing solved) versus
   a warm re-plan of the identical offering map, asserting via the
   solver's call counters that the warm pass performs *zero* solver
   calls.

Lives in ``devtools`` (not ``core``) because it times with the *host*
clock: benchmarking is meta-observation, outside the simulation's
seed+clock determinism envelope (latencies are reported, never archived).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.archive import SpotLakeArchive
from ..core.plan_cache import SOLVER_STATS, PlanCache
from ..core.service import ServiceConfig, SpotLakeService
from ..timeseries import dump_store

#: Worker counts compared against the legacy serial collector.
DEFAULT_WORKER_COUNTS = (1, 4)
#: Measured collection rounds per leg (after one warm-up round).
DEFAULT_ROUNDS = 3
#: Ingest workload shape: ``INGEST_ROUNDS`` stamps over a fixed pool grid.
INGEST_TYPES = 20
INGEST_REGIONS = 17
INGEST_ZONES = 3
INGEST_ROUNDS = 20
#: Timing repeats per ingest leg (minimum taken).
DEFAULT_REPEATS = 3


# -- shared helpers ---------------------------------------------------------


def _store_digest(store) -> str:
    """One hash over a store's canonical JSONL dump (order-stable)."""
    directory = Path(tempfile.mkdtemp(prefix="collectionbench-"))
    try:
        dump_store(store, directory)
        digest = hashlib.sha256()
        for path in sorted(directory.glob("*.jsonl")):
            digest.update(path.name.encode("utf-8"))
            digest.update(path.read_bytes())
        return digest.hexdigest()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def _dir_digest(directory: Path) -> str:
    """One hash over every file (name + bytes) under a data directory."""
    digest = hashlib.sha256()
    for root, dirs, files in os.walk(directory):
        dirs.sort()
        for name in sorted(files):
            digest.update(name.encode("utf-8"))
            digest.update((Path(root) / name).read_bytes())
    return digest.hexdigest()


# -- round latency ----------------------------------------------------------


def _time_sps_rounds(workers: Optional[int], seed: int, rounds: int,
                     interval: float) -> Tuple[float, str]:
    """Best-of-N SPS round latency for one worker setting, plus the
    archive digest after all rounds (the byte-identity witness)."""
    PlanCache.reset_shared()
    service = SpotLakeService(ServiceConfig(seed=seed, workers=workers))
    try:
        service.sps_collector.collect()  # warm-up: primes caches/templates
        best = float("inf")
        for _ in range(rounds):
            service.cloud.clock.advance(interval)
            started = time.perf_counter()
            service.sps_collector.collect()
            best = min(best, time.perf_counter() - started)
        return best, _store_digest(service.archive.store)
    finally:
        service.close()


def bench_round_latency(worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
                        seed: int = 7, rounds: int = DEFAULT_ROUNDS,
                        interval: float = 600.0) -> dict:
    """Serial collector vs the engine at each worker count, full catalog."""
    serial_seconds, serial_digest = _time_sps_rounds(None, seed, rounds,
                                                     interval)
    legs: Dict[str, dict] = {}
    identical = True
    for workers in worker_counts:
        seconds, digest = _time_sps_rounds(workers, seed, rounds, interval)
        matches = digest == serial_digest
        identical = identical and matches
        legs[f"workers={workers}"] = {
            "seconds": seconds,
            "speedup": serial_seconds / seconds if seconds > 0 else 0.0,
            "byte_identical": matches,
        }
    return {
        "seed": seed,
        "rounds": rounds,
        "serial_seconds": serial_seconds,
        "legs": legs,
        "byte_identical": identical,
    }


# -- ingest throughput ------------------------------------------------------


def _ingest_rows(base_time: float) -> List[Tuple[str, str, str, int, float]]:
    """A deterministic SPS row stream: every pool scored each round."""
    rows = []
    for step in range(INGEST_ROUNDS):
        stamp = base_time + float(step)
        for t in range(INGEST_TYPES):
            itype = f"bench{t}.large"
            for r in range(INGEST_REGIONS):
                region = f"rg-{r}"
                for z in range(INGEST_ZONES):
                    rows.append((itype, region, f"{region}{chr(97 + z)}",
                                 (step * 7 + t + z) % 10, stamp))
    return rows


def _run_ingest_leg(batched: bool, directory: Path) -> Tuple[float, int]:
    """One timed ingest leg over a fresh durable archive.

    A warm-up pass (earlier timestamps) first populates series, WAL
    templates and key caches so the measurement sees steady-state cost;
    returns (elapsed seconds, measured row count)."""
    archive = SpotLakeArchive(data_dir=directory, checkpoint_every=0)
    warmup = _ingest_rows(0.0)
    rows = _ingest_rows(1000.0)
    try:
        if batched:
            archive.put_sps_batch(warmup)
            archive.commit_round(float(INGEST_ROUNDS))
            started = time.perf_counter()
            archive.put_sps_batch(rows)
            elapsed = time.perf_counter() - started
        else:
            for itype, region, zone, score, stamp in warmup:
                archive.put_sps(itype, region, zone, score, stamp)
            archive.commit_round(float(INGEST_ROUNDS))
            started = time.perf_counter()
            for itype, region, zone, score, stamp in rows:
                archive.put_sps(itype, region, zone, score, stamp)
            elapsed = time.perf_counter() - started
        archive.commit_round(1000.0 + INGEST_ROUNDS)
        archive.checkpoint(1000.0 + INGEST_ROUNDS)
    finally:
        archive.close()
    return elapsed, len(rows)


def bench_ingest(base: Path, repeats: int = DEFAULT_REPEATS) -> dict:
    """Pointwise vs batched archive writes, durable, byte-compared."""
    results: Dict[str, dict] = {}
    digests: Dict[str, str] = {}
    for label, batched in (("pointwise", False), ("batch", True)):
        best = float("inf")
        best_dir: Optional[Path] = None
        for attempt in range(repeats):
            directory = base / f"ingest-{label}-{attempt}"
            directory.mkdir(parents=True)
            elapsed, count = _run_ingest_leg(batched, directory)
            if elapsed < best:
                best = elapsed
                if best_dir is not None:
                    shutil.rmtree(best_dir)
                best_dir = directory
            else:
                shutil.rmtree(directory)
        digests[label] = _dir_digest(best_dir)
        results[label] = {
            "seconds": best,
            "records": count,
            "records_per_second": count / best if best > 0 else 0.0,
        }
    pointwise = results["pointwise"]["records_per_second"]
    batch = results["batch"]["records_per_second"]
    return {
        "pointwise": results["pointwise"],
        "batch": results["batch"],
        "throughput_ratio": batch / pointwise if pointwise > 0 else 0.0,
        "byte_identical": digests["pointwise"] == digests["batch"],
    }


# -- plan cache -------------------------------------------------------------


def bench_plan_cache(seed: int = 7) -> dict:
    """Cold vs warm plan construction over the full catalog.

    The warm pass re-plans the *identical* offering map through the
    shared cache; the solver call counters must not move at all."""
    from ..cloudsim import SimulatedCloud

    offering_map = SimulatedCloud(seed=seed).catalog.offering_map()
    PlanCache.reset_shared()
    cache = PlanCache.shared()

    SOLVER_STATS.reset()
    started = time.perf_counter()
    cold_plan = cache.plan(offering_map)
    cold_seconds = time.perf_counter() - started
    cold_calls = SOLVER_STATS.total_calls

    SOLVER_STATS.reset()
    started = time.perf_counter()
    warm_plan = cache.plan(offering_map)
    warm_seconds = time.perf_counter() - started
    warm_calls = SOLVER_STATS.total_calls

    return {
        "types": len(offering_map),
        "queries": cold_plan.optimized_query_count,
        "cold_seconds": cold_seconds,
        "cold_solver_calls": cold_calls,
        "warm_seconds": warm_seconds,
        "warm_solver_calls": warm_calls,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
        "plans_identical": cold_plan.queries == warm_plan.queries,
    }


# -- entry point ------------------------------------------------------------


def run_collection_bench(worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
                         seed: int = 7, rounds: int = DEFAULT_ROUNDS,
                         repeats: int = DEFAULT_REPEATS,
                         workdir: Optional[Path] = None) -> dict:
    """Full collection benchmark; returns the JSON-serializable report."""
    own_tmp = workdir is None
    base = Path(tempfile.mkdtemp(prefix="collectionbench-")) if own_tmp \
        else Path(workdir)
    try:
        return {
            "config": {"worker_counts": list(worker_counts), "seed": seed,
                       "rounds": rounds, "repeats": repeats},
            "round_latency": bench_round_latency(worker_counts, seed, rounds),
            "ingest": bench_ingest(base, repeats),
            "plan_cache": bench_plan_cache(seed),
        }
    finally:
        if own_tmp:
            shutil.rmtree(base, ignore_errors=True)


def summary_lines(report: dict) -> List[str]:
    latency = report["round_latency"]
    ingest = report["ingest"]
    cache = report["plan_cache"]
    lines = [
        f"round latency (full catalog, best of {latency['rounds']}): "
        f"serial {latency['serial_seconds'] * 1000:.1f} ms",
    ]
    for label, leg in latency["legs"].items():
        lines.append(
            f"  {label}: {leg['seconds'] * 1000:.1f} ms "
            f"({leg['speedup']:.2f}x, "
            f"byte-identical: {leg['byte_identical']})")
    lines += [
        f"ingest: pointwise "
        f"{ingest['pointwise']['records_per_second']:,.0f} rec/s -> batch "
        f"{ingest['batch']['records_per_second']:,.0f} rec/s "
        f"({ingest['throughput_ratio']:.2f}x, "
        f"byte-identical: {ingest['byte_identical']})",
        f"plan cache: cold {cache['cold_seconds'] * 1000:.1f} ms "
        f"({cache['cold_solver_calls']} solver calls) -> warm "
        f"{cache['warm_seconds'] * 1000:.2f} ms "
        f"({cache['warm_solver_calls']} solver calls, "
        f"{cache['speedup']:.0f}x)",
    ]
    return lines
