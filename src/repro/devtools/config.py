"""spotlint configuration, read from ``[tool.spotlint]`` in pyproject.toml.

Three levels of control:

* ``select`` -- the globally enabled rule codes (default: every registered
  rule);
* per-rule option tables (``[tool.spotlint.det001]`` etc.) -- knobs such as
  which packages a rule patrols or the layering DAG;
* ``[tool.spotlint.per-package]`` -- disable specific rules for a whole
  subpackage when the package's *design* makes the rule inapplicable (for
  example ``multicloud`` adapters ARE each vendor's raw access surface, so
  the quota-bypass rule does not apply there).

The defaults below mirror the shipped pyproject so the linter also works on
a bare checkout of ``src/`` with no config file in sight.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple, Union

#: Packages in which DET001/CLK001 require the simulation Clock instead of
#: the host wall clock.
DEFAULT_CLOCKED_PACKAGES: Tuple[str, ...] = ("cloudsim", "timeseries", "core")

#: Top-level helper modules importable from every layer (they sit below the
#: leaves and import nothing from the package tree themselves).
DEFAULT_SHARED_MODULES: Tuple[str, ...] = ("_util", "scoring")

#: The package DAG from DESIGN.md's system inventory: each package maps to
#: the packages it may import from.  ``cloudsim``, ``solver``, ``timeseries``
#: and ``mlcore`` are leaves; ``core`` assembles them; analysis, experiments,
#: apps and multicloud sit above core; devtools is the dev harness on top.
DEFAULT_LAYERING_DAG: Dict[str, Tuple[str, ...]] = {
    "cloudsim": (),
    "solver": (),
    "timeseries": (),
    "mlcore": (),
    "core": ("cloudsim", "solver", "timeseries", "mlcore"),
    "analysis": ("core", "cloudsim", "solver", "timeseries", "mlcore"),
    "experiments": ("analysis", "core", "cloudsim", "solver", "timeseries",
                    "mlcore"),
    "apps": ("analysis", "core", "cloudsim", "solver", "timeseries",
             "mlcore"),
    "multicloud": ("core", "cloudsim", "solver", "timeseries", "mlcore"),
    "devtools": ("core", "cloudsim", "timeseries"),
}

DEFAULT_PER_PACKAGE_DISABLE: Dict[str, Tuple[str, ...]] = {
    # Vendor adapters are each vendor's own dataset surface (DESIGN.md
    # Section 7 row): Azure/GCP have no SPS quota to protect, and the AWS
    # adapter re-exposes the simulated engines as that surface.
    "multicloud": ("QUO001",),
}


@dataclass(frozen=True)
class LintConfig:
    """Resolved spotlint configuration."""

    select: Optional[Tuple[str, ...]] = None
    ignore: Tuple[str, ...] = ()
    clocked_packages: Tuple[str, ...] = DEFAULT_CLOCKED_PACKAGES
    shared_modules: Tuple[str, ...] = DEFAULT_SHARED_MODULES
    layering_dag: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERING_DAG))
    per_package_disable: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_PER_PACKAGE_DISABLE))
    rule_options: Mapping[str, Mapping[str, object]] = field(
        default_factory=dict)

    def rule_enabled(self, code: str, package: str = "") -> bool:
        """Is ``code`` active globally and for ``package``?"""
        if self.select is not None and code not in self.select:
            return False
        if code in self.ignore:
            return False
        disabled = self.per_package_disable.get(package, ())
        return code not in disabled

    def disabled_for_package(self, package: str) -> FrozenSet[str]:
        return frozenset(self.per_package_disable.get(package, ()))


class ConfigError(ValueError):
    """Raised when [tool.spotlint] is present but malformed."""


def _str_tuple(value: object, where: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
            isinstance(v, str) for v in value):
        raise ConfigError(f"{where} must be a list of strings, got {value!r}")
    return tuple(value)


def load_config(pyproject: Union[str, Path, None] = None) -> LintConfig:
    """Load spotlint configuration from a pyproject.toml.

    Missing file or missing ``[tool.spotlint]`` table -> built-in defaults.
    A present-but-malformed table raises :class:`ConfigError` so broken
    config never silently reverts to defaults.
    """
    if pyproject is None:
        return LintConfig()
    path = Path(pyproject)
    if not path.exists():
        return LintConfig()
    with path.open("rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("spotlint")
    if table is None:
        return LintConfig()
    return config_from_table(table)


def config_from_table(table: Mapping[str, object]) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed ``[tool.spotlint]`` table."""
    if not isinstance(table, Mapping):
        raise ConfigError("[tool.spotlint] must be a table")

    select: Optional[Tuple[str, ...]] = None
    if "select" in table:
        select = _str_tuple(table["select"], "tool.spotlint.select")

    ignore: Tuple[str, ...] = ()
    if "ignore" in table:
        ignore = _str_tuple(table["ignore"], "tool.spotlint.ignore")

    clocked = DEFAULT_CLOCKED_PACKAGES
    det_table = table.get("det001", {})
    if not isinstance(det_table, Mapping):
        raise ConfigError("[tool.spotlint.det001] must be a table")
    if "packages" in det_table:
        clocked = _str_tuple(det_table["packages"],
                             "tool.spotlint.det001.packages")

    shared = DEFAULT_SHARED_MODULES
    dag: Dict[str, Tuple[str, ...]] = dict(DEFAULT_LAYERING_DAG)
    layering = table.get("layering", {})
    if not isinstance(layering, Mapping):
        raise ConfigError("[tool.spotlint.layering] must be a table")
    if "shared" in layering:
        shared = _str_tuple(layering["shared"],
                            "tool.spotlint.layering.shared")
    if "dag" in layering:
        raw_dag = layering["dag"]
        if not isinstance(raw_dag, Mapping):
            raise ConfigError("[tool.spotlint.layering.dag] must be a table")
        dag = {
            str(pkg): _str_tuple(allowed,
                                 f"tool.spotlint.layering.dag.{pkg}")
            for pkg, allowed in raw_dag.items()
        }

    per_package: Dict[str, Tuple[str, ...]] = dict(DEFAULT_PER_PACKAGE_DISABLE)
    raw_pp = table.get("per-package", None)
    if raw_pp is not None:
        if not isinstance(raw_pp, Mapping):
            raise ConfigError("[tool.spotlint.per-package] must be a table")
        per_package = {}
        for pkg, entry in raw_pp.items():
            if isinstance(entry, Mapping):
                codes = entry.get("disable", ())
            else:
                codes = entry
            per_package[str(pkg)] = _str_tuple(
                codes, f"tool.spotlint.per-package.{pkg}")

    options = {
        key: value for key, value in table.items()
        if isinstance(value, Mapping)
        and key not in ("layering", "per-package")
    }
    return LintConfig(select=select, ignore=ignore,
                      clocked_packages=clocked,
                      shared_modules=shared, layering_dag=dag,
                      per_package_disable=per_package, rule_options=options)


def find_pyproject(start: Union[str, Path]) -> Optional[Path]:
    """The nearest pyproject.toml at or above ``start``."""
    here = Path(start).resolve()
    if here.is_file():
        here = here.parent
    for candidate in (here, *here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.exists():
            return pyproject
    return None
