"""Runtime determinism harness: run a seeded collection twice, diff bytes.

spotlint's static rules catch the *patterns* that break determinism; this
harness checks the *property* end to end: two ``SpotLakeService`` instances
built from the same config must produce byte-identical archive snapshots
(via ``timeseries.persistence``) after identical collection schedules.  Any
divergence -- wall-clock leakage, unseeded draws, hash-order iteration
reaching the archive -- shows up as a digest mismatch in the named table.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.service import ServiceConfig, SpotLakeService
from ..timeseries.persistence import dump_store

#: Default instance-type slice: one type per paper category keeps a run
#: under a second while exercising every engine.
DEFAULT_TYPES = ("m5.large", "c5.xlarge", "r5.2xlarge", "p3.2xlarge",
                 "i3.large")


def serving_digest(service: SpotLakeService) -> str:
    """Digest of the canonical serving battery's response bytes.

    Each request is issued three ways -- cache-cold, cache-hot, and with
    the cache disabled -- and all three must serialize byte-identically
    (the read cache's correctness contract) before contributing to the
    digest.  Any divergence raises ``AssertionError``.
    """
    from .servebench import build_workload

    sha = hashlib.sha256()
    for path, params in build_workload(service, page_limit=100):
        cold = service.gateway.get(path, params).json().encode("utf-8")
        hot = service.gateway.get(path, params).json().encode("utf-8")
        was_enabled = service.archive.cache_enabled
        service.archive.cache_enabled = False
        try:
            uncached = service.gateway.get(path, params).json().encode("utf-8")
        finally:
            service.archive.cache_enabled = was_enabled
        if not (cold == hot == uncached):
            raise AssertionError(
                f"read cache changed response bytes for {path} {params}")
        sha.update(cold)
    return sha.hexdigest()


@dataclass
class DoubleRunResult:
    """Digest comparison of two identically-seeded collection runs."""

    identical: bool
    digests_a: Dict[str, str] = field(default_factory=dict)
    digests_b: Dict[str, str] = field(default_factory=dict)
    mismatched_tables: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.identical:
            tables = ", ".join(sorted(self.digests_a)) or "none"
            return f"deterministic: identical snapshots ({tables})"
        return ("NONDETERMINISTIC: tables differ: "
                + ", ".join(self.mismatched_tables))


def snapshot_digests(seed: int = 0,
                     instance_types: Optional[Sequence[str]] = DEFAULT_TYPES,
                     rounds: int = 2,
                     interval_minutes: float = 10.0,
                     directory: Optional[Path] = None,
                     chaos_profile: str = "none",
                     chaos_seed: Optional[int] = None,
                     include_serving: bool = False,
                     workers: Optional[int] = None) -> Dict[str, str]:
    """Run one fresh service for ``rounds`` collection rounds; hash tables.

    Returns ``{table_name: sha256_of_snapshot_file}``.  The service, cloud
    and account pool are constructed from scratch so no state leaks
    between invocations.  With a chaos profile, the injected fault
    schedule (and hence any gap records) must replay identically too.
    With ``include_serving``, a ``"serving"`` pseudo-table digests the
    canonical API battery (see :func:`serving_digest`), extending the
    byte-determinism contract over the cached read path.  ``workers``
    routes SPS collection through the parallel engine (None = the legacy
    serial collector) -- the digests must not depend on it.
    """
    config = ServiceConfig(
        seed=seed,
        instance_types=list(instance_types) if instance_types else None,
        chaos_profile=chaos_profile,
        chaos_seed=chaos_seed,
        workers=workers)
    service = SpotLakeService(config)
    for _ in range(rounds):
        service.collect_once()
        service.cloud.clock.advance_minutes(interval_minutes)
    serving = serving_digest(service) if include_serving else None
    service.close()

    owns_dir = directory is None
    directory = Path(tempfile.mkdtemp(prefix="spotlint-doublerun-")) \
        if directory is None else Path(directory)
    try:
        dump_store(service.archive.store, directory)
        digests = {}
        for path in sorted(directory.glob("*.jsonl")):
            digests[path.stem] = hashlib.sha256(path.read_bytes()).hexdigest()
        if serving is not None:
            digests["serving"] = serving
        return digests
    finally:
        if owns_dir:
            shutil.rmtree(directory, ignore_errors=True)


def double_run(seed: int = 0,
               instance_types: Optional[Sequence[str]] = DEFAULT_TYPES,
               rounds: int = 2,
               interval_minutes: float = 10.0,
               chaos_profile: str = "none",
               chaos_seed: Optional[int] = None,
               include_serving: bool = False) -> DoubleRunResult:
    """Two independent seeded runs; byte-compare their archive snapshots."""
    digests_a = snapshot_digests(seed, instance_types, rounds,
                                 interval_minutes,
                                 chaos_profile=chaos_profile,
                                 chaos_seed=chaos_seed,
                                 include_serving=include_serving)
    digests_b = snapshot_digests(seed, instance_types, rounds,
                                 interval_minutes,
                                 chaos_profile=chaos_profile,
                                 chaos_seed=chaos_seed,
                                 include_serving=include_serving)
    mismatched = sorted(
        set(digests_a) ^ set(digests_b)
        | {t for t in set(digests_a) & set(digests_b)
           if digests_a[t] != digests_b[t]})
    return DoubleRunResult(identical=not mismatched,
                           digests_a=digests_a, digests_b=digests_b,
                           mismatched_tables=mismatched)


@dataclass
class WorkerSweepResult:
    """Byte-identity verdict of the worker-count sweep."""

    identical: bool
    worker_counts: List[Optional[int]] = field(default_factory=list)
    #: per-worker-count table digests, keyed by str(workers) ("serial"
    #: for the legacy collector)
    digests: Dict[str, Dict[str, str]] = field(default_factory=dict)
    mismatched: List[str] = field(default_factory=list)

    def summary(self) -> str:
        labels = ", ".join(sorted(self.digests))
        if self.identical:
            return (f"deterministic: identical snapshots across worker "
                    f"counts ({labels})")
        return ("NONDETERMINISTIC: worker counts diverge from serial: "
                + ", ".join(self.mismatched))


def worker_sweep(worker_counts: Sequence[int],
                 seed: int = 0,
                 instance_types: Optional[Sequence[str]] = DEFAULT_TYPES,
                 rounds: int = 2,
                 interval_minutes: float = 10.0,
                 chaos_profile: str = "none",
                 chaos_seed: Optional[int] = None) -> WorkerSweepResult:
    """Byte-compare the legacy serial collector against every worker count.

    The parallel collection engine's contract is that archive bytes (gap
    records included) are a function of the configuration alone, never of
    the worker count; the sweep runs the identical schedule serially and
    at each requested ``--workers N`` and diffs every table digest.
    """
    kwargs = dict(seed=seed, instance_types=instance_types, rounds=rounds,
                  interval_minutes=interval_minutes,
                  chaos_profile=chaos_profile, chaos_seed=chaos_seed)
    reference = snapshot_digests(workers=None, **kwargs)
    digests: Dict[str, Dict[str, str]] = {"serial": reference}
    mismatched: List[str] = []
    for workers in worker_counts:
        got = snapshot_digests(workers=workers, **kwargs)
        digests[f"workers={workers}"] = got
        if got != reference:
            bad = sorted(set(got) ^ set(reference)
                         | {t for t in set(got) & set(reference)
                            if got[t] != reference[t]})
            mismatched.append(f"workers={workers} ({', '.join(bad)})")
    return WorkerSweepResult(identical=not mismatched,
                             worker_counts=list(worker_counts),
                             digests=digests, mismatched=mismatched)


def _store_digests(store) -> Dict[str, str]:
    """``{table: sha256}`` of a store's snapshot files (empty store = {})."""
    directory = Path(tempfile.mkdtemp(prefix="spotlake-durability-digest-"))
    try:
        dump_store(store, directory)
        return {path.stem: hashlib.sha256(path.read_bytes()).hexdigest()
                for path in sorted(directory.glob("*.jsonl"))}
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@dataclass
class CrashCaseResult:
    """One seeded crash: where it fired and what recovery got back."""

    window: str
    hit: int
    crashed: bool
    rounds_recovered: int
    identical: bool
    data_loss: bool
    mismatched_tables: List[str] = field(default_factory=list)

    def summary(self) -> str:
        status = "ok" if self.crashed and self.identical else "FAIL"
        loss = " torn-tail-discarded" if self.data_loss else ""
        return (f"{status}: crash at {self.window} (hit {self.hit}) -> "
                f"recovered {self.rounds_recovered} round(s), "
                + ("byte-identical" if self.identical
                   else "tables differ: " + ", ".join(self.mismatched_tables))
                + loss)


@dataclass
class DurabilityResult:
    """Crash matrix verdict: every window's recovery vs the reference."""

    identical: bool
    rounds: int
    cases: List[CrashCaseResult] = field(default_factory=list)

    def summary(self) -> str:
        if self.identical:
            return (f"durable: {len(self.cases)} crash window(s) all "
                    f"recovered byte-identical ({self.rounds}-round run)")
        bad = [c.window for c in self.cases if not (c.crashed and c.identical)]
        return "NOT DURABLE: windows failed: " + ", ".join(bad)


def durability_run(seed: int = 0,
                   instance_types: Optional[Sequence[str]] = DEFAULT_TYPES,
                   rounds: int = 4,
                   interval_minutes: float = 10.0,
                   checkpoint_every: int = 2,
                   chaos_profile: str = "none",
                   chaos_seed: Optional[int] = None,
                   legacy_format_rounds: int = 0,
                   lake: bool = False,
                   cloud_factory=None) -> DurabilityResult:
    """Kill the service at every storage crash window; verify recovery.

    One uninterrupted reference run records the archive digest after each
    committed round.  Then, per crash window, a fresh identically-seeded
    service runs with a :class:`~repro.cloudsim.CrashInjector` armed at a
    seeded occurrence of that window; the simulated crash is caught, the
    data directory is recovered cold, and the recovered store must be
    byte-identical to the reference at however many rounds recovery says
    survived.  A crash before the first commit must recover to an empty
    store -- the manifest protocol admits no other states.

    ``legacy_format_rounds`` makes the first N rounds of every run (the
    reference and each crash victim) flush v1 JSON-lines segments, so the
    matrix also covers crashing *mid-migration*: later checkpoints rewrite
    those segments to the columnar format, and a kill in any window must
    leave a mixed v1/v2 directory that still recovers byte-identically.

    ``lake`` runs the matrix in tiered-lake mode: the window list extends
    to the lake's publish protocol (``lake.segment`` / ``lake.manifest``
    / ``lake.publish``), and each recovery additionally trims the cold
    tier to the hot store's ``last_commit_time`` and byte-compares the
    lake digest (a ``"lake"`` pseudo-table) against the reference at the
    recovered round count -- the lake-ahead-of-WAL protocol's invariant.
    """
    from ..cloudsim.faults import (
        CrashInjector,
        SimulatedCrash,
        seeded_crash_point,
    )
    from ..lake import LAKE_CRASH_WINDOWS, LAKE_DIR_NAME, SpotDataLake
    from ..storage import CRASH_WINDOWS, forced_segment_format, recover

    def build(data_dir: Path, hook=None) -> SpotLakeService:
        return SpotLakeService(ServiceConfig(
            seed=seed,
            instance_types=list(instance_types) if instance_types else None,
            chaos_profile=chaos_profile,
            chaos_seed=chaos_seed,
            data_dir=str(data_dir),
            checkpoint_every=checkpoint_every,
            storage_crash_hook=hook,
            lake=lake),
            cloud=cloud_factory() if cloud_factory is not None else None)

    def run_round(service: SpotLakeService, index: int) -> None:
        if index < legacy_format_rounds:
            with forced_segment_format(1):
                service.collect_once()
        else:
            service.collect_once()

    base = Path(tempfile.mkdtemp(prefix="spotlake-durability-"))
    try:
        # -- reference: uninterrupted, digested at every round boundary ----
        reference = build(base / "reference")
        ref: Dict[int, Dict[str, str]] = {0: {}}
        ref_lake: Dict[int, str] = {}
        if lake:
            ref_lake[0] = reference.archive.lake.digest()
        for committed in range(1, rounds + 1):
            run_round(reference, committed - 1)
            ref[committed] = _store_digests(reference.archive.store)
            if lake:
                ref_lake[committed] = reference.archive.lake.digest()
            reference.cloud.clock.advance_minutes(interval_minutes)
        reference.archive.close()

        checkpoints = rounds // checkpoint_every if checkpoint_every else 0
        expected_hits = {
            "wal.flush": rounds,
            "wal.commit": rounds,
            "checkpoint.segments": checkpoints,
            "checkpoint.manifest": checkpoints,
            "checkpoint.publish": checkpoints,
            "checkpoint.gc": checkpoints,
        }
        windows = list(CRASH_WINDOWS)
        if lake:
            # the lake publish protocol runs once per (non-empty) round
            windows.extend(LAKE_CRASH_WINDOWS)
            expected_hits.update({w: rounds for w in LAKE_CRASH_WINDOWS})

        cases: List[CrashCaseResult] = []
        for window in windows:
            max_hits = expected_hits[window]
            if max_hits == 0:
                continue  # cadence too short to ever reach this window
            point = seeded_crash_point(seed, window, max_hits)
            crash_dir = base / ("crash-" + window.replace(".", "-"))
            injector = CrashInjector([point])
            victim = build(crash_dir, injector)
            crashed = False
            try:
                for index in range(rounds):
                    run_round(victim, index)
                    victim.cloud.clock.advance_minutes(interval_minutes)
            except SimulatedCrash:
                crashed = True
            victim.archive.close()

            state = recover(crash_dir)
            got = _store_digests(state.store)
            want = ref.get(state.rounds_committed, {})
            mismatched = sorted(
                set(got) ^ set(want)
                | {t for t in set(got) & set(want) if got[t] != want[t]})
            if lake:
                recovered_lake = SpotDataLake(crash_dir / LAKE_DIR_NAME)
                recovered_lake.trim_to(state.last_commit_time)
                if recovered_lake.digest() != \
                        ref_lake.get(state.rounds_committed):
                    mismatched.append("lake")
            cases.append(CrashCaseResult(
                window=window, hit=point.hit, crashed=crashed,
                rounds_recovered=state.rounds_committed,
                identical=not mismatched, data_loss=state.data_loss,
                mismatched_tables=mismatched))
        passed = all(c.crashed and c.identical for c in cases)
        return DurabilityResult(identical=passed, rounds=rounds, cases=cases)
    finally:
        shutil.rmtree(base, ignore_errors=True)


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.devtools.doublerun",
        description="byte-level determinism check of the collection path")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--chaos-profile", default="none")
    parser.add_argument("--chaos-seed", type=int, default=None)
    parser.add_argument("--serving", action="store_true",
                        help="also digest the serving battery (cached vs "
                             "uncached responses must be byte-identical)")
    parser.add_argument("--durability", action="store_true",
                        help="crash-matrix mode: kill the service at every "
                             "storage crash window and byte-compare the "
                             "recovered archive against an uninterrupted run")
    parser.add_argument("--checkpoint-every", type=int, default=2,
                        help="checkpoint cadence of the durability run "
                             "(rounds; default 2)")
    parser.add_argument("--mixed-format", action="store_true",
                        help="durability mode only: flush the first half of "
                             "each run's rounds as legacy v1 segments so "
                             "crashes land mid columnar migration")
    parser.add_argument("--lake", action="store_true",
                        help="durability mode only: run in tiered-lake mode "
                             "and extend the crash matrix to the lake "
                             "publish windows")
    parser.add_argument("--workers-sweep", default=None, metavar="N,N,...",
                        help="worker-sweep mode: byte-compare the serial "
                             "collector against each listed --workers count "
                             "(e.g. \"1,4,8\")")
    args = parser.parse_args(argv)
    if args.workers_sweep:
        counts = [int(part) for part in args.workers_sweep.split(",") if part]
        result = worker_sweep(counts, seed=args.seed, rounds=args.rounds,
                              chaos_profile=args.chaos_profile,
                              chaos_seed=args.chaos_seed)
        print(result.summary())
        return 0 if result.identical else 1
    if args.lake and not args.durability:
        parser.error("--lake requires --durability")
    if args.durability:
        legacy_rounds = max(1, args.rounds // 2) if args.mixed_format else 0
        result = durability_run(seed=args.seed, rounds=args.rounds,
                                checkpoint_every=args.checkpoint_every,
                                chaos_profile=args.chaos_profile,
                                chaos_seed=args.chaos_seed,
                                legacy_format_rounds=legacy_rounds,
                                lake=args.lake)
        for case in result.cases:
            print(case.summary())
        print(result.summary())
        return 0 if result.identical else 1
    result = double_run(seed=args.seed, rounds=args.rounds,
                        chaos_profile=args.chaos_profile,
                        chaos_seed=args.chaos_seed,
                        include_serving=args.serving)
    print(result.summary())
    return 0 if result.identical else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
