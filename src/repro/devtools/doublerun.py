"""Runtime determinism harness: run a seeded collection twice, diff bytes.

spotlint's static rules catch the *patterns* that break determinism; this
harness checks the *property* end to end: two ``SpotLakeService`` instances
built from the same config must produce byte-identical archive snapshots
(via ``timeseries.persistence``) after identical collection schedules.  Any
divergence -- wall-clock leakage, unseeded draws, hash-order iteration
reaching the archive -- shows up as a digest mismatch in the named table.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.service import ServiceConfig, SpotLakeService
from ..timeseries.persistence import dump_store

#: Default instance-type slice: one type per paper category keeps a run
#: under a second while exercising every engine.
DEFAULT_TYPES = ("m5.large", "c5.xlarge", "r5.2xlarge", "p3.2xlarge",
                 "i3.large")


def serving_digest(service: SpotLakeService) -> str:
    """Digest of the canonical serving battery's response bytes.

    Each request is issued three ways -- cache-cold, cache-hot, and with
    the cache disabled -- and all three must serialize byte-identically
    (the read cache's correctness contract) before contributing to the
    digest.  Any divergence raises ``AssertionError``.
    """
    from .servebench import build_workload

    sha = hashlib.sha256()
    for path, params in build_workload(service, page_limit=100):
        cold = service.gateway.get(path, params).json().encode("utf-8")
        hot = service.gateway.get(path, params).json().encode("utf-8")
        was_enabled = service.archive.cache_enabled
        service.archive.cache_enabled = False
        try:
            uncached = service.gateway.get(path, params).json().encode("utf-8")
        finally:
            service.archive.cache_enabled = was_enabled
        if not (cold == hot == uncached):
            raise AssertionError(
                f"read cache changed response bytes for {path} {params}")
        sha.update(cold)
    return sha.hexdigest()


@dataclass
class DoubleRunResult:
    """Digest comparison of two identically-seeded collection runs."""

    identical: bool
    digests_a: Dict[str, str] = field(default_factory=dict)
    digests_b: Dict[str, str] = field(default_factory=dict)
    mismatched_tables: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.identical:
            tables = ", ".join(sorted(self.digests_a)) or "none"
            return f"deterministic: identical snapshots ({tables})"
        return ("NONDETERMINISTIC: tables differ: "
                + ", ".join(self.mismatched_tables))


def snapshot_digests(seed: int = 0,
                     instance_types: Optional[Sequence[str]] = DEFAULT_TYPES,
                     rounds: int = 2,
                     interval_minutes: float = 10.0,
                     directory: Optional[Path] = None,
                     chaos_profile: str = "none",
                     chaos_seed: Optional[int] = None,
                     include_serving: bool = False) -> Dict[str, str]:
    """Run one fresh service for ``rounds`` collection rounds; hash tables.

    Returns ``{table_name: sha256_of_snapshot_file}``.  The service, cloud
    and account pool are constructed from scratch so no state leaks
    between invocations.  With a chaos profile, the injected fault
    schedule (and hence any gap records) must replay identically too.
    With ``include_serving``, a ``"serving"`` pseudo-table digests the
    canonical API battery (see :func:`serving_digest`), extending the
    byte-determinism contract over the cached read path.
    """
    config = ServiceConfig(
        seed=seed,
        instance_types=list(instance_types) if instance_types else None,
        chaos_profile=chaos_profile,
        chaos_seed=chaos_seed)
    service = SpotLakeService(config)
    for _ in range(rounds):
        service.collect_once()
        service.cloud.clock.advance_minutes(interval_minutes)
    serving = serving_digest(service) if include_serving else None

    owns_dir = directory is None
    directory = Path(tempfile.mkdtemp(prefix="spotlint-doublerun-")) \
        if directory is None else Path(directory)
    try:
        dump_store(service.archive.store, directory)
        digests = {}
        for path in sorted(directory.glob("*.jsonl")):
            digests[path.stem] = hashlib.sha256(path.read_bytes()).hexdigest()
        if serving is not None:
            digests["serving"] = serving
        return digests
    finally:
        if owns_dir:
            shutil.rmtree(directory, ignore_errors=True)


def double_run(seed: int = 0,
               instance_types: Optional[Sequence[str]] = DEFAULT_TYPES,
               rounds: int = 2,
               interval_minutes: float = 10.0,
               chaos_profile: str = "none",
               chaos_seed: Optional[int] = None,
               include_serving: bool = False) -> DoubleRunResult:
    """Two independent seeded runs; byte-compare their archive snapshots."""
    digests_a = snapshot_digests(seed, instance_types, rounds,
                                 interval_minutes,
                                 chaos_profile=chaos_profile,
                                 chaos_seed=chaos_seed,
                                 include_serving=include_serving)
    digests_b = snapshot_digests(seed, instance_types, rounds,
                                 interval_minutes,
                                 chaos_profile=chaos_profile,
                                 chaos_seed=chaos_seed,
                                 include_serving=include_serving)
    mismatched = sorted(
        set(digests_a) ^ set(digests_b)
        | {t for t in set(digests_a) & set(digests_b)
           if digests_a[t] != digests_b[t]})
    return DoubleRunResult(identical=not mismatched,
                           digests_a=digests_a, digests_b=digests_b,
                           mismatched_tables=mismatched)


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.devtools.doublerun",
        description="byte-level determinism check of the collection path")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--chaos-profile", default="none")
    parser.add_argument("--chaos-seed", type=int, default=None)
    parser.add_argument("--serving", action="store_true",
                        help="also digest the serving battery (cached vs "
                             "uncached responses must be byte-identical)")
    args = parser.parse_args(argv)
    result = double_run(seed=args.seed, rounds=args.rounds,
                        chaos_profile=args.chaos_profile,
                        chaos_seed=args.chaos_seed,
                        include_serving=args.serving)
    print(result.summary())
    return 0 if result.identical else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
