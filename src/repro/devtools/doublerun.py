"""Runtime determinism harness: run a seeded collection twice, diff bytes.

spotlint's static rules catch the *patterns* that break determinism; this
harness checks the *property* end to end: two ``SpotLakeService`` instances
built from the same config must produce byte-identical archive snapshots
(via ``timeseries.persistence``) after identical collection schedules.  Any
divergence -- wall-clock leakage, unseeded draws, hash-order iteration
reaching the archive -- shows up as a digest mismatch in the named table.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.service import ServiceConfig, SpotLakeService
from ..timeseries.persistence import dump_store

#: Default instance-type slice: one type per paper category keeps a run
#: under a second while exercising every engine.
DEFAULT_TYPES = ("m5.large", "c5.xlarge", "r5.2xlarge", "p3.2xlarge",
                 "i3.large")


@dataclass
class DoubleRunResult:
    """Digest comparison of two identically-seeded collection runs."""

    identical: bool
    digests_a: Dict[str, str] = field(default_factory=dict)
    digests_b: Dict[str, str] = field(default_factory=dict)
    mismatched_tables: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.identical:
            tables = ", ".join(sorted(self.digests_a)) or "none"
            return f"deterministic: identical snapshots ({tables})"
        return ("NONDETERMINISTIC: tables differ: "
                + ", ".join(self.mismatched_tables))


def snapshot_digests(seed: int = 0,
                     instance_types: Optional[Sequence[str]] = DEFAULT_TYPES,
                     rounds: int = 2,
                     interval_minutes: float = 10.0,
                     directory: Optional[Path] = None,
                     chaos_profile: str = "none",
                     chaos_seed: Optional[int] = None) -> Dict[str, str]:
    """Run one fresh service for ``rounds`` collection rounds; hash tables.

    Returns ``{table_name: sha256_of_snapshot_file}``.  The service, cloud
    and account pool are constructed from scratch so no state leaks
    between invocations.  With a chaos profile, the injected fault
    schedule (and hence any gap records) must replay identically too.
    """
    config = ServiceConfig(
        seed=seed,
        instance_types=list(instance_types) if instance_types else None,
        chaos_profile=chaos_profile,
        chaos_seed=chaos_seed)
    service = SpotLakeService(config)
    for _ in range(rounds):
        service.collect_once()
        service.cloud.clock.advance_minutes(interval_minutes)

    owns_dir = directory is None
    directory = Path(tempfile.mkdtemp(prefix="spotlint-doublerun-")) \
        if directory is None else Path(directory)
    try:
        dump_store(service.archive.store, directory)
        digests = {}
        for path in sorted(directory.glob("*.jsonl")):
            digests[path.stem] = hashlib.sha256(path.read_bytes()).hexdigest()
        return digests
    finally:
        if owns_dir:
            shutil.rmtree(directory, ignore_errors=True)


def double_run(seed: int = 0,
               instance_types: Optional[Sequence[str]] = DEFAULT_TYPES,
               rounds: int = 2,
               interval_minutes: float = 10.0,
               chaos_profile: str = "none",
               chaos_seed: Optional[int] = None) -> DoubleRunResult:
    """Two independent seeded runs; byte-compare their archive snapshots."""
    digests_a = snapshot_digests(seed, instance_types, rounds,
                                 interval_minutes,
                                 chaos_profile=chaos_profile,
                                 chaos_seed=chaos_seed)
    digests_b = snapshot_digests(seed, instance_types, rounds,
                                 interval_minutes,
                                 chaos_profile=chaos_profile,
                                 chaos_seed=chaos_seed)
    mismatched = sorted(
        set(digests_a) ^ set(digests_b)
        | {t for t in set(digests_a) & set(digests_b)
           if digests_a[t] != digests_b[t]})
    return DoubleRunResult(identical=not mismatched,
                           digests_a=digests_a, digests_b=digests_b,
                           mismatched_tables=mismatched)


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.devtools.doublerun",
        description="byte-level determinism check of the collection path")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--chaos-profile", default="none")
    parser.add_argument("--chaos-seed", type=int, default=None)
    args = parser.parse_args(argv)
    result = double_run(seed=args.seed, rounds=args.rounds,
                        chaos_profile=args.chaos_profile,
                        chaos_seed=args.chaos_seed)
    print(result.summary())
    return 0 if result.identical else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
