"""The lint engine: file discovery, rule dispatch, suppression filtering.

Usage::

    from repro.devtools import lint_paths, load_config
    result = lint_paths(["src/repro"], load_config("pyproject.toml"))
    for finding in result.findings:
        print(finding.location(), finding.message)
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from .config import LintConfig
from .findings import Finding, LintResult, parse_error_finding
from .registry import FileContext, Rule, make_rules
from .suppressions import is_suppressed, suppression_map

_ROOT = "repro"


def module_identity(path: Path) -> Tuple[str, str]:
    """(dotted module, repro subpackage) for a source path.

    The dotted module keeps an explicit ``.__init__`` suffix for package
    files so relative imports resolve uniformly (see LAY001).  Files not
    under a ``repro`` directory get a bare-stem module and package "" --
    they are still linted by the package-agnostic rules.
    """
    parts = list(path.parts)
    stem = path.stem
    try:
        anchor = len(parts) - 1 - parts[::-1].index(_ROOT, 1)
    except ValueError:
        return stem, ""
    rel = parts[anchor:-1] + [stem]
    module = ".".join(rel)
    # package = first directory under repro; a top-level module has none
    package = rel[1] if len(rel) > 2 else ""
    return module, package


def lint_source(source: str, *, path: str = "<string>",
                module: str = "module", package: str = "",
                config: Optional[LintConfig] = None,
                rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Lint one in-memory source blob (the unit-test entry point)."""
    config = config or LintConfig()
    rules = list(rules) if rules is not None else make_rules()
    result = LintResult(rules_run=[r.code for r in rules])
    _lint_one(source, path, module, package, config, rules, result)
    result.files_checked = 1
    result.sort()
    return result


def lint_paths(paths: Iterable[Union[str, Path]],
               config: Optional[LintConfig] = None,
               codes: Optional[Sequence[str]] = None) -> LintResult:
    """Lint every ``.py`` file under the given files/directories."""
    config = config or LintConfig()
    rules = make_rules(codes)
    result = LintResult(rules_run=[r.code for r in rules])
    for file_path in discover_files(paths):
        module, package = module_identity(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            result.parse_errors.append(
                Finding("IO", str(file_path), 0, 0, str(exc)))
            continue
        _lint_one(source, str(file_path), module, package, config, rules,
                  result)
        result.files_checked += 1
    result.sort()
    return result


def discover_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """All python files under the given paths, sorted, deduplicated."""
    seen = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                seen[sub] = None
        elif path.is_file() and path.suffix == ".py":
            seen[path] = None
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(seen)


def _lint_one(source: str, path: str, module: str, package: str,
              config: LintConfig, rules: Sequence[Rule],
              result: LintResult) -> None:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.parse_errors.append(parse_error_finding(path, exc))
        return
    lines = source.splitlines()
    suppressions = suppression_map(lines)
    ctx = FileContext(path=path, module=module, package=package,
                      tree=tree, lines=lines, config=config)
    for rule in rules:
        if not config.rule_enabled(rule.code, package):
            continue
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if is_suppressed(finding.rule, finding.line, suppressions):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
