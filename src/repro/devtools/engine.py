"""The lint engine: file discovery, project graph, rule dispatch.

Linting is a two-pass pipeline since spotconc:

1. **Parse pass** -- every discovered file is read and parsed; syntax
   errors become ``PARSE`` pseudo-findings.
2. **Project pass** -- the parsed modules are assembled into one
   :class:`~repro.devtools.callgraph.CallGraph`, which the
   interprocedural rules (CONC001, FLOW001) query through
   ``ctx.project``; single-file rules ignore it.

Usage::

    from repro.devtools import lint_paths, load_config
    result = lint_paths(["src/repro"], load_config("pyproject.toml"))
    for finding in result.findings:
        print(finding.location(), finding.message)
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from .callgraph import CallGraph
from .config import LintConfig
from .findings import Finding, LintResult, parse_error_finding
from .registry import FileContext, Rule, make_rules, registered_codes
from .suppressions import is_suppressed, parse_directive, suppression_map

_ROOT = "repro"

#: Pseudo-rule codes the engine itself emits (never in the registry).
ENGINE_CODES = ("PARSE", "IO", "SUPP")


def module_identity(path: Path) -> Tuple[str, str]:
    """(dotted module, repro subpackage) for a source path.

    The dotted module keeps an explicit ``.__init__`` suffix for package
    files so relative imports resolve uniformly (see LAY001).  Files not
    under a ``repro`` directory get a bare-stem module and package "" --
    they are still linted by the package-agnostic rules.
    """
    parts = list(path.parts)
    stem = path.stem
    try:
        anchor = len(parts) - 1 - parts[::-1].index(_ROOT, 1)
    except ValueError:
        return stem, ""
    rel = parts[anchor:-1] + [stem]
    module = ".".join(rel)
    # package = first directory under repro; a top-level module has none
    package = rel[1] if len(rel) > 2 else ""
    return module, package


@dataclass
class _ParsedFile:
    path: str
    module: str
    package: str
    tree: ast.Module
    lines: List[str]


def _enabled_codes(rules: Sequence[Rule],
                   config: LintConfig) -> List[str]:
    """The codes that can actually fire under ``config`` (select/ignore).

    ``rules_run`` must not claim a rule ran when ``--select``/``--ignore``
    kept it from ever being dispatched; per-package disables still count
    as "ran" because they apply to a subset of files only.
    """
    return [r.code for r in rules if config.rule_enabled(r.code)]


def lint_source(source: str, *, path: str = "<string>",
                module: str = "module", package: str = "",
                config: Optional[LintConfig] = None,
                rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Lint one in-memory source blob (the unit-test entry point).

    The project graph for interprocedural rules spans just this module.
    """
    config = config or LintConfig()
    rules = list(rules) if rules is not None else make_rules()
    result = LintResult(rules_run=_enabled_codes(rules, config))
    parsed = _parse_one(source, path, module, package, result)
    project = CallGraph.build(
        [(f.path, f.module, f.package, f.tree) for f in ([parsed] if parsed
                                                         else [])])
    if parsed is not None:
        _lint_parsed(parsed, config, rules, result, project)
    result.files_checked = 1
    result.sort()
    return result


def lint_paths(paths: Iterable[Union[str, Path]],
               config: Optional[LintConfig] = None,
               codes: Optional[Sequence[str]] = None) -> LintResult:
    """Lint every ``.py`` file under the given files/directories."""
    config = config or LintConfig()
    rules = make_rules(codes)
    result = LintResult(rules_run=_enabled_codes(rules, config))
    parsed_files: List[_ParsedFile] = []
    for file_path in discover_files(paths):
        module, package = module_identity(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            result.parse_errors.append(
                Finding("IO", str(file_path), 0, 0, str(exc)))
            continue
        parsed = _parse_one(source, str(file_path), module, package, result)
        result.files_checked += 1
        if parsed is not None:
            parsed_files.append(parsed)
    project = CallGraph.build(
        [(f.path, f.module, f.package, f.tree) for f in parsed_files])
    for parsed in parsed_files:
        _lint_parsed(parsed, config, rules, result, project)
    result.sort()
    return result


def discover_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """All python files under the given paths, sorted, deduplicated."""
    seen = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                seen[sub] = None
        elif path.is_file() and path.suffix == ".py":
            seen[path] = None
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(seen)


def _parse_one(source: str, path: str, module: str, package: str,
               result: LintResult) -> Optional[_ParsedFile]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.parse_errors.append(parse_error_finding(path, exc))
        return None
    return _ParsedFile(path=path, module=module, package=package, tree=tree,
                       lines=source.splitlines())


def _lint_parsed(parsed: _ParsedFile, config: LintConfig,
                 rules: Sequence[Rule], result: LintResult,
                 project: CallGraph) -> None:
    suppressions = suppression_map(parsed.lines)
    ctx = FileContext(path=parsed.path, module=parsed.module,
                      package=parsed.package, tree=parsed.tree,
                      lines=parsed.lines, config=config, project=project)
    emit = _make_sink(result, suppressions)
    for finding in _unknown_suppression_codes(parsed):
        emit(finding)
    for rule in rules:
        if not config.rule_enabled(rule.code, parsed.package):
            continue
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            emit(finding)


def _make_sink(result: LintResult, suppressions):
    def emit(finding: Finding) -> None:
        if is_suppressed(finding.rule, finding.line, suppressions):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return emit


def _unknown_suppression_codes(parsed: _ParsedFile) -> Iterable[Finding]:
    """SUPP findings for directives naming codes that do not exist.

    A typo'd code silently un-suppresses the intended rule, so it blocks
    like any other finding (the directive itself can suppress SUPP while
    a rename migrates).
    """
    known = set(registered_codes()) | set(ENGINE_CODES)
    for lineno, line in enumerate(parsed.lines, start=1):
        codes = parse_directive(line)
        unknown = sorted(codes - known)
        if unknown:
            yield Finding(
                "SUPP", parsed.path, lineno, 1,
                f"suppression names unknown rule code(s): "
                f"{', '.join(unknown)} (registered: "
                f"{', '.join(registered_codes())})")
