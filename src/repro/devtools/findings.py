"""Finding model shared by every spotlint rule and reporter.

A finding is one violation of one invariant at one source location.  The
model is deliberately flat (no severity ladder): every shipped rule guards
an invariant whose violation corrupts archived data or breaks reproduction
determinism, so all findings block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


@dataclass
class LintResult:
    """Outcome of one lint run: active findings plus bookkeeping."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def sort(self) -> None:
        key = lambda f: (f.path, f.line, f.column, f.rule)  # noqa: E731
        self.findings.sort(key=key)
        self.suppressed.sort(key=key)
        self.parse_errors.sort(key=key)

    def by_rule(self) -> dict:
        """Finding counts per rule code, sorted by code."""
        counts: dict = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict:
        return {
            "schema_version": 2,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "parse_errors": [f.as_dict() for f in self.parse_errors],
            "summary": {
                "finding_count": len(self.findings),
                "parse_error_count": len(self.parse_errors),
                "suppressed_count": len(self.suppressed),
                "by_rule": self.by_rule(),
                "clean": self.clean,
            },
        }


def parse_error_finding(path: str, exc: SyntaxError) -> Finding:
    """A pseudo-finding for files the AST parser rejects."""
    return Finding("PARSE", path, exc.lineno or 0, exc.offset or 0,
                   f"syntax error: {exc.msg}")
