"""Concurrent serving load harness: arrival models, SLO gates, sweeps.

Drives the admission-controlled :class:`~repro.core.frontend.ServingFrontend`
with two arrival models over a zipf-skewed mix of the canonical serving
workload (see :mod:`.servebench`):

* **closed loop** -- a fixed fleet of client threads, each issuing its
  next request only after the previous one resolves.  Concurrency is
  bounded by the fleet size, so with generous per-tenant limits nothing
  is rejected and the run measures the serving path itself: latency
  percentiles, throughput, per-tenant fairness, and -- replayed across
  worker counts -- byte-identity of every response.
* **open loop** -- the whole request schedule arrives as one burst,
  submitted before the workers start.  Token buckets and quotas reject
  deterministically (admission is a pure per-tenant fold over arrival
  times), the bounded queue overflows deterministically (no worker is
  draining yet), and the drain phase then serves exactly the admitted
  prefix.  This is the overload / 429 / 503 half of the SLO story.

Lives in ``devtools`` because it times with the *host* clock; everything
that reaches a response body stays inside the simulation's determinism
envelope.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.frontend import ServingFrontend, Tenant
from ..core.metrics import percentile
from ..core.service import SpotLakeService
from .servebench import RequestSpec, build_backfilled_service, build_workload

#: Default zipf skew exponent of the request mix (1.0 = classic zipf).
ZIPF_S = 1.1

#: Default shape of the concurrent workload.
DEFAULT_TENANT_COUNT = 4
DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS = 320
DEFAULT_WORKER_SWEEP = (1, 2, 4)

#: SLO defaults.  Cached serving answers in well under a millisecond;
#: the p99 ceiling absorbs CI jitter.  The closed-loop model provisions
#: no rejections, so any non-200 is an error.
P99_LIMIT_MS = 250.0
ERROR_RATE_LIMIT = 0.0
FAIRNESS_FLOOR = 0.9


def zipf_mix(requests: Sequence[RequestSpec], total: int,
             seed: int, s: float = ZIPF_S) -> List[RequestSpec]:
    """A ``total``-long request sequence, zipf-skewed over the battery.

    Rank 0 (the hottest dashboard query) dominates, the tail thins as
    ``1/rank^s`` -- the shape real dashboard+probe traffic has.  Pure
    function of (requests, total, seed, s).
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** s for rank in range(len(requests))]
    picks = rng.choices(range(len(requests)), weights=weights, k=total)
    return [requests[i] for i in picks]


def bench_tenants(count: int = DEFAULT_TENANT_COUNT, *,
                  rate: float = 10_000.0, burst: float = 100_000.0,
                  quota_limit: Optional[int] = None,
                  quota_window: float = 60.0) -> Tuple[Tenant, ...]:
    """A uniform tenant fleet (``tenant-0`` .. ``tenant-N-1``).

    The defaults are deliberately non-binding: the closed-loop model
    measures serving, not throttling, and non-binding limits keep every
    admission decision independent of thread interleaving (byte-identity
    across worker counts depends on this).
    """
    return tuple(Tenant(f"tenant-{i}", rate=rate, burst=burst,
                        quota_limit=quota_limit, quota_window=quota_window)
                 for i in range(count))


def _tenant_for(seq: int, tenants: Sequence[Tenant]) -> Tenant:
    """Deterministic round-robin request->tenant assignment."""
    return tenants[seq % len(tenants)]


def _fairness(per_tenant_success: Dict[str, int]) -> float:
    """min/max per-tenant successes (1.0 = perfectly even, 0 = starved)."""
    if not per_tenant_success:
        return 1.0
    lo = min(per_tenant_success.values())
    hi = max(per_tenant_success.values())
    return lo / hi if hi else 1.0


# -- closed loop -----------------------------------------------------------


def run_closed_loop(service: SpotLakeService, mix: Sequence[RequestSpec],
                    tenants: Sequence[Tenant], clients: int,
                    workers: int, arrival_step: float = 0.05) -> dict:
    """One closed-loop run; returns measurements + the response digest.

    Request ``seq`` is assigned tenant ``seq % T`` and client
    ``seq % clients``; each client thread walks its own subsequence
    synchronously.  The digest hashes every ``(client, seq, status,
    body)`` record in deterministic order, so two runs agree iff every
    response is byte-identical.
    """
    frontend = service.frontend(tenants=tenants, workers=workers,
                                queue_depth=max(64, clients * 4))
    per_client: List[List[Tuple[int, RequestSpec]]] = [[] for _ in
                                                       range(clients)]
    for seq, spec in enumerate(mix):
        per_client[seq % clients].append((seq, spec))

    latencies_ms: List[float] = []
    records: List[Tuple[int, int, int, str]] = []
    merge_lock = threading.Lock()

    def client_loop(cid: int) -> None:
        local_lat: List[float] = []
        local_rec: List[Tuple[int, int, int, str]] = []
        for seq, (path, params) in per_client[cid]:
            tenant = _tenant_for(seq, tenants)
            begun = time.perf_counter()
            response = frontend.request(tenant.api_key, path, params,
                                        arrival_time=seq * arrival_step,
                                        timeout=120.0)
            local_lat.append((time.perf_counter() - begun) * 1000.0)
            local_rec.append((cid, seq, response.status, response.json()))
        with merge_lock:
            latencies_ms.extend(local_lat)
            records.extend(local_rec)

    with frontend:
        begun = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients,
                                thread_name_prefix="client") as fleet:
            for future in [fleet.submit(client_loop, c)
                           for c in range(clients)]:
                future.result()
        elapsed = time.perf_counter() - begun

    records.sort(key=lambda r: (r[0], r[1]))
    sha = hashlib.sha256()
    for cid, seq, status, body in records:
        sha.update(f"{cid}|{seq}|{status}|{body}\n".encode("utf-8"))

    per_tenant_success: Dict[str, int] = {t.name: 0 for t in tenants}
    errors = 0
    for _cid, seq, status, _body in records:
        if status == 200:
            per_tenant_success[_tenant_for(seq, tenants).name] += 1
        else:
            errors += 1
    ordered = sorted(latencies_ms)
    return {
        "workers": workers,
        "clients": clients,
        "requests": len(records),
        "elapsed_seconds": elapsed,
        "throughput_rps": len(records) / elapsed if elapsed > 0 else 0.0,
        "p50_ms": percentile(ordered, 50),
        "p95_ms": percentile(ordered, 95),
        "p99_ms": percentile(ordered, 99),
        "max_ms": ordered[-1] if ordered else 0.0,
        "errors": errors,
        "error_rate": errors / len(records) if records else 0.0,
        "fairness": _fairness(per_tenant_success),
        "per_tenant_success": dict(sorted(per_tenant_success.items())),
        "response_digest": sha.hexdigest(),
    }


# -- open loop -------------------------------------------------------------


def run_open_loop(service: SpotLakeService, mix: Sequence[RequestSpec],
                  workers: int, queue_depth: int = 32,
                  rate: float = 5.0, burst: float = 20.0,
                  tenant_count: int = DEFAULT_TENANT_COUNT,
                  arrival_rate: float = 50.0) -> dict:
    """One open-loop burst: submit everything, then start the drain.

    Arrivals come at ``arrival_rate`` requests/sec of *virtual* time
    with binding token buckets, so a deterministic share is 429'd; the
    queue (bounded at ``queue_depth``) overflows deterministically
    because no worker runs until every request is submitted, so the
    overflow is 503'd with ``retry_after`` hints.  The drain phase then
    serves exactly the admitted prefix.
    """
    tenants = tuple(Tenant(f"tenant-{i}", rate=rate, burst=burst)
                    for i in range(tenant_count))
    frontend = service.frontend(tenants=tenants, workers=workers,
                                queue_depth=queue_depth)
    tickets = []
    for seq, (path, params) in enumerate(mix):
        tenant = _tenant_for(seq, tenants)
        tickets.append(frontend.submit(tenant.api_key, path, params,
                                       arrival_time=seq / arrival_rate))
    with frontend:
        responses = [t.result(timeout=120.0) for t in tickets]

    by_status: Dict[str, int] = {}
    retry_after_ok = True
    per_tenant_success: Dict[str, int] = {t.name: 0 for t in tenants}
    for seq, response in enumerate(responses):
        bucket = str(response.status)
        by_status[bucket] = by_status.get(bucket, 0) + 1
        if response.status in (429, 503):
            hint = response.body.get("retry_after")
            if not isinstance(hint, (int, float)) or hint < 0:
                retry_after_ok = False
        elif response.status == 200:
            per_tenant_success[_tenant_for(seq, tenants).name] += 1
    counters = frontend.snapshot()["counters"]
    return {
        "workers": workers,
        "submitted": len(responses),
        "by_status": dict(sorted(by_status.items())),
        "served": counters["served"],
        "rate_limited": counters["rate_limited"],
        "shed": counters["shed"],
        "shed_events": counters["shed_events"],
        "retry_after_on_rejections": retry_after_ok,
        "fairness": _fairness(per_tenant_success),
        "per_tenant_success": dict(sorted(per_tenant_success.items())),
    }


# -- the full report -------------------------------------------------------


def run_frontend_bench(seed: int = 0, days: int = 30, pool_types: int = 8,
                       requests: int = DEFAULT_REQUESTS,
                       clients: int = DEFAULT_CLIENTS,
                       tenant_count: int = DEFAULT_TENANT_COUNT,
                       workers: int = 4,
                       worker_sweep: Sequence[int] = DEFAULT_WORKER_SWEEP,
                       ) -> dict:
    """Closed loop at ``workers``, a worker-count byte-identity sweep,
    and an open-loop overload burst; returns one JSON-able report."""
    service = build_backfilled_service(seed=seed, days=days,
                                       pool_types=pool_types)
    try:
        battery = build_workload(service)
        mix = zipf_mix(battery, requests, seed)

        sweep: Dict[str, dict] = {}
        for count in sorted(set(list(worker_sweep) + [workers])):
            service.metrics.reset()
            sweep[str(count)] = run_closed_loop(
                service, mix, bench_tenants(tenant_count), clients, count)
        digests = {run["response_digest"] for run in sweep.values()}
        closed = sweep[str(workers)]

        service.metrics.reset()
        open_report = run_open_loop(service, mix, workers=workers)

        return {
            "workload": {
                "seed": seed,
                "days": days,
                "pool_types": pool_types,
                "distinct_requests": len(battery),
                "requests": len(mix),
                "zipf_s": ZIPF_S,
                "tenants": tenant_count,
                "clients": clients,
            },
            "closed": closed,
            "open": open_report,
            "worker_sweep": {
                "counts": sorted(int(c) for c in sweep),
                "digests": {c: run["response_digest"]
                            for c, run in sorted(sweep.items())},
                "byte_identical": len(digests) == 1,
            },
        }
    finally:
        service.close()


def evaluate_slos(report: dict, p99_limit_ms: float = P99_LIMIT_MS,
                  error_rate_limit: float = ERROR_RATE_LIMIT,
                  fairness_floor: float = FAIRNESS_FLOOR) -> dict:
    """SLO verdicts for one :func:`run_frontend_bench` report."""
    closed = report["closed"]
    open_report = report["open"]
    sweep = report["worker_sweep"]
    gates = {
        "p99_ms": closed["p99_ms"],
        "p99_limit_ms": p99_limit_ms,
        "p99_ok": closed["p99_ms"] <= p99_limit_ms,
        "error_rate": closed["error_rate"],
        "error_rate_limit": error_rate_limit,
        "error_rate_ok": closed["error_rate"] <= error_rate_limit,
        "fairness": min(closed["fairness"], open_report["fairness"]),
        "fairness_floor": fairness_floor,
        "fairness_ok": (closed["fairness"] >= fairness_floor
                        and open_report["fairness"] >= fairness_floor),
        "byte_identical_across_workers": sweep["byte_identical"],
        "throttling_exercised": (open_report["rate_limited"] > 0
                                 and open_report["shed"] > 0),
        "retry_after_on_rejections":
            open_report["retry_after_on_rejections"],
    }
    gates["passed"] = all([
        gates["p99_ok"], gates["error_rate_ok"], gates["fairness_ok"],
        gates["byte_identical_across_workers"],
        gates["throttling_exercised"], gates["retry_after_on_rejections"],
    ])
    return gates


def summary_lines(report: dict) -> List[str]:
    """Human-readable report, one line per fact."""
    work = report["workload"]
    closed = report["closed"]
    open_report = report["open"]
    sweep = report["worker_sweep"]
    return [
        f"workload: {work['requests']} requests over "
        f"{work['distinct_requests']} distinct queries "
        f"(zipf s={work['zipf_s']}), {work['tenants']} tenants, "
        f"{work['clients']} clients, {work['days']} days backfilled",
        f"closed loop @ {closed['workers']} workers: "
        f"{closed['throughput_rps']:.0f} req/s  "
        f"p50={closed['p50_ms']:.2f}ms p99={closed['p99_ms']:.2f}ms  "
        f"errors={closed['errors']} fairness={closed['fairness']:.2f}",
        f"worker sweep {sweep['counts']}: byte_identical="
        f"{sweep['byte_identical']}",
        f"open burst @ {open_report['workers']} workers: "
        f"{open_report['by_status']}  rate_limited="
        f"{open_report['rate_limited']} shed={open_report['shed']} "
        f"retry_after_on_rejections="
        f"{open_report['retry_after_on_rejections']} "
        f"fairness={open_report['fairness']:.2f}",
    ]
