"""Tiered-lake benchmark harness: round diffing, cold scans, federation.

Four questions decide whether the cold lake + changed-rows diff engine
earns its keep:

1. **Ingest avoidance** -- a steady-state archive (~2% of series change
   per round, the shape SpotLake reports for production spot data) runs
   in lake mode; the ratio of rows the merger captured to rows the diff
   actually wrote to the hot engine is the round-diffing win.  Gate:
   >= 5x.
2. **Cold scan throughput** -- a dense multi-day lake is compacted to
   day files and scanned raw through the v2 columnar cursors.  Gate:
   >= 1M rows/s on the windowed read.
3. **Federated latency + identity** -- the same workload lands in a
   retention-evicting lake archive and an un-evicted in-memory twin;
   full-range history queries must return byte-identical rows, and the
   federated (cold + hot) path must stay within 2x of the hot-only
   latency.
4. **Crash determinism** -- a seeded kill inside each lake publish
   window (``lake.segment`` / ``lake.manifest`` / ``lake.publish``)
   followed by cold recovery + lake trim must land byte-identical to an
   uninterrupted reference at the recovered round count.

Lives in ``devtools`` (not ``lake``) because it times with the *host*
clock: benchmarking is meta-observation, outside the simulation's
seed+clock determinism envelope (latencies are reported, never archived).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.archive import SpotLakeArchive
from ..lake import (
    ADVISOR_TABLE,
    DIM_TYPE,
    IF_SCORE_MEASURE,
    LAKE_CRASH_WINDOWS,
    LAKE_DIR_NAME,
    PRICE_MEASURE,
    PRICE_TABLE,
    RoundMerger,
    SPS_MEASURE,
    SPS_TABLE,
    SpotDataLake,
)
from ..timeseries import RetentionPolicy
from .storagebench import _store_digests

#: Simulation epoch (2022-01-01 UTC), matching the cloudsim clock.
EPOCH = 1640995200.0
BENCH_REGION = "us-bench-1"

#: Steady-state workload shape: one series in ``CHURN_EVERY`` changes
#: value each round (~2% churn), the rest re-observe unchanged.
CHURN_EVERY = 50
DEFAULT_INGEST_ROUNDS = 20
DEFAULT_INGEST_TYPES = 60
DEFAULT_ZONES = 3
DEFAULT_REPEATS = 3


def _zone(z: int) -> str:
    return f"{BENCH_REGION}{chr(ord('a') + z)}"


def _drive_churn_round(archive: SpotLakeArchive, r: int, types: int,
                       zones: int, interval: float,
                       churn: int = CHURN_EVERY) -> float:
    """One steady-state collection round; returns the committed time.

    Values are a pure function of (round, series), with a rotating 1-in-
    ``churn`` schedule deciding which series take a new value this
    round -- deterministic, so two archives driven identically hold
    byte-identical data.
    """
    t = EPOCH + r * interval
    for p in range(types):
        itype = f"bench{p}.large"
        a_epoch = (r + p) // churn
        archive.put_advisor(itype, BENCH_REGION,
                            round(0.05 + 0.01 * ((a_epoch + p) % 5), 4),
                            float((a_epoch + p) % 4),
                            ((a_epoch + p) % 10) * 10, t)
        for z in range(zones):
            pool = p * zones + z
            epoch = (r + pool) // churn
            archive.put_sps(itype, BENCH_REGION, _zone(z),
                            (epoch + pool) % 3 + 1, t)
            archive.put_price(itype, BENCH_REGION, _zone(z),
                              round(1.0 + 0.0001 * ((epoch + pool) % 200), 4),
                              t)
    archive.commit_round(t)
    return t


def _bench_ingest(base: Path, rounds: int, types: int, zones: int) -> dict:
    """Round-diffing win on the steady-state workload."""
    archive = SpotLakeArchive(data_dir=base / "ingest", checkpoint_every=4,
                              lake=True)
    for r in range(rounds):
        _drive_churn_round(archive, r, types, zones, 300.0)
    merged, ingested = archive.rows_merged, archive.rows_ingested
    census = archive.lake.census()
    archive.close()
    return {
        "rounds": rounds,
        "series": types * zones * 2 + types * 3,
        "churn_every": CHURN_EVERY,
        "rows_merged": merged,
        "rows_ingested": ingested,
        "rows_avoided": merged - ingested,
        "reduction_ratio": merged / ingested if ingested else 0.0,
        "lake_rounds": census["rounds"],
        "lake_bytes": census["bytes"],
    }


#: Cold-scan workload: dense (every value changes every round) so day
#: compaction keeps full row density, spread over multiple UTC days.
COLD_ROUNDS = 96
COLD_TYPES = 50
COLD_INTERVAL = 1800.0


def _dense_round(merger: RoundMerger, r: int, types: int,
                 zones: int) -> None:
    for p in range(types):
        itype = f"bench{p}.large"
        merger.add_advisor(itype, BENCH_REGION,
                           round(0.05 + 0.01 * ((r + p) % 17), 4),
                           float((r + p) % 7), ((r + p) % 9) * 10,
                           EPOCH + r * COLD_INTERVAL)
        for z in range(zones):
            pool = p * zones + z
            merger.add_sps(itype, BENCH_REGION, _zone(z),
                           (r + pool) % 3 + 1, EPOCH + r * COLD_INTERVAL)
            merger.add_price(itype, BENCH_REGION, _zone(z),
                             round(1.0 + 0.0001 * ((r + pool) % 500), 4),
                             EPOCH + r * COLD_INTERVAL)


def _bench_cold_scan(base: Path, repeats: int) -> dict:
    """Raw windowed scan rate over compacted day files."""
    lake = SpotDataLake(base / "coldscan")
    merger = RoundMerger()
    for r in range(COLD_ROUNDS):
        _dense_round(merger, r, COLD_TYPES, DEFAULT_ZONES)
        lake.append_round(merger.take_round(EPOCH + r * COLD_INTERVAL))
    before = lake.census()
    compaction = lake.compact(include_active=True)
    after = lake.census()

    start = EPOCH
    end = EPOCH + COLD_ROUNDS * COLD_INTERVAL
    best, rows = float("inf"), 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = lake.scan(start, end)
        best = min(best, time.perf_counter() - started)
        rows = sum(len(r) for _, r in result)
    return {
        "rounds": COLD_ROUNDS,
        "days": len(lake.days()),
        "rows": rows,
        "bytes_before_compaction": before["bytes"],
        "bytes_after_compaction": after["bytes"],
        "partitions_merged": compaction["partitions_merged"],
        "scan_seconds": best,
        "rows_per_second": rows / best if best > 0 else 0.0,
    }


#: Federation workload: long enough for retention to evict well past the
#: first rounds, churny enough that per-row scan work dominates the
#: timing, short enough for a CI smoke run.
FED_ROUNDS = 48
FED_TYPES = 40
FED_INTERVAL = 600.0
FED_RETENTION_ROUNDS = 12
FED_CHURN = 5


def _history_queries() -> List[Tuple[str, str, Dict[str, str]]]:
    return [
        (SPS_TABLE, SPS_MEASURE, {}),
        (PRICE_TABLE, PRICE_MEASURE, {}),
        (ADVISOR_TABLE, IF_SCORE_MEASURE, {}),
        (SPS_TABLE, SPS_MEASURE, {DIM_TYPE: "bench3.large"}),
        (PRICE_TABLE, PRICE_MEASURE, {DIM_TYPE: "bench7.large"}),
    ]


def _bench_federated(base: Path, repeats: int) -> dict:
    """Federated (cold+hot) history vs a hot-only un-evicted twin.

    Caches are disabled on both sides so the timing compares the scan
    paths themselves, not cache hits.  The lake is compacted to day
    files first -- the steady operating state ``repro lake compact``
    maintains -- so cold reads decode day partitions, not a pile of
    per-round files.
    """
    fed = SpotLakeArchive(
        data_dir=base / "federated", checkpoint_every=4, lake=True,
        cache=False,
        retention=RetentionPolicy(
            max_age_seconds=FED_RETENTION_ROUNDS * FED_INTERVAL))
    hot = SpotLakeArchive(cache=False)
    for r in range(FED_ROUNDS):
        _drive_churn_round(fed, r, FED_TYPES, DEFAULT_ZONES, FED_INTERVAL,
                           churn=FED_CHURN)
        _drive_churn_round(hot, r, FED_TYPES, DEFAULT_ZONES, FED_INTERVAL,
                           churn=FED_CHURN)
    fed.lake.compact(include_active=True)
    start = EPOCH
    end = EPOCH + FED_ROUNDS * FED_INTERVAL
    queries = _history_queries()

    identical = all(
        fed.history(table, measure, filters, start, end)
        == hot.history(table, measure, filters, start, end)
        for table, measure, filters in queries)

    def timed(archive: SpotLakeArchive) -> Tuple[float, int]:
        best, rows = float("inf"), 0
        for _ in range(repeats):
            started = time.perf_counter()
            rows = sum(len(archive.history(table, measure, filters,
                                           start, end))
                       for table, measure, filters in queries)
            best = min(best, time.perf_counter() - started)
        return best, rows

    fed_seconds, fed_rows = timed(fed)
    hot_seconds, hot_rows = timed(hot)
    boundary = fed.evicted_through(SPS_TABLE)
    fed.close()
    return {
        "rounds": FED_ROUNDS,
        "retention_rounds": FED_RETENTION_ROUNDS,
        "boundary": boundary,
        "queries": len(queries),
        "rows": fed_rows,
        "byte_identical": identical and fed_rows == hot_rows,
        "hot_seconds": hot_seconds,
        "federated_seconds": fed_seconds,
        "latency_ratio": (fed_seconds / hot_seconds
                          if hot_seconds > 0 else 0.0),
    }


#: Crash-determinism matrix shape (per lake publish window).
DET_ROUNDS = 6
DET_TYPES = 20


def _bench_determinism(base: Path) -> dict:
    """Seeded kill in every lake publish window; recovery must byte-match.

    The synthetic-workload twin of ``doublerun --durability --lake``:
    an uninterrupted reference records hot-store digests and the lake
    manifest digest after every commit; each victim crashes at a seeded
    occurrence of one window, recovers cold, trims the lake to the WAL's
    last committed round, and must land on the reference digests.
    """
    from ..cloudsim.faults import (
        CrashInjector,
        SimulatedCrash,
        seeded_crash_point,
    )
    from ..storage import recover

    def drive(archive: SpotLakeArchive, r: int) -> None:
        _drive_churn_round(archive, r, DET_TYPES, DEFAULT_ZONES, 300.0)

    reference = SpotLakeArchive(data_dir=base / "det-reference",
                                checkpoint_every=2, lake=True)
    ref: Dict[int, Dict[str, str]] = {0: {}}
    ref_lake: Dict[int, str] = {0: reference.lake.digest()}
    for committed in range(1, DET_ROUNDS + 1):
        drive(reference, committed - 1)
        ref[committed] = _store_digests(reference.store)
        ref_lake[committed] = reference.lake.digest()
    reference.close()

    windows = []
    for window in LAKE_CRASH_WINDOWS:
        point = seeded_crash_point(0, window, DET_ROUNDS)
        crash_dir = base / ("det-crash-" + window.replace(".", "-"))
        victim = SpotLakeArchive(data_dir=crash_dir, checkpoint_every=2,
                                 lake=True, crash_hook=CrashInjector([point]))
        crashed = False
        try:
            for r in range(DET_ROUNDS):
                drive(victim, r)
        except SimulatedCrash:
            crashed = True
        victim.close()
        state = recover(crash_dir)
        recovered_lake = SpotDataLake(crash_dir / LAKE_DIR_NAME)
        recovered_lake.trim_to(state.last_commit_time)
        identical = (_store_digests(state.store)
                     == ref.get(state.rounds_committed)
                     and recovered_lake.digest()
                     == ref_lake.get(state.rounds_committed))
        windows.append({"window": window, "hit": point.hit,
                        "crashed": crashed,
                        "rounds_recovered": state.rounds_committed,
                        "identical": identical})
    return {
        "rounds": DET_ROUNDS,
        "windows": windows,
        "identical": all(w["crashed"] and w["identical"] for w in windows),
    }


def run_lake_bench(repeats: int = DEFAULT_REPEATS,
                   workdir: Optional[Path] = None) -> dict:
    """Full lake benchmark; returns the JSON-serializable report."""
    own_tmp = workdir is None
    base = Path(tempfile.mkdtemp(prefix="lakebench-")) if own_tmp \
        else Path(workdir)
    try:
        return {
            "config": {"repeats": repeats, "churn_every": CHURN_EVERY},
            "ingest": _bench_ingest(base, DEFAULT_INGEST_ROUNDS,
                                    DEFAULT_INGEST_TYPES, DEFAULT_ZONES),
            "cold_scan": _bench_cold_scan(base, repeats),
            "federated": _bench_federated(base, repeats),
            "determinism": _bench_determinism(base),
        }
    finally:
        if own_tmp:
            shutil.rmtree(base, ignore_errors=True)


def summary_lines(report: dict) -> List[str]:
    ingest = report["ingest"]
    cold = report["cold_scan"]
    fed = report["federated"]
    det = report["determinism"]
    return [
        f"ingest: {ingest['rounds']} rounds x {ingest['series']} series, "
        f"{ingest['rows_merged']:,} rows merged -> "
        f"{ingest['rows_ingested']:,} ingested hot "
        f"({ingest['rows_avoided']:,} avoided, "
        f"{ingest['reduction_ratio']:.1f}x reduction)",
        f"cold scan: {cold['rows']:,} rows over {cold['days']} day file(s) "
        f"in {cold['scan_seconds']*1000:.1f}ms "
        f"({cold['rows_per_second']:,.0f} rows/s; compaction "
        f"{cold['bytes_before_compaction']:,}B -> "
        f"{cold['bytes_after_compaction']:,}B)",
        f"federated: {fed['queries']} queries, {fed['rows']:,} rows, "
        f"hot-only {fed['hot_seconds']*1000:.1f}ms vs federated "
        f"{fed['federated_seconds']*1000:.1f}ms "
        f"({fed['latency_ratio']:.2f}x), "
        f"byte-identical: {fed['byte_identical']}",
        f"determinism: {len(det['windows'])} lake crash window(s), "
        f"all recovered byte-identical: {det['identical']}",
    ]
