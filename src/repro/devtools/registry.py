"""Rule base class and registry.

Rules self-register via the :func:`rule` decorator at import time; the
engine asks the registry for instances.  Keeping registration declarative
means adding a rule is one file with one decorated class -- the engine,
CLI and reporters pick it up automatically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from .config import LintConfig
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover
    from .callgraph import CallGraph


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str                 #: path as reported in findings
    module: str               #: dotted module name ("repro.core.service")
    package: str              #: first subpackage under repro ("" for top-level)
    tree: ast.AST             #: parsed module
    lines: Sequence[str]      #: raw source lines (no trailing newlines)
    config: LintConfig
    #: project-wide call graph (interprocedural rules); None only when a
    #: rule is driven outside the engine
    project: Optional["CallGraph"] = None

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(rule.code, self.path,
                       getattr(node, "lineno", 0),
                       getattr(node, "col_offset", 0) + 1,
                       message)


class Rule:
    """Base class: one invariant, one code."""

    code: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule patrols ``ctx`` at all (package scoping)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule under its ``code``."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY and _REGISTRY[cls.code] is not cls:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls  # spotlint: disable=CONC003 -- import-time registration, serialized by the module import lock
    return cls


def registered_codes() -> Tuple[str, ...]:
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def make_rules(codes: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (all registered ones by default).

    Unknown codes raise ``KeyError`` -- the CLI turns that into a usage
    error (exit 2) rather than silently linting with fewer rules.
    """
    _ensure_loaded()
    wanted = sorted(_REGISTRY) if codes is None else list(codes)
    out = []
    for code in wanted:
        if code not in _REGISTRY:
            raise KeyError(code)
        out.append(_REGISTRY[code]())
    return out


def _ensure_loaded() -> None:
    """Import the rule modules so their decorators run."""
    from . import rules  # noqa: F401  (import side effect registers rules)
