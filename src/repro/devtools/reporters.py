"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import IO

from .findings import LintResult


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """Conventional ``path:line:col CODE message`` lines plus a summary."""
    lines = []
    for finding in result.parse_errors:
        lines.append(f"{finding.location()} {finding.rule} {finding.message}")
    for finding in result.findings:
        lines.append(f"{finding.location()} {finding.rule} {finding.message}")
    if show_suppressed:
        for finding in result.suppressed:
            lines.append(f"{finding.location()} {finding.rule} "
                         f"{finding.message} [suppressed]")
    if result.clean:
        status = "clean"
    else:
        status = f"{len(result.findings)} finding(s)"
        if result.parse_errors:
            status += f", {len(result.parse_errors)} parse error(s)"
    lines.append(f"spotlint: {status}, {len(result.suppressed)} "
                 f"suppressed, {result.files_checked} file(s), "
                 f"rules: {','.join(sorted(result.rules_run))}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(result.as_dict(), indent=2, sort_keys=True)


def write_report(result: LintResult, stream: IO[str], fmt: str = "text",
                 show_suppressed: bool = False) -> None:
    if fmt == "json":
        stream.write(render_json(result) + "\n")
    else:
        stream.write(render_text(result, show_suppressed) + "\n")
