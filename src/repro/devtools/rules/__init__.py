"""spotlint rule modules; importing this package registers every rule."""

from . import (  # noqa: F401
    clockflow,
    concurrency,
    determinism,
    flow,
    layering,
    quota,
)
