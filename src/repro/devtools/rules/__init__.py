"""spotlint rule modules; importing this package registers every rule."""

from . import clockflow, determinism, layering, quota  # noqa: F401
