"""CLK001: archive writes must be timestamped from the simulation clock.

The archive is the paper's artifact: a record stamped with host wall time
instead of sim time lands in the wrong position of the 181-day window and
silently corrupts every downstream analysis (the Ding-Dong-Ditch class of
dataset artifact).  This rule inspects every archive/timeseries write sink
and flags any argument expression that contains a wall-clock read.

Heuristic: the timestamp cannot be tracked through arbitrary dataflow
statically, so the rule scans the *call's argument subtrees* for
wall-clock calls -- the common failure shape is inline
(``put_price(..., time.time())``).  Wall-clock values laundered through a
variable in a clocked package are still caught by DET001.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import contains_wall_clock_call, dotted_chain
from ..findings import Finding
from ..registry import FileContext, Rule, rule

#: Archive / timeseries write entry points (method-name suffix match).
_WRITE_SINKS = frozenset({
    "put_sps", "put_advisor", "put_price", "write", "ingest",
})


@rule
class ClockFlowRule(Rule):
    code = "CLK001"
    name = "clock-flow"
    description = ("timeseries write whose arguments read the host wall "
                   "clock; timestamps must derive from the sim clock")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is None or chain[-1] not in _WRITE_SINKS:
                continue
            # plain ``write(...)`` on a non-attribute (e.g. file.write)
            # only counts when it looks like a table/archive write
            if chain[-1] == "write" and not self._table_like(chain):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                clock_call = contains_wall_clock_call(arg)
                if clock_call is not None:
                    inner = dotted_chain(clock_call.func)
                    yield ctx.finding(
                        self, clock_call,
                        f"archive write {chain[-1]}() timestamped from "
                        f"{'.'.join(inner)}(); derive the timestamp from "
                        "the simulation clock (clock.now())")

    @staticmethod
    def _table_like(chain) -> bool:
        """Does a bare ``.write`` call target a table/archive object?"""
        bases = set(chain[:-1])
        return bool(bases & {"table", "archive", "store", "series",
                             "sps", "price", "advisor"})
