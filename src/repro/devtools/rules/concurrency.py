"""Concurrency rules CONC001-CONC003 (the static half of spotconc).

PR 5 put real threads under the collection round and ROADMAP item 1
threads the serving front end next; these rules make the thread-safety
obligations checkable instead of conventional:

* CONC001 -- a function reachable from a thread-pool ``submit``/``map``
  target mutates shared state (``self``/``cls`` attributes, module
  globals) without holding a lock;
* CONC002 -- a lock is acquired imperatively without a ``with`` block or
  an adjacent ``try``/``finally`` release (leak on exception = deadlock);
* CONC003 -- a process-wide mutable global (the plan-cache singleton,
  ``solver.STATS``, registries) is mutated outside a lock guard.

Lock detection is syntactic: a ``with`` whose context expression's
dotted chain contains a ``lock``-named segment (``self._lock``,
``STATS.lock``, ``_SHARED_LOCK``) counts as holding that lock.  The
runtime sanitizer (:mod:`repro.devtools.sanitizer`) checks the same
obligations dynamically, so a false negative here is still caught when
the code actually runs threaded.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..astutil import deep_chain
from ..findings import Finding
from ..registry import FileContext, Rule, rule

#: Builtin-collection methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "pop", "popitem",
    "clear", "remove", "discard", "setdefault", "sort", "reverse",
})

#: Constructors exempt from the shared-write rules: the object under
#: construction has not escaped to other threads yet.
_CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__"})


def _is_lock_expr(expr: ast.AST) -> bool:
    """Is this ``with`` context expression a lock (by naming convention)?"""
    chain = deep_chain(expr)
    if chain is None:
        return False
    return any("lock" in seg.lower() for seg in chain
               if seg not in ("self", "cls"))


@dataclass
class Mutation:
    """One in-place mutation of a dotted target inside a function."""

    node: ast.AST             #: anchor for the finding location
    chain: Tuple[str, ...]    #: dotted chain of the mutated object
    kind: str                 #: assign / augassign / delete / call
    locked: bool              #: inside a ``with <lock>`` block

    @property
    def base(self) -> str:
        return self.chain[0]

    def display(self) -> str:
        return ".".join(self.chain)


def scan_mutations(fn_node: ast.AST) -> Tuple[List[Mutation], Set[str],
                                              Set[str]]:
    """(mutations, global-declared names, locally-bound names) of a scope.

    Walks one function body only -- nested defs and lambdas are separate
    scopes (the call graph registers them as functions of their own).
    """
    mutations: List[Mutation] = []
    global_decls: Set[str] = set()
    local_names: Set[str] = set()

    args = getattr(fn_node, "args", None)
    if args is not None:
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            local_names.add(arg.arg)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                local_names.add(extra.arg)

    def record(target: ast.AST, node: ast.AST, kind: str,
               locked: bool) -> None:
        if isinstance(target, ast.Name):
            local_names.add(target.id)
            if target.id in global_decls:
                mutations.append(Mutation(node, (target.id,), kind, locked))
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record(element, node, kind, locked)
            return
        if isinstance(target, ast.Starred):
            record(target.value, node, kind, locked)
            return
        if isinstance(target, ast.Subscript):
            chain = deep_chain(target.value)
        elif isinstance(target, ast.Attribute):
            chain = deep_chain(target)
        else:
            return
        if chain is not None:
            mutations.append(Mutation(node, chain, kind, locked))

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not fn_node:
            return
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            local_names.update(node.names)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            held = locked or any(_is_lock_expr(item.context_expr)
                                 for item in node.items)
            for item in node.items:
                visit(item.context_expr, locked)
                if item.optional_vars is not None:
                    record(item.optional_vars, item.optional_vars,
                           "assign", locked)
            for child in node.body:
                visit(child, held)
            return
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node, "assign", locked)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            record(node.target, node, "assign", locked)
        elif isinstance(node, ast.AugAssign):
            record(node.target, node, "augassign", locked)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                record(target, node, "delete", locked)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            record(node.target, node.target, "assign", locked)
        elif isinstance(node, ast.NamedExpr):
            record(node.target, node, "assign", locked)
        elif isinstance(node, ast.comprehension):
            record(node.target, node.target, "assign", locked)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            local_names.add(node.name)
        elif isinstance(node, ast.Call):
            chain = deep_chain(node.func)
            if chain is not None and len(chain) > 1 and \
                    chain[-1] in MUTATOR_METHODS:
                mutations.append(Mutation(node, chain[:-1], "call", locked))
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for child in ast.iter_child_nodes(fn_node):
        visit(child, False)
    return mutations, global_decls, local_names


def _shared_mutations(fn, module_globals: Set[str]) -> Iterator[Mutation]:
    """Mutations of state visible outside one thread's stack."""
    if fn.name in _CONSTRUCTORS:
        return
    mutations, global_decls, local_names = scan_mutations(fn.node)
    for mutation in mutations:
        base = mutation.base
        if base in ("self", "cls"):
            yield mutation
        elif base in global_decls:
            yield mutation
        elif base in module_globals and base not in local_names and \
                len(mutation.chain) > 1:
            yield mutation


@rule
class SharedWriteRule(Rule):
    code = "CONC001"
    name = "unlocked-shared-write"
    description = ("shared attribute mutated in thread-pool-reachable code "
                   "without holding a lock")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        graph = ctx.project
        if graph is None:
            return
        threaded = graph.threaded_functions()
        module_info = graph.modules.get(ctx.module)
        module_globals = module_info.global_names if module_info else set()
        for fn in graph.functions_in_module(ctx.module):
            seed = threaded.get(fn.qualname)
            if seed is None:
                continue
            for mutation in _shared_mutations(fn, module_globals):
                if mutation.locked:
                    continue
                yield ctx.finding(
                    self, mutation.node,
                    f"{mutation.display()} mutated in {fn.qualname}, which "
                    f"can run on a pool worker (dispatched at "
                    f"{seed.where()}); hold a threading.Lock "
                    f"(with self._lock:) or keep the state thread-local")


@rule
class LockReleaseRule(Rule):
    code = "CONC002"
    name = "lock-release-discipline"
    description = ("lock acquired without a with-statement or try/finally "
                   "release; an exception leaks the lock")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents: Dict[int, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = deep_chain(node.func)
            if chain is None or len(chain) < 2 or chain[-1] != "acquire":
                continue
            receiver = chain[:-1]
            if not any("lock" in seg.lower() for seg in receiver
                       if seg not in ("self", "cls")):
                continue
            if self._released_properly(node, receiver, parents):
                continue
            yield ctx.finding(
                self, node,
                f"{'.'.join(receiver)}.acquire() without `with` or an "
                f"adjacent try/finally release; use `with "
                f"{'.'.join(receiver)}:` so exceptions cannot leak the lock")

    def _released_properly(self, call: ast.Call, receiver: Tuple[str, ...],
                           parents: Dict[int, ast.AST]) -> bool:
        # the statement containing the acquire call
        stmt: Optional[ast.AST] = call
        while stmt is not None and not isinstance(stmt, ast.stmt):
            stmt = parents.get(id(stmt))
        if stmt is None:
            return False
        # case A: inside a try whose finally releases the same lock
        node: Optional[ast.AST] = stmt
        while node is not None:
            parent = parents.get(id(node))
            if isinstance(parent, ast.Try) and node in parent.body and \
                    self._finally_releases(parent, receiver):
                return True
            node = parent
        # case B: the next sibling statement is such a try
        parent = parents.get(id(stmt))
        if parent is None:
            return False
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(parent, field_name, None)
            if not isinstance(block, list) or stmt not in block:
                continue
            index = block.index(stmt)
            if index + 1 < len(block):
                nxt = block[index + 1]
                if isinstance(nxt, ast.Try) and \
                        self._finally_releases(nxt, receiver):
                    return True
        return False

    @staticmethod
    def _finally_releases(try_node: ast.Try,
                          receiver: Tuple[str, ...]) -> bool:
        for stmt in try_node.finalbody:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    chain = deep_chain(sub.func)
                    if chain == receiver + ("release",):
                        return True
        return False


@rule
class GlobalGuardRule(Rule):
    code = "CONC003"
    name = "unguarded-global-mutation"
    description = ("process-wide mutable global mutated outside a lock "
                   "guard")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        graph = ctx.project
        if graph is None:
            return
        options = ctx.config.rule_options.get("conc003", {})
        extra = tuple(options.get("globals", ()))
        watched = graph.watched_names_for(ctx.module, extra=extra)
        module_info = graph.modules.get(ctx.module)
        class_names = module_info.class_names if module_info else set()
        aliases = module_info.aliases if module_info else {}
        for fn in graph.functions_in_module(ctx.module):
            mutations, global_decls, local_names = scan_mutations(fn.node)
            for mutation in mutations:
                if mutation.locked:
                    continue
                base = mutation.base
                if base not in ("self", "cls") and base in local_names \
                        and base not in global_decls:
                    continue
                if base in watched:
                    yield ctx.finding(
                        self, mutation.node,
                        f"process-wide mutable global {watched[base]} "
                        f"mutated in {fn.qualname} outside a lock guard; "
                        f"wrap the mutation in `with <lock>:` or justify "
                        f"with a suppression")
                elif self._is_class_attr_store(mutation, class_names,
                                               aliases):
                    yield ctx.finding(
                        self, mutation.node,
                        f"class attribute {mutation.display()} assigned in "
                        f"{fn.qualname}: class state is process-wide; guard "
                        f"the mutation with a lock")

    @staticmethod
    def _is_class_attr_store(mutation: Mutation, class_names: Set[str],
                             aliases: Dict[str, str]) -> bool:
        if mutation.kind == "call" or len(mutation.chain) < 2:
            return False
        base = mutation.chain[0]
        if base == "cls":
            return True
        if base in class_names:
            return True
        target = aliases.get(base, "")
        leaf = target.rpartition(".")[2]
        return bool(leaf[:1].isupper()) if leaf else False
