"""Determinism rules DET001-DET003.

DESIGN.md's contract for the simulated substrate is "everything is a
deterministic function of the catalog seed and the simulation clock".
These rules catch the three ways that contract silently breaks:

* DET001 -- reading the host wall clock where the sim ``Clock`` is the
  only legal time source;
* DET002 -- drawing from unseeded / process-global randomness;
* DET003 -- letting PYTHONHASHSEED-dependent ordering (set iteration,
  builtin ``hash`` on str) leak into computed output.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import (
    call_chain,
    chain_suffix_matches,
    is_set_expression,
    is_wall_clock_call,
)
from ..findings import Finding
from ..registry import FileContext, Rule, rule

#: ``random``-module functions that touch the process-global PRNG.  The
#: suffix match also catches ``numpy.random.<fn>`` module-level calls,
#: which share the same global-state problem.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "randbytes", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "triangular", "getrandbits", "seed",
})

#: Constructors that are fine seeded but nondeterministic bare.
_SEED_REQUIRED = frozenset({"Random", "default_rng", "SystemRandom"})


@rule
class WallClockRule(Rule):
    code = "DET001"
    name = "wall-clock"
    description = ("host wall-clock read in a simulation package; derive "
                   "time from the simulation Clock instead")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.package in ctx.config.clocked_packages

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and is_wall_clock_call(node):
                chain = call_chain(node)
                yield ctx.finding(
                    self, node,
                    f"wall-clock read {'.'.join(chain)}() in package "
                    f"{ctx.package!r}; every timestamp here must derive "
                    f"from the simulation Clock (cloudsim.clock)")


@rule
class UnseededRandomnessRule(Rule):
    code = "DET002"
    name = "unseeded-randomness"
    description = ("unseeded or process-global randomness; use "
                   "repro._util.stable_rng / seeded generators")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_chain(node)
            if chain is None:
                continue
            message = self._diagnose(node, chain)
            if message:
                yield ctx.finding(self, node, message)

    def _diagnose(self, node: ast.Call, chain) -> str:
        dotted = ".".join(chain)
        if chain_suffix_matches(chain, ("os", "urandom")):
            return "os.urandom() is nondeterministic; derive bytes from " \
                   "repro._util.stable_hash"
        if len(chain) >= 2 and chain[-2] == "uuid" and \
                chain[-1] in ("uuid1", "uuid4"):
            return f"{dotted}() is nondeterministic; build ids from the " \
                   "seed and the sim clock instead"
        if chain[0] == "secrets":
            return f"{dotted}() draws from the OS entropy pool; the " \
                   "reproduction must be seed-deterministic"
        if chain[-1] in _SEED_REQUIRED and not node.args and not node.keywords:
            return f"{dotted}() without a seed falls back to OS entropy; " \
                   "pass an explicit seed (repro._util.stable_hash of the " \
                   "identifying parts)"
        if len(chain) >= 2 and chain[-2] == "random" and \
                chain[-1] in _GLOBAL_RANDOM_FNS:
            return f"{dotted}() uses the process-global PRNG; use a " \
                   "seeded Generator (repro._util.stable_rng)"
        return ""


@rule
class OrderingHazardRule(Rule):
    code = "DET003"
    name = "ordering-hazard"
    description = ("set-iteration order or builtin hash() escaping into "
                   "output; both depend on PYTHONHASHSEED")

    #: Order-sensitive consumers: feeding a set into these bakes the
    #: iteration order into a value.  sorted() is the sanctioned fix and
    #: is deliberately absent.
    _CONSUMERS = frozenset({"list", "tuple", "enumerate", "join"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and \
                    is_set_expression(node.iter):
                yield ctx.finding(
                    self, node.iter,
                    "iterating a set: element order depends on "
                    "PYTHONHASHSEED; iterate sorted(...) instead")
            elif isinstance(node, ast.comprehension) and \
                    is_set_expression(node.iter):
                yield ctx.finding(
                    self, node.iter,
                    "comprehension over a set: element order depends on "
                    "PYTHONHASHSEED; iterate sorted(...) instead")
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        chain = call_chain(node)
        if chain is None:
            return
        if chain == ("hash",):
            yield ctx.finding(
                self, node,
                "builtin hash() is salted per process; use "
                "repro._util.stable_hash for any value that escapes")
            return
        if chain[-1] in self._CONSUMERS:
            for arg in node.args:
                if is_set_expression(arg):
                    yield ctx.finding(
                        self, arg,
                        f"set passed to {chain[-1]}(): materialises "
                        "PYTHONHASHSEED-dependent order; wrap in sorted(...)")
