"""FLOW001: the log-then-apply ordering invariant, as a call-graph rule.

The storage engine's crash-recovery contract (PR 4) is that the WAL sees
every record before the in-memory table does -- otherwise a crash between
apply and log silently loses acknowledged data.  The archive honors it by
routing all writes through the two gate methods (``_write``,
``_put_points``) that log first.  FLOW001 pins the contract: any function
reachable from collection entry points that applies records to a table
(``append_many`` / ``append_point`` / ``write_records`` /
``table(...).write``) must itself call a WAL logging method
(``log_points`` / ``log_record`` / ...) earlier in its body.

The check is per *gate function*, not per path: a new call path that
bypasses ``_write`` and hits ``Table.write`` directly introduces a new
applying function with no logging call, which is exactly what fires.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Tuple

from ..astutil import chain_suffix_matches
from ..findings import Finding
from ..registry import FileContext, Rule, rule

#: Call-chain suffixes that apply records to a table (with "()" markers
#: as produced by astutil.deep_chain).
APPLY_SUFFIXES: Tuple[Tuple[str, ...], ...] = (
    ("append_many",),
    ("append_point",),
    ("write_records",),
    ("table", "()", "write"),
)

#: WAL logging methods that establish the gate.
WAL_GATES = frozenset({
    "log_points", "log_point", "log_record", "log_create_table",
    "log_eviction",
})

#: Qualname suffixes marking collection-side entry points.
DEFAULT_ENTRIES: Tuple[str, ...] = (
    "collect", "collect_once", "run_sps_round", "flush",
)


@rule
class LogThenApplyRule(Rule):
    code = "FLOW001"
    name = "log-then-apply"
    description = ("table apply reachable from collection code without a "
                   "preceding WAL logging call")

    def applies_to(self, ctx: FileContext) -> bool:
        options = ctx.config.rule_options.get("flow001", {})
        packages = tuple(options.get("packages", ("core",)))
        return ctx.package in packages

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        graph = ctx.project
        if graph is None:
            return
        options = ctx.config.rule_options.get("flow001", {})
        entry_suffixes: Sequence[str] = tuple(
            options.get("entries", DEFAULT_ENTRIES))
        entries = [qual for suffix in entry_suffixes
                   for qual in graph.functions_matching(suffix)]
        reachable = graph.reachable(entries)
        for fn in graph.functions_in_module(ctx.module):
            if fn.qualname not in reachable:
                continue
            gate_lines = [site.lineno for site in fn.calls
                          if site.chain[-1] in WAL_GATES]
            for site in fn.calls:
                if not any(chain_suffix_matches(site.chain, pattern)
                           for pattern in APPLY_SUFFIXES):
                    continue
                if any(line <= site.lineno for line in gate_lines):
                    continue
                path = graph.call_path(entries, fn.qualname)
                via = " -> ".join(path) if path else fn.qualname
                yield ctx.finding(
                    self, site.node,
                    f"table apply {'.'.join(site.chain)} in {fn.qualname} "
                    f"(reached via {via}) has no preceding WAL call "
                    f"({', '.join(sorted(WAL_GATES))}); log-then-apply is "
                    f"the crash-recovery contract -- route the write "
                    f"through StorageEngine logging first")
