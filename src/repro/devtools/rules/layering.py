"""LAY001: import layering against the declared package DAG.

DESIGN.md's system inventory implies a strict layering: ``cloudsim``,
``solver``, ``timeseries`` and ``mlcore`` are leaves (they substitute
external systems and must not know about SpotLake); ``core`` assembles
the leaves; ``analysis`` / ``experiments`` / ``apps`` / ``multicloud``
consume ``core``; ``devtools`` sits on top.  The shared helper modules
(``repro._util``, ``repro.scoring``) live below the leaves and are
importable from anywhere.

Keeping the DAG acyclic is what lets ROADMAP-scale refactors (sharding the
archive, swapping the solver, multi-backend stores) replace one layer
without unpicking the rest.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..findings import Finding
from ..registry import FileContext, Rule, rule

_ROOT = "repro"


@rule
class LayeringRule(Rule):
    code = "LAY001"
    name = "layering"
    description = ("cross-package import violating the declared package "
                   "DAG (see [tool.spotlint.layering.dag])")

    def applies_to(self, ctx: FileContext) -> bool:
        # Top-level modules (cli, _util, scoring, __init__) are the
        # composition root / shared base; the DAG constrains subpackages.
        return ctx.package != ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        dag = ctx.config.layering_dag
        if ctx.package not in dag:
            yield ctx.finding(
                self, ctx.tree,
                f"package {ctx.package!r} is not declared in the layering "
                "DAG; add it to [tool.spotlint.layering.dag]")
            return
        allowed = set(dag[ctx.package]) | {ctx.package}
        for node in ast.walk(ctx.tree):
            for target, where in self._imported_modules(ctx, node):
                pkg = self._target_package(ctx, target)
                if pkg is None:
                    continue
                if pkg == "":
                    # importing the repro root re-exports every layer
                    yield ctx.finding(
                        self, where,
                        f"{ctx.package!r} imports the repro root package, "
                        "which aggregates every layer; import the concrete "
                        "module instead")
                elif pkg not in allowed:
                    yield ctx.finding(
                        self, where,
                        f"{ctx.package!r} may not import from {pkg!r} "
                        f"(allowed: {', '.join(sorted(allowed - {ctx.package})) or 'none'})")

    def _imported_modules(self, ctx: FileContext, node: ast.AST):
        """Yield (absolute dotted module, ast node) for every import.

        ``ctx.module`` keeps an explicit ``.__init__`` suffix for package
        files, so "drop the last segment" always yields the containing
        package and relative levels resolve uniformly.
        """
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                yield node.module or "", node
                return
            base = ctx.module.split(".")[:-1]
            if node.level > 1:
                base = base[:-(node.level - 1)]
            if node.module:
                yield ".".join(base + node.module.split(".")), node
            else:
                # ``from .. import x`` imports submodules x of the base
                for alias in node.names:
                    yield ".".join(base + [alias.name]), node

    @staticmethod
    def _target_package(ctx: FileContext, module: str) -> Optional[str]:
        """The repro subpackage a dotted module lives in.

        None -> stdlib/third-party or a shared helper module (exempt);
        "" -> the repro root package itself.
        """
        if not module:
            return None
        parts = module.split(".")
        if parts[0] != _ROOT:
            return None
        if len(parts) == 1:
            return ""
        if parts[1] in ctx.config.shared_modules:
            return None
        return parts[1]
