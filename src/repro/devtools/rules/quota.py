"""QUO001: the SPS quota-bypass rule.

The paper's central operational constraint (Section 3.1) is the ~50
unique-placement-queries per account per 24 h budget; SpotLake honors it by
routing every dataset read through the quota-charging ``Ec2Client`` plus
account rotation.  Code outside ``cloudsim`` that reaches into the engines
behind the client (``cloud.placement`` / ``cloud.pricing`` /
``cloud.advisor`` / ``cloud.market``) gets data the real service could
never have collected -- the exact silent-bypass failure mode the real
deployment hit.

Detection heuristic: an attribute chain where an engine attribute is read
off a cloud-ish base (``cloud`` / ``_cloud`` / ``world``), or a direct
engine construction outside ``cloudsim``.  Paths that are intentional
(web-only advisor scraping, the documented bulk-backfill fast path,
user-side policy probes) carry inline suppressions with their rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_chain
from ..findings import Finding
from ..registry import FileContext, Rule, rule

_ENGINE_ATTRS = frozenset({"placement", "pricing", "advisor", "market"})
_CLOUD_BASES = frozenset({"cloud", "_cloud", "world"})
_ENGINE_CLASSES = frozenset({
    "PlacementScoreEngine", "PricingEngine", "AdvisorEngine", "SpotMarket",
})


@rule
class QuotaBypassRule(Rule):
    code = "QUO001"
    name = "quota-bypass"
    description = ("direct dataset-engine access outside cloudsim; go "
                   "through the quota-enforcing Ec2Client / account pool")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.package != "cloudsim"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        reported = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                chain = dotted_chain(node)
                if chain is None:
                    continue
                hit = self._engine_access(chain)
                if hit and (node.lineno, hit) not in reported:
                    reported.add((node.lineno, hit))
                    yield ctx.finding(
                        self, node,
                        f"direct access to the {hit!r} engine bypasses the "
                        "quota-enforcing Ec2Client surface; use "
                        "cloud.client(account) or a sanctioned wrapper")
            elif isinstance(node, ast.Call):
                chain = dotted_chain(node.func)
                if chain and chain[-1] in _ENGINE_CLASSES:
                    yield ctx.finding(
                        self, node,
                        f"constructing {chain[-1]} outside cloudsim; the "
                        "engines are internals of SimulatedCloud")

    @staticmethod
    def _engine_access(chain) -> str:
        for base, attr in zip(chain, chain[1:]):
            if base in _CLOUD_BASES and attr in _ENGINE_ATTRS:
                return attr
        return ""
