"""Deterministic concurrency sanitizer (the dynamic half of spotconc).

The static rules (CONC001-003, FLOW001) reason over names; this module
watches the real thing.  While installed it

* replaces the ``threading.Lock`` / ``threading.RLock`` factories with
  proxies that record a per-thread **lock acquisition graph** -- an edge
  ``A -> B`` means some thread acquired B while holding A.  A cycle in
  that graph is a lock-order inversion: two threads interleaving the
  ends of the cycle can deadlock, even if this run happened not to
  (**SAN001**);
* patches ``__setattr__`` on the registered shared classes (plan cache,
  table, account pool, metrics registry) so every attribute write checks
  the writing thread: writes on a thread other than the object's owner
  (first writer, i.e. the constructing thread) must hold at least one
  tracked lock (**SAN002**).

Everything observed is a pure function of the program's own scheduling
calls -- no sampling, no timers -- so a violation found once is found on
every run, and a clean run is a clean contract, not luck.  Results come
back as the ordinary :class:`~repro.devtools.findings.LintResult`, which
reuses the reporters, exit codes and suppression accounting of ``repro
lint``.

Usage::

    with ConcurrencySanitizer() as san:
        ... run threaded code ...
    assert san.result().clean

or through the ``conc_sanitizer`` pytest fixture / ``repro lint
--sanitize``.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .findings import Finding, LintResult

#: The real factories, captured before any proxying.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: Pseudo-rule codes the sanitizer reports under.
SANITIZER_CODES = ("SAN001", "SAN002")

#: Pseudo-path findings are anchored to (there is no source file).
SANITIZER_PATH = "<sanitizer>"


class TrackedLock:
    """Proxy around a real lock that reports acquire/release ordering."""

    def __init__(self, sanitizer: "ConcurrencySanitizer", name: str,
                 inner: Any) -> None:
        self._san = sanitizer
        self._inner = inner
        self.name = name

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._san._on_acquire(self.name)
        return got

    def release(self) -> None:
        self._inner.release()
        self._san._on_release(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __getattr__(self, name: str) -> Any:
        # threading.Condition probes its lock for _is_owned /
        # _release_save / _acquire_restore at construction; delegate so a
        # Condition over a tracked RLock keeps correct ownership checks.
        # (_release_save/_acquire_restore run only while the waiter is
        # blocked, so held-lock bookkeeping stays net-consistent.)
        return getattr(self._inner, name)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrackedLock {self.name}>"


@dataclass
class _SharedObject:
    """Ownership record of one registered shared instance."""

    label: str                #: "PlanCache#1"
    owner: int                #: ident of the constructing thread
    obj: Any                  #: strong ref: keeps id() stable while tracked


@dataclass
class _Holdings:
    """Per-thread stack of held tracked-lock names (with reentry counts)."""

    stack: List[str] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)


class ConcurrencySanitizer:
    """Records lock ordering and shared writes while installed."""

    def __init__(self) -> None:
        self._mutex = _REAL_LOCK()
        self._tls = threading.local()
        #: lock name -> {acquired-while-held lock names}
        self._edges: Dict[str, Set[str]] = {}
        #: id(obj) -> ownership record
        self._objects: Dict[int, _SharedObject] = {}
        #: deduplicated (code, message) pairs
        self._violations: Set[Tuple[str, str]] = set()
        self._site_counts: Dict[str, int] = {}
        self._class_counts: Dict[str, int] = {}
        self._saved_setattr: List[Tuple[type, Optional[Any]]] = []
        self._installed = False

    # -- installation ------------------------------------------------------

    def install(self) -> None:
        """Start observing: proxy the lock factories, patch the classes."""
        if self._installed:
            return
        self._installed = True
        threading.Lock = self._make_factory(_REAL_LOCK)  # type: ignore[misc]
        threading.RLock = self._make_factory(_REAL_RLOCK)  # type: ignore[misc]
        for cls in self._shared_classes():
            self._patch_class(cls)

    def uninstall(self) -> None:
        """Stop observing and restore every patched hook."""
        if not self._installed:
            return
        self._installed = False
        threading.Lock = _REAL_LOCK  # type: ignore[misc]
        threading.RLock = _REAL_RLOCK  # type: ignore[misc]
        for cls, original in reversed(self._saved_setattr):
            # spotlint: disable=CONC003 -- install/uninstall run on the
            # test driver thread before/after any workers exist
            if original is None:
                del cls.__setattr__  # spotlint: disable=CONC003 -- see above
            else:
                cls.__setattr__ = original  # type: ignore[method-assign]  # spotlint: disable=CONC003 -- see above
        self._saved_setattr.clear()
        self._objects.clear()

    def __enter__(self) -> "ConcurrencySanitizer":
        self.install()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.uninstall()

    @staticmethod
    def _shared_classes() -> List[type]:
        # imported lazily: devtools must not pull the service stack in at
        # import time (and never through the repro root package, LAY001)
        from ..cloudsim.accounts import AccountPool
        from ..core.metrics import MetricsRegistry, RouteMetrics, TenantMetrics
        from ..core.plan_cache import PlanCache
        from ..timeseries.cache import CacheStats, QueryCache
        from ..timeseries.table import Table
        return [PlanCache, Table, AccountPool, MetricsRegistry,
                QueryCache, CacheStats, RouteMetrics, TenantMetrics]

    def _make_factory(self, real: Any) -> Any:
        def factory(*args: Any, **kwargs: Any) -> TrackedLock:
            frame = sys._getframe(1)
            site = f"{frame.f_code.co_filename}:{frame.f_lineno}"
            with self._mutex:
                n = self._site_counts.get(site, 0) + 1
                self._site_counts[site] = n
            return TrackedLock(self, f"{site}#{n}", real(*args, **kwargs))
        return factory

    def _patch_class(self, cls: type) -> None:
        original = cls.__dict__.get("__setattr__")
        underlying = original if original is not None else object.__setattr__
        sanitizer = self

        def patched(obj: Any, attr: str, value: Any) -> None:
            sanitizer._on_write(obj, attr)
            underlying(obj, attr, value)

        self._saved_setattr.append((cls, original))
        cls.__setattr__ = patched  # type: ignore[method-assign]  # spotlint: disable=CONC003 -- patching happens at install time, before workers start

    # -- observation hooks -------------------------------------------------

    def _holdings(self) -> _Holdings:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = _Holdings()
        return held

    def _on_acquire(self, name: str) -> None:
        held = self._holdings()
        first = held.counts.get(name, 0) == 0
        held.counts[name] = held.counts.get(name, 0) + 1
        held.stack.append(name)
        if not first:
            return  # reentrant re-acquire adds no ordering information
        with self._mutex:
            for other in held.counts:
                if other != name:
                    self._edges.setdefault(other, set()).add(name)

    def _on_release(self, name: str) -> None:
        held = self._holdings()
        if name in held.counts:
            held.counts[name] -= 1
            if held.counts[name] <= 0:
                del held.counts[name]
        for index in range(len(held.stack) - 1, -1, -1):
            if held.stack[index] == name:
                del held.stack[index]
                break

    def _on_write(self, obj: Any, attr: str) -> None:
        with self._mutex:
            record = self._objects.get(id(obj))
            if record is None:
                cls = type(obj).__name__
                n = self._class_counts.get(cls, 0) + 1
                self._class_counts[cls] = n
                self._objects[id(obj)] = _SharedObject(
                    label=f"{cls}#{n}", owner=threading.get_ident(),
                    obj=obj)
                return
        if record.owner == threading.get_ident():
            return
        if self._holdings().counts:
            return  # off-owner write, but under a tracked lock
        site = self._write_site()
        with self._mutex:
            self._violations.add((
                "SAN002",
                f"{record.label}.{attr} written at {site} on a thread "
                f"other than the owner's without holding any tracked "
                f"lock"))

    @staticmethod
    def _write_site() -> str:
        # two frames up: _on_write <- patched __setattr__ <- writer
        frame = sys._getframe(3)
        return f"{frame.f_code.co_filename}:{frame.f_lineno}"

    # -- reporting ---------------------------------------------------------

    def lock_cycles(self) -> List[List[str]]:
        """Deterministic list of lock-order cycles (as name paths)."""
        with self._mutex:
            edges = {a: sorted(bs) for a, bs in self._edges.items()}
        cycles: List[List[str]] = []
        seen: Set[frozenset] = set()
        for start in sorted(edges):
            path = self._find_cycle(start, edges)
            if path and frozenset(path) not in seen:
                seen.add(frozenset(path))
                cycles.append(path)
        return cycles

    @staticmethod
    def _find_cycle(start: str, edges: Dict[str, List[str]]
                    ) -> Optional[List[str]]:
        # DFS for a path start -> ... -> start; deterministic because the
        # adjacency lists are sorted
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        visited: Set[str] = set()
        while stack:
            node, path = stack.pop()
            for succ in edges.get(node, ()):  # sorted
                if succ == start:
                    return path
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def result(self) -> LintResult:
        """Everything observed, as a standard lint result."""
        result = LintResult(rules_run=list(SANITIZER_CODES))
        for cycle in self.lock_cycles():
            loop = " -> ".join(cycle + [cycle[0]])
            result.findings.append(Finding(
                "SAN001", SANITIZER_PATH, 0, 0,
                f"lock-order cycle: {loop}; threads interleaving the ends "
                f"of this cycle can deadlock -- acquire these locks in "
                f"one global order"))
        with self._mutex:
            violations = sorted(self._violations)
        for code, message in violations:
            result.findings.append(Finding(code, SANITIZER_PATH, 0, 0,
                                           message))
        result.files_checked = 0
        result.sort()
        return result


def run_sanitized_probe(seed: int = 11, workers: int = 4,
                        rounds: int = 2,
                        chaos_profile: str = "none") -> LintResult:
    """Run a small parallel collection under the sanitizer.

    This is the ``repro lint --sanitize`` entry point: a real
    multi-worker SPS collection (the repo's most threaded code path)
    executed with lock tracking on, returning whatever the sanitizer
    observed.  Deterministic for fixed arguments.
    """
    import shutil
    import tempfile

    from ..core.plan_cache import PlanCache
    from ..core.service import ServiceConfig, SpotLakeService

    types = ["m5.large", "c5.xlarge", "p3.2xlarge", "i3.large", "t3.micro"]
    sanitizer = ConcurrencySanitizer()
    PlanCache.reset_shared()
    data_dir = tempfile.mkdtemp(prefix="spotconc-")
    try:
        with sanitizer:
            service = SpotLakeService(ServiceConfig(
                seed=seed, instance_types=types, workers=workers,
                chaos_profile=chaos_profile, data_dir=data_dir))
            try:
                for _ in range(rounds):
                    service.sps_collector.collect()
                    service.cloud.clock.advance(600.0)
            finally:
                service.close()
    finally:
        PlanCache.reset_shared()
        shutil.rmtree(data_dir, ignore_errors=True)
    return sanitizer.result()
