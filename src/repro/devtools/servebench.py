"""Serving benchmark harness: a repeated-query workload, cached vs not.

Builds a backfilled SpotLake service, replays the same dashboard-style
request battery against the gateway with the read cache disabled and
then enabled, and reports wall-clock timings, the speedup, the metrics
snapshot, and -- the contract that lets the cache exist at all -- whether
every cached response is byte-identical to its uncached twin.

Lives in ``devtools`` (not ``core``) because it times with the *host*
clock: benchmarking latency is meta-observation, outside the simulation's
seed+clock determinism envelope (latencies are reported, never archived).
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.service import ServiceConfig, SpotLakeService

RequestSpec = Tuple[str, Dict[str, str]]

#: Default workload shape: enough archive to make uncached scans hurt,
#: small enough for a CI smoke run.
DEFAULT_DAYS = 120
DEFAULT_POOL_TYPES = 12
DEFAULT_REPEATS = 40


def build_backfilled_service(seed: int = 0, days: int = DEFAULT_DAYS,
                             pool_types: int = DEFAULT_POOL_TYPES,
                             samples_per_day: int = 2) -> SpotLakeService:
    """A service whose archive holds ``days`` of twice-daily samples for a
    deterministic slice of ``pool_types`` instance types."""
    service = SpotLakeService(ServiceConfig(seed=seed))
    catalog = service.cloud.catalog
    types = sorted({p[0] for p in catalog.all_pools()})[:pool_types]
    pools = [p for p in catalog.all_pools() if p[0] in set(types)]
    start = service.cloud.clock.start
    times = [start + d * 86400.0 + s * (86400.0 / samples_per_day) + 3600.0
             for d in range(days) for s in range(samples_per_day)]
    service.bulk_backfill(times, pools=pools)
    service.cloud.clock.set(times[-1])
    return service


def build_workload(service: SpotLakeService,
                   page_limit: int = 500) -> List[RequestSpec]:
    """The canonical request battery: full-range history scans (the hot
    dashboard path), filtered drill-downs, paginated pages, and point
    lookups -- all with deterministic parameters drawn from the catalog."""
    catalog = service.cloud.catalog
    pools = sorted(catalog.all_pools())
    now = service.cloud.clock.now()
    start = str(service.cloud.clock.start - 1.0)
    end = str(now + 1.0)
    requests: List[RequestSpec] = [
        ("/sps/history", {"start": start, "end": end}),
        ("/price/history", {"start": start, "end": end}),
        ("/advisor/history", {"start": start, "end": end}),
        ("/advisor/history", {"start": start, "end": end,
                              "measure": "savings"}),
        ("/sps/history", {"start": start, "end": end,
                          "limit": str(page_limit)}),
        ("/stats", {}),
    ]
    for itype, region, zone in pools[:3]:
        requests.append(("/sps/history", {
            "start": start, "end": end, "instance_type": itype}))
        requests.append(("/price/history", {
            "start": start, "end": end, "instance_type": itype,
            "region": region, "zone": zone}))
        requests.append(("/latest", {
            "instance_type": itype, "region": region, "zone": zone,
            "at": str(now)}))
    return requests


def _run_workload(service: SpotLakeService, requests: Sequence[RequestSpec],
                  repeats: int) -> Tuple[float, str, int]:
    """Replay the battery ``repeats`` times; returns (seconds, digest of
    every response body, rows served).  The digest hashes each response's
    canonical JSON, so two runs agree iff every body is byte-identical."""
    gateway = service.gateway
    started = time.perf_counter()
    for _ in range(repeats):
        for path, params in requests:
            response = gateway.get(path, params)
            if response.status != 200:
                raise RuntimeError(
                    f"workload request {path} {params} -> {response.status}: "
                    f"{response.body}")
    elapsed = time.perf_counter() - started
    sha = hashlib.sha256()
    rows = 0
    for path, params in requests:
        response = gateway.get(path, params)
        sha.update(response.json().encode("utf-8"))
        count = response.body.get("count")
        rows += count if isinstance(count, int) else 0
    return elapsed, sha.hexdigest(), rows


def run_serve_bench(seed: int = 0, days: int = DEFAULT_DAYS,
                    pool_types: int = DEFAULT_POOL_TYPES,
                    repeats: int = DEFAULT_REPEATS,
                    page_limit: int = 500) -> dict:
    """The full cached-vs-uncached comparison; returns a JSON-able report."""
    service = build_backfilled_service(seed=seed, days=days,
                                       pool_types=pool_types)
    requests = build_workload(service, page_limit=page_limit)

    service.archive.cache_enabled = False
    service.metrics.reset()
    uncached_s, uncached_digest, rows = _run_workload(service, requests,
                                                      repeats)

    service.archive.cache_enabled = True
    service.metrics.reset()
    cached_s, cached_digest, _ = _run_workload(service, requests, repeats)
    snapshot = service.serving_stats()

    total = (repeats + 1) * len(requests)
    return {
        "workload": {
            "seed": seed,
            "days": days,
            "pool_types": pool_types,
            "distinct_requests": len(requests),
            "repeats": repeats,
            "requests_per_mode": total,
            "rows_per_battery": rows,
        },
        "uncached_seconds": uncached_s,
        "cached_seconds": cached_s,
        "speedup": uncached_s / cached_s if cached_s > 0 else float("inf"),
        "byte_identical": uncached_digest == cached_digest,
        "response_digest": cached_digest,
        "metrics": snapshot,
    }


def summary_lines(report: dict) -> List[str]:
    """Human-readable report, one line per fact."""
    work = report["workload"]
    cache = report["metrics"]["cache"]
    lines = [
        f"workload: {work['distinct_requests']} distinct requests x "
        f"{work['repeats']} repeats over {work['days']} days, "
        f"{work['pool_types']} instance types "
        f"({work['rows_per_battery']} rows per battery)",
        f"uncached: {report['uncached_seconds']:.3f}s   "
        f"cached: {report['cached_seconds']:.3f}s   "
        f"speedup: {report['speedup']:.1f}x",
        f"cache: hit_rate={cache['hit_rate']:.3f} "
        f"hits={cache['hits']} misses={cache['misses']}",
        f"byte-identical cached vs uncached responses: "
        f"{report['byte_identical']}",
    ]
    for route, metrics in report["metrics"]["routes"].items():
        lat = metrics["latency"]
        lines.append(
            f"  {route}: n={metrics['requests']} "
            f"p50={lat['p50_ms']:.3f}ms p95={lat['p95_ms']:.3f}ms "
            f"p99={lat['p99_ms']:.3f}ms rows={metrics['rows_served']}")
    return lines
