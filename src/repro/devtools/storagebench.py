"""Storage engine benchmark harness: ingest overhead, recovery, compaction.

Three questions decide whether the WAL/segment engine is cheap enough to
leave on by default:

1. **Ingest overhead** -- the same archive write stream with and without
   a data directory (group-committed WAL on vs pure in-memory).  The
   acceptance gate is a ratio, not an absolute time, so it is robust to
   host speed; each leg is timed ``repeats`` times and the minimum taken
   (the minimum estimates the noise-free cost).
2. **Recovery** -- wall-clock to reconstruct the store from a pure WAL
   replay versus from a checkpointed directory (segments + short tail),
   plus a byte-identity check of the recovered store against the live
   one.
3. **Compaction** -- write amplification and live-set size after a
   multi-checkpoint run, straight from ``StorageEngine.stats()``.

Lives in ``devtools`` (not ``storage``) because it times with the *host*
clock: benchmarking is meta-observation, outside the simulation's
seed+clock determinism envelope (latencies are reported, never archived).
"""

from __future__ import annotations

import hashlib
import random
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.archive import SpotLakeArchive
from ..storage import (
    StorageEngine,
    forced_segment_format,
    recover,
    scan_segment,
    write_segment,
)
from ..timeseries import Record, RetentionPolicy, TimeSeriesStore, dump_store
from ..timeseries.compression import ChangePointSeries
from ..timeseries.record import SeriesKey

#: Workload shape: enough records that per-record costs dominate setup,
#: small enough for a CI smoke run.
DEFAULT_RECORDS = 24000
DEFAULT_TYPES = 40
DEFAULT_ZONES = 3
DEFAULT_COMMIT_EVERY = 1000
DEFAULT_REPEATS = 3


def _pools(types: int = DEFAULT_TYPES,
           zones: int = DEFAULT_ZONES) -> List[Tuple[str, str]]:
    zone_names = [chr(ord("a") + z) for z in range(zones)]
    return [(f"bench{i}.large", f"us-bench-1{zone_names[i % zones]}")
            for i in range(types)]


def _ingest_archive(archive: SpotLakeArchive, records: int,
                    commit_every: int,
                    pools: List[Tuple[str, str]]) -> float:
    """Drive the archive's ingest path; returns elapsed seconds."""
    n_pools = len(pools)
    started = time.perf_counter()
    for i in range(records):
        itype, zone = pools[i % n_pools]
        archive.put_sps(itype, "us-bench-1", zone, (i % 3) + 1, float(i))
        if (i + 1) % commit_every == 0:
            archive.commit_round(float(i))
    return time.perf_counter() - started


def _store_digests(store: TimeSeriesStore) -> Dict[str, str]:
    directory = Path(tempfile.mkdtemp(prefix="storagebench-"))
    try:
        dump_store(store, directory)
        return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
                for p in sorted(directory.glob("*.jsonl"))}
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def _bench_ingest(base: Path, records: int, commit_every: int,
                  repeats: int) -> Tuple[dict, Path]:
    """Archive-level ingest, WAL off vs on; keeps the last WAL directory
    (uncheckpointed, so recovery below replays the whole log)."""
    pools = _pools()
    base_seconds = min(_ingest_archive(SpotLakeArchive(), records,
                                       commit_every, pools)
                       for _ in range(repeats))
    wal_seconds = float("inf")
    wal_dir = base / "ingest-wal"
    for attempt in range(repeats):
        directory = base / f"ingest-{attempt}"
        archive = SpotLakeArchive(data_dir=directory, checkpoint_every=0)
        elapsed = _ingest_archive(archive, records, commit_every, pools)
        archive.close()
        if elapsed < wal_seconds:
            wal_seconds = elapsed
            if wal_dir.exists():
                shutil.rmtree(wal_dir)
            directory.rename(wal_dir)
        else:
            shutil.rmtree(directory)
    return ({
        "records": records,
        "commit_every": commit_every,
        "repeats": repeats,
        "base_seconds": base_seconds,
        "wal_seconds": wal_seconds,
        "overhead_ratio": wal_seconds / base_seconds,
        "records_per_second_wal": records / wal_seconds,
    }, wal_dir)


def _bench_engine_micro(records: int, commit_every: int,
                        repeats: int) -> dict:
    """Engine-level floor: bare ``Table.write`` vs ``log_record`` + write.

    Stricter than the archive-level ratio (no shared ingest overhead to
    dilute the WAL cost); reported for trend-watching, not gated."""
    pools = _pools()

    def stream():
        for i in range(records):
            itype, zone = pools[i % len(pools)]
            yield Record.make({"it": itype, "region": "us-bench-1",
                               "zone": zone}, "sps", (i % 3) + 1, float(i))

    base_seconds = float("inf")
    for _ in range(repeats):
        store = TimeSeriesStore()
        table = store.create_table("t", RetentionPolicy(None))
        started = time.perf_counter()
        for record in stream():
            table.write(record)
        base_seconds = min(base_seconds, time.perf_counter() - started)

    wal_seconds = float("inf")
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="storagebench-") as tmp:
            engine = StorageEngine(Path(tmp))
            store = engine.recovered.store
            engine.attach(store)
            policy = RetentionPolicy(None)
            engine.log_create_table("t", policy)
            table = store.create_table("t", policy)
            started = time.perf_counter()
            rounds = 0
            for i, record in enumerate(stream()):
                engine.log_record("t", record)
                table.write(record)
                if (i + 1) % commit_every == 0:
                    rounds += 1
                    engine.commit_round(float(rounds))
            wal_seconds = min(wal_seconds, time.perf_counter() - started)
            engine.close()
    return {
        "base_seconds": base_seconds,
        "wal_seconds": wal_seconds,
        "overhead_ratio": wal_seconds / base_seconds,
    }


def _bench_recovery(base: Path, wal_dir: Path, records: int,
                    commit_every: int) -> dict:
    """Recovery cost: full-WAL replay vs checkpointed (segments + tail)."""
    pools = _pools()

    started = time.perf_counter()
    replayed = recover(wal_dir)
    replay_seconds = time.perf_counter() - started

    checkpoint_dir = base / "recovery-checkpointed"
    archive = SpotLakeArchive(data_dir=checkpoint_dir, checkpoint_every=4)
    _ingest_archive(archive, records, commit_every, pools)
    live = _store_digests(archive.store)
    archive.close()
    started = time.perf_counter()
    checkpointed = recover(checkpoint_dir)
    checkpointed_seconds = time.perf_counter() - started

    return {
        "wal_replay": {
            "seconds": replay_seconds,
            "rounds": replayed.rounds_committed,
            "operations_replayed": replayed.replayed_operations,
            "records_per_second": (replayed.replayed_operations
                                   / replay_seconds
                                   if replay_seconds > 0 else 0.0),
        },
        "checkpointed": {
            "seconds": checkpointed_seconds,
            "rounds": checkpointed.rounds_committed,
            "operations_replayed": checkpointed.replayed_operations,
        },
        "byte_identical": _store_digests(checkpointed.store) == live,
        "data_loss": replayed.data_loss or checkpointed.data_loss,
    }


def _bench_compaction(base: Path, records: int, commit_every: int) -> dict:
    """Write amplification over a run with frequent checkpoints."""
    directory = base / "compaction"
    archive = SpotLakeArchive(data_dir=directory, checkpoint_every=2)
    _ingest_archive(archive, records, commit_every, _pools())
    stats = archive.engine.stats()
    archive.close()
    return {
        "checkpoints": stats["checkpoints"],
        "segment_bytes_written": stats["segment_bytes_written"],
        "live_segment_bytes": stats["live_segment_bytes"],
        "write_amplification": stats["write_amplification"],
        "compaction_merges": stats["compaction_merges"],
        "compaction_points_dropped": stats["compaction_points_dropped"],
        "wal_bytes_written": stats["wal_bytes_written"],
    }


#: Codec comparison workload: series x change points per series.
DEFAULT_CODEC_SERIES = 48
DEFAULT_CODEC_POINTS = 2500
#: Fraction of the time range covered by the windowed-scan query.
CODEC_WINDOW_FRACTION = 0.25


def _codec_items(series_count: int, points: int,
                 seed: int = 0) -> List[Tuple[SeriesKey, ChangePointSeries]]:
    """A spot-archive-shaped workload: per pool, a price series doing a
    bounded random walk on the $0.0001 grid plus an integer SPS series.
    Deterministic in ``seed`` so both codecs serialize identical items."""
    rng = random.Random(seed)
    items = []
    for s in range(series_count // 2):
        dims = (("it", f"bench{s}.large"), ("region", "us-bench-1"),
                ("zone", f"us-bench-1{chr(ord('a') + s % DEFAULT_ZONES)}"))
        base_price = round(rng.uniform(0.5, 4.0), 4)
        price = base_price
        t = 0.0
        price_t, price_v, sps_t, sps_v = [], [], [], []
        for _ in range(points):
            t += 300.0 * rng.choice((1, 1, 1, 2))
            step = rng.choice((-0.002, -0.001, 0.001, 0.001, 0.002))
            price = round(min(base_price + 0.03,
                              max(base_price - 0.03, price + step)), 4)
            price_t.append(t)
            price_v.append(price)
            sps_t.append(t)
            sps_v.append(rng.choice((1, 1, 2, 2, 2, 3)))
        for measure, times, values in (("spot_price", price_t, price_v),
                                       ("sps", sps_t, sps_v)):
            items.append((SeriesKey(measure, dims), ChangePointSeries(
                times=times, values=values, observed_until=t,
                observation_count=points * 3)))
    items.sort(key=lambda kv: (kv[0].measure_name, kv[0].dimensions))
    return items


def _bench_codec(base: Path, repeats: int,
                 series_count: int = DEFAULT_CODEC_SERIES,
                 points: int = DEFAULT_CODEC_POINTS) -> dict:
    """v1 JSON-lines vs v2 columnar: bytes on disk and cold-scan rate.

    The same logical segment is written in both formats and queried with
    a time window covering ``CODEC_WINDOW_FRACTION`` of the range -- the
    canonical archive read.  The v1 reader must parse the whole file per
    scan; the v2 reader mmaps and decodes only the chunks whose zone maps
    overlap the window, which is where the speedup gate comes from.
    """
    directory = base / "codec"
    directory.mkdir(parents=True, exist_ok=True)
    items = _codec_items(series_count, points)
    meta_v2 = write_segment(directory, 1, "codec", 0, items)
    with forced_segment_format(1):
        meta_v1 = write_segment(directory, 2, "codec", 0, items)

    t_max = max(series.times[-1] for _, series in items)
    start = t_max * (1.0 - 1.5 * CODEC_WINDOW_FRACTION)
    end = start + t_max * CODEC_WINDOW_FRACTION

    def timed_scan(meta) -> Tuple[float, int]:
        best, rows = float("inf"), 0
        for _ in range(repeats):
            started = time.perf_counter()
            result = scan_segment(directory, meta, start, end)
            best = min(best, time.perf_counter() - started)
            rows = sum(len(r) for _, r in result)
        return best, rows

    v1_seconds, v1_rows = timed_scan(meta_v1)
    v2_seconds, v2_rows = timed_scan(meta_v2)
    assert v1_rows == v2_rows, "codecs disagree on the windowed scan"
    total_rows = sum(len(series.times) for _, series in items)
    return {
        "series": len(items),
        "rows": total_rows,
        "v1_bytes": meta_v1.bytes,
        "v2_bytes": meta_v2.bytes,
        "size_ratio": meta_v1.bytes / meta_v2.bytes,
        "window_fraction": CODEC_WINDOW_FRACTION,
        "scan_rows": v1_rows,
        "v1_scan_seconds": v1_seconds,
        "v2_scan_seconds": v2_seconds,
        "v1_rows_per_second": v1_rows / v1_seconds if v1_seconds else 0.0,
        "v2_rows_per_second": v2_rows / v2_seconds if v2_seconds else 0.0,
        "scan_speedup": v1_seconds / v2_seconds if v2_seconds else 0.0,
    }


def run_storage_bench(records: int = DEFAULT_RECORDS,
                      commit_every: int = DEFAULT_COMMIT_EVERY,
                      repeats: int = DEFAULT_REPEATS,
                      workdir: Optional[Path] = None) -> dict:
    """Full storage benchmark; returns the JSON-serializable report."""
    own_tmp = workdir is None
    base = Path(tempfile.mkdtemp(prefix="storagebench-")) if own_tmp \
        else Path(workdir)
    try:
        ingest, wal_dir = _bench_ingest(base, records, commit_every, repeats)
        report = {
            "config": {"records": records, "commit_every": commit_every,
                       "repeats": repeats},
            "ingest": ingest,
            "engine_micro": _bench_engine_micro(records, commit_every,
                                                repeats),
            "recovery": _bench_recovery(base, wal_dir, records,
                                        commit_every),
            "compaction": _bench_compaction(base, records, commit_every),
            "codec": _bench_codec(base, repeats),
        }
        return report
    finally:
        if own_tmp:
            shutil.rmtree(base, ignore_errors=True)


def summary_lines(report: dict) -> List[str]:
    ingest = report["ingest"]
    micro = report["engine_micro"]
    recovery = report["recovery"]
    compaction = report["compaction"]
    codec = report["codec"]
    return [
        f"ingest: {ingest['records']} records, WAL off "
        f"{ingest['base_seconds']:.3f}s -> WAL on "
        f"{ingest['wal_seconds']:.3f}s "
        f"({ingest['overhead_ratio']:.2f}x overhead, "
        f"{ingest['records_per_second_wal']:,.0f} rec/s)",
        f"engine floor: bare write {micro['base_seconds']:.3f}s vs "
        f"log+write {micro['wal_seconds']:.3f}s "
        f"({micro['overhead_ratio']:.2f}x)",
        f"recovery: full WAL replay {recovery['wal_replay']['seconds']:.3f}s "
        f"({recovery['wal_replay']['operations_replayed']} ops, "
        f"{recovery['wal_replay']['rounds']} rounds); checkpointed "
        f"{recovery['checkpointed']['seconds']:.3f}s "
        f"({recovery['checkpointed']['operations_replayed']} tail ops)",
        f"recovered store byte-identical to live: "
        f"{recovery['byte_identical']}",
        f"compaction: {compaction['checkpoints']} checkpoints, "
        f"write amplification {compaction['write_amplification']:.2f}x, "
        f"{compaction['compaction_merges']} merges, "
        f"live segments {compaction['live_segment_bytes']:,} bytes",
        f"codec: v1 {codec['v1_bytes']:,}B -> v2 {codec['v2_bytes']:,}B "
        f"({codec['size_ratio']:.1f}x smaller); "
        f"{codec['window_fraction']:.0%}-window scan "
        f"{codec['v1_rows_per_second']:,.0f} -> "
        f"{codec['v2_rows_per_second']:,.0f} rows/s "
        f"({codec['scan_speedup']:.1f}x)",
    ]
