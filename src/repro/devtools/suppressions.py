"""Inline suppression comments.

Two forms, mirroring conventional linters:

* trailing, on the offending line::

      value = hash(name)  # spotlint: disable=DET003 -- reason

* standalone, on a comment line above (for lines that are already long); a
  standalone directive covers itself, any continuation comment lines, and
  the first code line that follows::

      # spotlint: disable=QUO001 -- advisor is web-only (Section 3.1)
      ratio = self.cloud.advisor.interruption_ratio(itype, region, now)

Everything after ``--`` is a free-form justification; spotlint does not
parse it but reviewers should insist on one.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Sequence

_DIRECTIVE = re.compile(
    r"#\s*spotlint:\s*disable=([A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)")


def parse_directive(line: str) -> FrozenSet[str]:
    """Rule codes disabled by a directive on ``line`` (empty when none)."""
    match = _DIRECTIVE.search(line)
    if not match:
        return frozenset()
    return frozenset(code.strip() for code in match.group(1).split(","))


def suppression_map(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Map of 1-based line number -> rule codes suppressed on that line."""
    out: Dict[int, FrozenSet[str]] = {}

    def add(line_no: int, codes: FrozenSet[str]) -> None:
        out[line_no] = out.get(line_no, frozenset()) | codes

    for idx, line in enumerate(lines, start=1):
        codes = parse_directive(line)
        if not codes:
            continue
        add(idx, codes)
        if line.lstrip().startswith("#"):
            # standalone directive: cover continuation comment lines and
            # the first code line after them
            cursor = idx  # 0-based index of the next line in ``lines``
            while cursor < len(lines) and \
                    lines[cursor].lstrip().startswith("#"):
                add(cursor + 1, codes)
                cursor += 1
            if cursor < len(lines):
                add(cursor + 1, codes)
    return out


def is_suppressed(rule: str, line: int,
                  suppressions: Dict[int, FrozenSet[str]]) -> bool:
    return rule in suppressions.get(line, frozenset())
