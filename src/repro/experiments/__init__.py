"""Real-request experiments and prediction (paper Sections 5.4-5.5)."""

from .categorize import COMBOS, Candidate, combo_counts, scan_candidates
from .outcomes import ComboOutcome, LatencyCdfs, fulfillment_latency_cdfs, run_duration_cdfs, table3
from .runner import CaseResult, ExperimentRunner, EXPERIMENT_HORIZON_HOURS, POLL_INTERVAL_SECONDS
from .sampler import prefer_cheap, sample_cases

__all__ = [
    "COMBOS", "Candidate", "combo_counts", "scan_candidates",
    "ComboOutcome", "LatencyCdfs", "fulfillment_latency_cdfs",
    "run_duration_cdfs", "table3",
    "CaseResult", "ExperimentRunner", "EXPERIMENT_HORIZON_HOURS",
    "POLL_INTERVAL_SECONDS",
    "prefer_cheap", "sample_cases",
]

from .prediction import (
    CLASSES,
    CLASS_INDEX,
    FEATURE_NAMES,
    MethodScore,
    build_dataset,
    case_features,
    cost_save_heuristic,
    if_heuristic,
    prediction_study,
    sps_heuristic,
)

__all__ += [
    "CLASSES", "CLASS_INDEX", "FEATURE_NAMES", "MethodScore",
    "build_dataset", "case_features", "cost_save_heuristic",
    "if_heuristic", "prediction_study", "sps_heuristic",
]
