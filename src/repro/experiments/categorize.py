"""Score categorization and experiment combos (paper Section 5.4).

The fulfillment/interruption experiments stratify candidate pools by the
pair (placement-score category, interruption-free-score category), keeping
five combinations: H-H, H-L, M-M, L-H and L-L, where H/M/L are exactly the
score values 3.0 / 2.0 / 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.scores import categorize
from ..cloudsim import SimulatedCloud

#: The five experiment combinations, in the paper's Table 3 order.
COMBOS = ("H-H", "H-L", "M-M", "L-H", "L-L")


@dataclass(frozen=True)
class Candidate:
    """One pool eligible for the experiment, with its scores at sampling."""

    instance_type: str
    region: str
    availability_zone: str
    sps_score: int
    if_score: float

    @property
    def combo(self) -> Optional[str]:
        """The experiment combo this candidate belongs to, if any."""
        s = categorize(float(self.sps_score))
        i = categorize(self.if_score)
        if not s or not i:
            return None
        label = f"{s}-{i}"
        return label if label in COMBOS else None


def scan_candidates(cloud: SimulatedCloud, timestamp: float,
                    max_pools: Optional[int] = None) -> List[Candidate]:
    """Score every pool at ``timestamp`` and keep those in a target combo.

    ``max_pools`` truncates the scan (deterministically, catalog order) for
    cheaper tests; the paper scanned everything via the archive.
    """
    from ..analysis.scores import interruption_free_score

    catalog = cloud.catalog
    pools = catalog.all_pools()
    if max_pools is not None:
        pools = pools[:max_pools]
    out: List[Candidate] = []
    ratio_cache: Dict[Tuple[str, str], float] = {}
    for itype, region, zone in pools:
        # spotlint: disable=QUO001 -- experiment-design stratification
        # (Section 5.4) reads ground truth to bucket candidate pools; the
        # measured experiment itself goes through the client
        sps = cloud.placement.zone_score(itype, region, zone, timestamp)
        pair = (itype, region)
        if pair not in ratio_cache:
            # spotlint: disable=QUO001 -- same ground-truth stratification
            ratio_cache[pair] = cloud.advisor.interruption_ratio(
                itype, region, timestamp)
        ifs = interruption_free_score(ratio_cache[pair])
        candidate = Candidate(itype, region, zone, sps, ifs)
        if candidate.combo is not None:
            out.append(candidate)
    return out


def combo_counts(candidates: List[Candidate]) -> Dict[str, int]:
    """Candidate pool sizes per combo (L-H is the scarce one in the paper)."""
    counts = {combo: 0 for combo in COMBOS}
    for c in candidates:
        if c.combo:
            counts[c.combo] += 1
    return counts
