"""Experiment outcome aggregation (paper Table 3 and Figure 11).

Table 3: per score combo, the share of cases never fulfilled within 24
hours and the share interrupted at least once.

Figure 11: CDFs of (a) the latency from submission to first fulfillment
and (b) the time a fulfilled instance ran before its first interruption,
per combo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .categorize import COMBOS
from .runner import CaseResult


@dataclass
class ComboOutcome:
    """One Table 3 row."""

    combo: str
    cases: int
    not_fulfilled_percent: float
    interrupted_percent: float


def table3(results: Sequence[CaseResult]) -> List[ComboOutcome]:
    """Not-fulfilled / interrupted percentages per combo, Table 3 order."""
    rows: List[ComboOutcome] = []
    for combo in COMBOS:
        group = [r for r in results if r.combo == combo]
        if not group:
            continue
        n = len(group)
        nf = sum(1 for r in group if not r.fulfilled)
        ir = sum(1 for r in group if r.interrupted)
        rows.append(ComboOutcome(combo, n, 100.0 * nf / n, 100.0 * ir / n))
    return rows


def _cdf(values: List[float]) -> Tuple[np.ndarray, np.ndarray]:
    if not values:
        return np.array([]), np.array([])
    xs = np.sort(np.array(values))
    fs = np.arange(1, len(xs) + 1) / len(xs)
    return xs, fs


@dataclass
class LatencyCdfs:
    """Figure 11 series: per combo, a CDF over seconds."""

    series: Dict[str, Tuple[np.ndarray, np.ndarray]]

    def median(self, combo: str) -> float:
        xs, _ = self.series.get(combo, (np.array([]), np.array([])))
        return float(np.median(xs)) if len(xs) else float("nan")

    def fraction_below(self, combo: str, seconds: float) -> float:
        xs, _ = self.series.get(combo, (np.array([]), np.array([])))
        if not len(xs):
            return float("nan")
        return float(np.mean(xs <= seconds))


def fulfillment_latency_cdfs(results: Sequence[CaseResult]) -> LatencyCdfs:
    """Figure 11a: time until a spot request is fulfilled, per combo."""
    series = {}
    for combo in COMBOS:
        values = [r.fulfillment_latency for r in results
                  if r.combo == combo and r.fulfillment_latency is not None]
        series[combo] = _cdf([float(v) for v in values])
    return LatencyCdfs(series)


def run_duration_cdfs(results: Sequence[CaseResult]) -> LatencyCdfs:
    """Figure 11b: time until a fulfilled instance is interrupted, per
    combo (only cases that were both fulfilled and interrupted)."""
    series = {}
    for combo in COMBOS:
        values = [r.first_run_duration for r in results
                  if r.combo == combo and r.first_run_duration is not None]
        series[combo] = _cdf([float(v) for v in values])
    return LatencyCdfs(series)
