"""Spot-outcome prediction study (paper Section 5.5, Table 4).

Defines the three-class problem (NoInterrupt / Interrupted / NoFulfill) over
the Section-5.4 experiment results and compares:

* three *current-value heuristics*, implementable without any archive --
  thresholding the current interruption-free score (IF), the current spot
  placement score (SPS), or the current cost saving (Cost Save);
* a random forest (RF) on features extracted from the *preceding month* of
  archived SPS / interruption-free history -- the capability only the
  proposed archive service provides.

The paper reports accuracy/F1 of IF 0.45/0.43, SPS 0.64/0.58, Cost Save
0.39/0.28 and RF 0.73/0.73; the reproduction target is the ordering (RF
best, SPS the best heuristic, Cost Save near chance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.archive import DIM_REGION, DIM_TYPE, DIM_ZONE, SpotLakeArchive
from ..mlcore import RandomForestClassifier, accuracy, macro_f1, train_test_split
from .runner import CaseResult

#: Class encoding of the prediction target.
CLASSES = ("NoInterrupt", "Interrupted", "NoFulfill")
CLASS_INDEX = {name: i for i, name in enumerate(CLASSES)}

#: Feature vector layout produced by :func:`case_features`.
FEATURE_NAMES = (
    "sps_current",
    "sps_mean_30d",
    "sps_min_30d",
    "sps_frac_high_30d",
    "sps_changes_30d",
    "if_current",
    "if_mean_30d",
    "if_min_30d",
    "if_changes_30d",
    "savings_current",
)


def _series_stats(values: List[float]) -> Tuple[float, float, float, float, int]:
    arr = np.array([v for v in values if v is not None and not np.isnan(v)])
    if len(arr) == 0:
        return (np.nan,) * 4 + (0,)  # type: ignore[return-value]
    changes = int(np.sum(arr[1:] != arr[:-1]))
    high = float(np.mean(arr == arr.max())) if len(arr) else np.nan
    return float(arr[-1]), float(arr.mean()), float(arr.min()), high, changes


def case_features(archive: SpotLakeArchive, case: CaseResult,
                  submit_time: float, window_days: float = 30.0,
                  samples: int = 60) -> np.ndarray:
    """Feature vector for one case from the preceding month of history."""
    cand = case.candidate
    start = submit_time - window_days * 86400.0
    times = np.linspace(start, submit_time, samples)

    sps_vals = [archive.sps_at(cand.instance_type, cand.region,
                               cand.availability_zone, t) for t in times]
    if_vals = [archive.if_score_at(cand.instance_type, cand.region, t)
               for t in times]
    savings = archive.savings_at(cand.instance_type, cand.region, submit_time)

    sps_arr = np.array([np.nan if v is None else float(v) for v in sps_vals])
    if_arr = np.array([np.nan if v is None else float(v) for v in if_vals])

    def stats(arr: np.ndarray, high_value: float) -> Tuple[float, ...]:
        good = arr[~np.isnan(arr)]
        if len(good) == 0:
            return (np.nan, np.nan, np.nan, np.nan, 0.0)
        changes = float(np.sum(good[1:] != good[:-1]))
        return (float(good[-1]), float(good.mean()), float(good.min()),
                float(np.mean(good == high_value)), changes)

    s_last, s_mean, s_min, s_high, s_chg = stats(sps_arr, 3.0)
    i_last, i_mean, i_min, i_high, i_chg = stats(if_arr, 3.0)
    return np.array([
        s_last if not np.isnan(s_last) else float(cand.sps_score),
        s_mean if not np.isnan(s_mean) else float(cand.sps_score),
        s_min if not np.isnan(s_min) else float(cand.sps_score),
        s_high if not np.isnan(s_high) else 1.0,
        s_chg,
        i_last if not np.isnan(i_last) else cand.if_score,
        i_mean if not np.isnan(i_mean) else cand.if_score,
        i_min if not np.isnan(i_min) else cand.if_score,
        i_chg,
        float(savings) if savings is not None else 65.0,
    ])


def build_dataset(archive: SpotLakeArchive, results: Sequence[CaseResult],
                  submit_time: float, window_days: float = 30.0
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """(X, y) over all cases; labels follow :data:`CLASSES`."""
    X = np.vstack([case_features(archive, r, submit_time, window_days)
                   for r in results])
    y = np.array([CLASS_INDEX[r.outcome_label] for r in results])
    return X, y


# ---------------------------------------------------------------------------
# Current-value heuristics (paper's comparison baselines)
# ---------------------------------------------------------------------------

def sps_heuristic(sps_current: np.ndarray) -> np.ndarray:
    """SPS 3 -> NoInterrupt, 2 -> Interrupted, 1 -> NoFulfill (paper)."""
    out = np.full(len(sps_current), CLASS_INDEX["Interrupted"])
    out[sps_current >= 3.0] = CLASS_INDEX["NoInterrupt"]
    out[sps_current <= 1.0] = CLASS_INDEX["NoFulfill"]
    return out


def if_heuristic(if_current: np.ndarray) -> np.ndarray:
    """Empirical interruption-free thresholds: high -> NoInterrupt, low ->
    NoFulfill, middle -> Interrupted."""
    out = np.full(len(if_current), CLASS_INDEX["Interrupted"])
    out[if_current >= 2.5] = CLASS_INDEX["NoInterrupt"]
    out[if_current <= 1.0] = CLASS_INDEX["NoFulfill"]
    return out


def cost_save_heuristic(savings_current: np.ndarray) -> np.ndarray:
    """Empirical savings thresholds (weak by design: the saving percentage
    carries little availability information, as Table 4 shows)."""
    out = np.full(len(savings_current), CLASS_INDEX["Interrupted"])
    out[savings_current < 62.0] = CLASS_INDEX["NoInterrupt"]
    out[savings_current > 74.0] = CLASS_INDEX["NoFulfill"]
    return out


@dataclass
class MethodScore:
    """One Table 4 column."""

    method: str
    accuracy: float
    f1: float


def prediction_study(archive: SpotLakeArchive, results: Sequence[CaseResult],
                     submit_time: float, window_days: float = 30.0,
                     test_fraction: float = 0.3, seed: int = 0,
                     n_estimators: int = 100,
                     feature_mask: Optional[Sequence[int]] = None
                     ) -> List[MethodScore]:
    """Table 4: evaluate the three heuristics and the RF on one test split.

    ``feature_mask`` restricts the RF's feature columns (used by the
    feature-window ablation bench).
    """
    X, y = build_dataset(archive, results, submit_time, window_days)
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_fraction, seed=seed)

    sps_col = FEATURE_NAMES.index("sps_current")
    if_col = FEATURE_NAMES.index("if_current")
    save_col = FEATURE_NAMES.index("savings_current")

    scores = [
        MethodScore("IF",
                    accuracy(y_test, if_heuristic(X_test[:, if_col])),
                    macro_f1(y_test, if_heuristic(X_test[:, if_col]))),
        MethodScore("SPS",
                    accuracy(y_test, sps_heuristic(X_test[:, sps_col])),
                    macro_f1(y_test, sps_heuristic(X_test[:, sps_col]))),
        MethodScore("CostSave",
                    accuracy(y_test, cost_save_heuristic(X_test[:, save_col])),
                    macro_f1(y_test, cost_save_heuristic(X_test[:, save_col]))),
    ]

    cols = list(feature_mask) if feature_mask is not None else list(range(X.shape[1]))
    forest = RandomForestClassifier(n_estimators=n_estimators, random_state=seed)
    forest.fit(X_train[:, cols], y_train)
    predictions = forest.predict(X_test[:, cols])
    scores.append(MethodScore("RF",
                              accuracy(y_test, predictions),
                              macro_f1(y_test, predictions)))
    return scores
