"""Real-world-style fulfillment/interruption experiment (paper Section 5.4).

For each sampled case: submit a single *persistent* spot request with the
bid set to the on-demand price, poll the request status every five seconds
for 24 hours, and record when it was fulfilled and when the instance was
interrupted.  The runner polls through the same describe API a real
experiment would, against the event-driven lifecycle simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cloudsim import Account, SimulatedCloud
from ..cloudsim.clock import SECONDS_PER_HOUR
from ..cloudsim.lifecycle import RequestState
from .categorize import Candidate

#: The paper's polling cadence and horizon.
POLL_INTERVAL_SECONDS = 5.0
EXPERIMENT_HORIZON_HOURS = 24.0


@dataclass
class CaseResult:
    """Outcome of one experimental case."""

    candidate: Candidate
    request_id: str
    fulfilled: bool
    interrupted: bool
    fulfillment_latency: Optional[float]  # seconds, first fulfillment
    first_run_duration: Optional[float]   # seconds until first interruption
    interruption_count: int
    status_samples: int

    @property
    def combo(self) -> str:
        assert self.candidate.combo is not None
        return self.candidate.combo

    @property
    def outcome_label(self) -> str:
        """Three-way label used by the Section 5.5 prediction task."""
        if not self.fulfilled:
            return "NoFulfill"
        return "Interrupted" if self.interrupted else "NoInterrupt"


class ExperimentRunner:
    """Submits and monitors the experiment's spot requests."""

    def __init__(self, cloud: SimulatedCloud,
                 poll_interval: float = POLL_INTERVAL_SECONDS,
                 horizon_hours: float = EXPERIMENT_HORIZON_HOURS,
                 coarse_polling: bool = True):
        self.cloud = cloud
        self.poll_interval = poll_interval
        self.horizon = horizon_hours * SECONDS_PER_HOUR
        #: with coarse_polling the runner reads the generated event timeline
        #: directly instead of stepping 17,280 describe calls per case; the
        #: recorded transitions are identical to 5 s polling up to one poll
        #: interval of rounding.
        self.coarse_polling = coarse_polling
        self._account = Account("experiment-runner")

    def run_case(self, candidate: Candidate) -> CaseResult:
        """Run one 24-hour persistent-request experiment."""
        client = self.cloud.client(self._account)
        itype = self.cloud.catalog.instance_type(candidate.instance_type)
        request_id = client.request_spot_instances(
            candidate.instance_type, candidate.availability_zone,
            spot_price=itype.on_demand_price,  # bid == on-demand (paper)
            persistent=True,
            horizon_hours=self.horizon / SECONDS_PER_HOUR)
        request = self.cloud.get_request(request_id)

        if self.coarse_polling:
            fulfills = request.fulfillment_times()
            interrupts = request.interruption_times()
            samples = int(self.horizon / self.poll_interval)
        else:
            fulfills, interrupts, samples = self._poll(request_id, request.created_at)

        latency = fulfills[0] - request.created_at if fulfills else None
        duration = None
        if fulfills and interrupts:
            duration = interrupts[0] - fulfills[0]
        return CaseResult(
            candidate=candidate,
            request_id=request_id,
            fulfilled=bool(fulfills),
            interrupted=bool(interrupts),
            fulfillment_latency=latency,
            first_run_duration=duration,
            interruption_count=len(interrupts),
            status_samples=samples,
        )

    def _poll(self, request_id: str, created_at: float):
        """Literal 5-second polling through the describe API."""
        client = self.cloud.client(self._account)
        request = self.cloud.get_request(request_id)
        fulfills: List[float] = []
        interrupts: List[float] = []
        samples = 0
        last_state = RequestState.PENDING_EVALUATION
        t = created_at
        end = created_at + self.horizon
        while t <= end:
            state = request.state_at(t)
            samples += 1
            if state is RequestState.FULFILLED and last_state is not RequestState.FULFILLED:
                fulfills.append(t)
            if last_state is RequestState.FULFILLED and state in (
                    RequestState.PENDING_EVALUATION, RequestState.TERMINAL):
                interrupts.append(t)
            last_state = state
            t += self.poll_interval
        return fulfills, interrupts, samples

    def run_all(self, candidates: Sequence[Candidate]) -> List[CaseResult]:
        """Run every case; cases are independent 24-hour experiments."""
        return [self.run_case(c) for c in candidates]
