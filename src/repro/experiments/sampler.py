"""Experiment case sampling (paper Section 5.4).

The paper generated 503 experimental cases by stratified *under-sampling*:
every combo shrunk to the size of the smallest one (L-H), with instance
types and availability zones spread uniformly inside each combo (pure
random sampling biased toward popular types/regions), and smaller/cheaper
sizes preferred to bound cost.
"""

from __future__ import annotations

from typing import List, Optional

from ..cloudsim import Catalog, SimulatedCloud
from ..mlcore.sampling import stratified_undersample
from .categorize import COMBOS, Candidate, combo_counts, scan_candidates


def prefer_cheap(catalog: Catalog, candidates: List[Candidate]) -> List[Candidate]:
    """Stable-sort candidates small-and-cheap first (paper's cost control)."""
    def cost_key(c: Candidate) -> tuple:
        itype = catalog.instance_type(c.instance_type)
        return (itype.size_rank, itype.on_demand_price)
    return sorted(candidates, key=cost_key)


def sample_cases(cloud: SimulatedCloud, timestamp: float,
                 per_combo: Optional[int] = None,
                 max_pools: Optional[int] = None,
                 seed: int = 0) -> List[Candidate]:
    """Draw the stratified experiment cases.

    ``per_combo`` defaults to the scarcest combo's candidate count (the
    paper's L-H), reproducing the ~503-case design at full catalog scale.
    """
    candidates = scan_candidates(cloud, timestamp, max_pools)
    candidates = prefer_cheap(cloud.catalog, candidates)
    counts = combo_counts(candidates)
    nonempty = {c: n for c, n in counts.items() if n > 0}
    if not nonempty:
        return []
    target = per_combo or min(nonempty.values())
    return stratified_undersample(
        candidates,
        stratum_of=lambda c: c.combo,
        spread_of=lambda c: c.instance_type,
        per_stratum=target,
        seed=seed,
    )
