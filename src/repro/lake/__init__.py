"""Tiered lake: round merge + diff ingest, cold tier, federated reads.

The package reproduces SpotLake's archival pipeline (paper Section 4):
each collection round's three per-source outputs are merged into one
wide per-pool record (:mod:`merge`), landed raw in a date-partitioned
immutable cold tier (:mod:`store`), then diffed against the previous
round so only changed rows reach the hot engine (:mod:`diff`); history
queries federate across the hot/cold boundary (:mod:`federated`).
"""

from .diff import RoundDiff, RoundDiffer
from .federated import FederatedHistory, FederatedPlan
from .merge import MergedRound, RoundMerger
from .schema import (
    ADVISOR_TABLE,
    AdvisorRow,
    DIM_REGION,
    DIM_TYPE,
    DIM_ZONE,
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    MERGED_TABLES,
    PRICE_MEASURE,
    PRICE_TABLE,
    PriceRow,
    SAVINGS_MEASURE,
    SPS_MEASURE,
    SPS_TABLE,
    SpsRow,
)
from .store import (
    LAKE_CRASH_WINDOWS,
    LAKE_DIR_NAME,
    LAKE_FORMAT,
    LAKE_MANIFEST_NAME,
    LakeFormatError,
    LakePartition,
    SpotDataLake,
    lake_day,
)

__all__ = [
    "ADVISOR_TABLE", "AdvisorRow", "DIM_REGION", "DIM_TYPE", "DIM_ZONE",
    "FederatedHistory", "FederatedPlan", "IF_SCORE_MEASURE",
    "INTERRUPTION_RATIO_MEASURE", "LAKE_CRASH_WINDOWS", "LAKE_DIR_NAME",
    "LAKE_FORMAT", "LAKE_MANIFEST_NAME", "LakeFormatError", "LakePartition",
    "MERGED_TABLES", "MergedRound", "PRICE_MEASURE", "PRICE_TABLE",
    "PriceRow", "RoundDiff", "RoundDiffer", "RoundMerger", "SAVINGS_MEASURE",
    "SPS_MEASURE", "SPS_TABLE", "SpotDataLake", "SpsRow", "lake_day",
]
