"""Round diff: emit only the rows that changed since the previous round.

The hot store already deduplicates per series (appending an unchanged
value stores no new change point), but a full ingest still pays for the
WAL line of every row, every round.  :class:`RoundDiffer` extends the
dedup to the *whole round*: it keeps the previous round's merged values
and emits only the rows whose value actually changed, so steady-state
rounds write a few percent of the raw row volume.  Because the hot
tables dedup on value anyway, feeding them the diffed subset produces
byte-identical change-point history to feeding them everything -- the
property the federated-query identity tests pin.

Comparison semantics are :func:`~repro.timeseries.compression.values_equal`
(type- and NaN-aware), matching the store's own dedup rule.  An advisor
row is emitted when *any* of its three measures changed (the unchanged
measures ride along; the table absorbs them without new change points).

``full_refresh_every`` is the cadence knob from the production pipeline:
every Nth round the diff emits all rows regardless, so a reader that
joined late (or a hot store whose retention evicted deep history) never
needs unbounded history to reconstruct current state.  0 disables
refreshes (the first round is always a de-facto full refresh).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..timeseries.compression import values_equal
from ..timeseries.record import SeriesKey, Value
from .merge import MergedRound
from .schema import (
    AdvisorRow,
    DIM_REGION,
    DIM_TYPE,
    DIM_ZONE,
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    PRICE_MEASURE,
    PriceRow,
    SAVINGS_MEASURE,
    SPS_MEASURE,
    SpsRow,
)

#: Component order of the advisor value triple.
_ADVISOR_MEASURES = (INTERRUPTION_RATIO_MEASURE, IF_SCORE_MEASURE,
                     SAVINGS_MEASURE)


@dataclass
class RoundDiff:
    """The changed-rows subset of one merged round."""

    time: float
    full_refresh: bool
    sps: List[SpsRow] = field(default_factory=list)
    advisor: List[AdvisorRow] = field(default_factory=list)
    price: List[PriceRow] = field(default_factory=list)
    #: source rows the differ examined (the pre-diff volume)
    rows_seen: int = 0

    @property
    def rows_changed(self) -> int:
        return len(self.sps) + len(self.advisor) + len(self.price)


class RoundDiffer:
    """Stateful whole-round change detector."""

    def __init__(self, full_refresh_every: int = 0):
        if full_refresh_every < 0:
            raise ValueError("full_refresh_every must be >= 0")
        self.full_refresh_every = full_refresh_every
        #: rounds diffed so far; refresh rounds are 0, N, 2N, ...  A
        #: restarted differ is re-seeded to the lake's round count, so
        #: the refresh schedule survives crash recovery unchanged.
        self.rounds = 0
        self._sps: Dict[Tuple[str, str, str], Value] = {}
        self._price: Dict[Tuple[str, str, str], Value] = {}
        self._advisor: Dict[Tuple[str, str], List[Value]] = {}

    # -- restart seeding -----------------------------------------------------

    def seed(self, items: Sequence[Tuple[SeriesKey, Value]],
             rounds: int = 0) -> None:
        """Restore the previous-round value map from lake series items.

        ``items`` is each series' latest archived value (see
        :meth:`SpotDataLake.latest_values`); ``rounds`` restores the
        full-refresh cadence position.
        """
        self.rounds = rounds
        for key, value in items:
            dims = key.dimension_dict
            measure = key.measure_name
            if measure == SPS_MEASURE:
                self._sps[(dims[DIM_TYPE], dims[DIM_REGION],
                           dims[DIM_ZONE])] = value
            elif measure == PRICE_MEASURE:
                self._price[(dims[DIM_TYPE], dims[DIM_REGION],
                             dims[DIM_ZONE])] = value
            elif measure in _ADVISOR_MEASURES:
                triple = self._advisor.setdefault(
                    (dims[DIM_TYPE], dims[DIM_REGION]), [None, None, None])
                triple[_ADVISOR_MEASURES.index(measure)] = value

    # -- the diff ------------------------------------------------------------

    def diff(self, merged: MergedRound) -> RoundDiff:
        """Changed rows of ``merged``; updates the previous-round state.

        A key never seen before always emits; a key absent this round
        (a collection gap) keeps its previous value, mirroring what the
        hot store's series would hold.
        """
        refresh = (self.full_refresh_every > 0
                   and self.rounds % self.full_refresh_every == 0)
        out = RoundDiff(time=merged.time, full_refresh=refresh,
                        rows_seen=merged.row_count)

        sps_prev = self._sps
        for row in merged.sps:
            coords = (row[0], row[1], row[2])
            previous = sps_prev.get(coords)
            changed = (coords not in sps_prev
                       or not values_equal(previous, row[3]))
            if changed or refresh:
                out.sps.append(row)
            sps_prev[coords] = row[3]

        advisor_prev = self._advisor
        for row in merged.advisor:
            pair = (row[0], row[1])
            triple = [row[2], row[3], row[4]]
            previous = advisor_prev.get(pair)
            changed = (previous is None
                       or not all(values_equal(a, b)
                                  for a, b in zip(previous, triple)))
            if changed or refresh:
                out.advisor.append(row)
            advisor_prev[pair] = triple

        price_prev = self._price
        for row in merged.price:
            coords = (row[0], row[1], row[2])
            previous = price_prev.get(coords)
            changed = (coords not in price_prev
                       or not values_equal(previous, row[3]))
            if changed or refresh:
                out.price.append(row)
            price_prev[coords] = row[3]

        self.rounds += 1
        return out

    def stats(self) -> dict:
        return {
            "rounds": self.rounds,
            "tracked_pools": len(self._sps),
            "tracked_pairs": len(self._advisor),
            "tracked_priced_pools": len(self._price),
            "full_refresh_every": self.full_refresh_every,
        }
