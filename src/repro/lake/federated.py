"""Federated history: split one query at the hot/cold boundary.

The hot engine's retention evicts change points at or before the table's
``evicted_through`` watermark ``B``; everything evicted is still in the
lake.  :class:`FederatedHistory` plans one history query as

    cold = lake.change_points(measure, filters, start, min(end, B))
    hot  = rows of the hot scan with time > B

and concatenates them.  This is exact:

* the cold reconstruction emits precisely the rows an un-evicted hot
  table would hold in ``[start, min(end, B)]`` (baseline walk included,
  see :meth:`SpotDataLake.change_points`);
* the hot table's post-eviction rows after ``B`` are untouched by
  eviction (``evict_before`` keeps each series' last at-or-before-cutoff
  point, so later change points keep their meaning);
* the carried at-or-before-``B`` point the hot table retains is dropped
  here (``time > B``) because the cold side already supplies the
  complete row set up to ``B``.

Both halves arrive in the hot scan's exact total order -- a stable time
sort over (measure, dimensions)-ordered series -- so the concatenation
is globally sorted and serving-layer pagination cursors remain stable
across the boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..timeseries.record import Record
from .store import SpotDataLake


@dataclass(frozen=True)
class FederatedPlan:
    """Where one history query's rows come from."""

    measure: str
    start: float
    end: float
    boundary: float     # evicted_through; -inf when nothing is evicted
    use_cold: bool
    use_hot: bool


class FederatedHistory:
    """Boundary-splitting query planner over one cold lake."""

    def __init__(self, lake: SpotDataLake):
        self.lake = lake
        self.queries = 0
        self.cold_queries = 0
        self.cold_rows = 0

    def plan(self, measure: str, start: float, end: float,
             evicted_through: Optional[float]) -> FederatedPlan:
        boundary = float("-inf")
        if evicted_through is not None and math.isfinite(evicted_through):
            boundary = float(evicted_through)
        return FederatedPlan(
            measure=measure, start=start, end=end, boundary=boundary,
            use_cold=boundary != float("-inf") and start <= boundary,
            use_hot=end > boundary)

    def query(self, measure: str, filters: Dict[str, str],
              start: float, end: float,
              evicted_through: Optional[float],
              hot_scan: Callable[[], List[Record]]) -> List[Record]:
        """Execute one federated history query.

        ``hot_scan`` is a thunk running the archive's existing hot read
        for the full ``[start, end]`` window (it is not invoked when the
        window ends at or before the boundary).
        """
        plan = self.plan(measure, start, end, evicted_through)
        self.queries += 1
        rows: List[Record] = []
        if plan.use_cold:
            cold = self.lake.change_points(measure, filters, start,
                                           min(end, plan.boundary))
            self.cold_queries += 1
            self.cold_rows += len(cold)
            rows.extend(cold)
        if plan.use_hot:
            boundary = plan.boundary
            rows.extend(r for r in hot_scan() if r.time > boundary)
        return rows

    def stats(self) -> dict:
        return {
            "queries": self.queries,
            "cold_queries": self.cold_queries,
            "cold_rows": self.cold_rows,
        }
