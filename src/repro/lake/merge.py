"""Round merge: capture the three per-source outputs of one round.

The :class:`RoundMerger` is the collectors' *sink* in lake mode: instead
of batching rows straight into the archive, each collector hands its
typed rows to the merger, and the archive's round commit takes the whole
merged round at once -- first landing it raw in the cold tier, then
diffing it against the previous round so only changed rows reach the hot
engine (see :mod:`repro.lake.diff`).

The merger mirrors :class:`repro.core.archive.RecordBatch`'s ``add_*``
surface so collectors can treat either as the row destination.  It is
written to by the round's serial control thread only (the parallel SPS
engine materializes rows on workers but merges and lands them serially),
so no locking is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..timeseries.compression import ChangePointSeries
from ..timeseries.record import SeriesKey, Value, dimension_key
from .schema import (
    ADVISOR_TABLE,
    AdvisorRow,
    DIM_REGION,
    DIM_TYPE,
    DIM_ZONE,
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    PRICE_MEASURE,
    PRICE_TABLE,
    PriceRow,
    SAVINGS_MEASURE,
    SPS_MEASURE,
    SPS_TABLE,
    SpsRow,
)


@dataclass
class MergedRound:
    """One collection round's full merged output, before diffing.

    ``time`` is the round's commit timestamp; the rows keep their own
    per-source observation timestamps (a retried price sweep stamps
    post-backoff times), which is what makes the cold tier byte-faithful
    to the hot ingest path.
    """

    time: float
    sps: List[SpsRow] = field(default_factory=list)
    advisor: List[AdvisorRow] = field(default_factory=list)
    price: List[PriceRow] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        """Source rows captured (an advisor row counts once here)."""
        return len(self.sps) + len(self.advisor) + len(self.price)

    @property
    def record_count(self) -> int:
        """Archive records a full ingest of this round would write."""
        return len(self.sps) + 3 * len(self.advisor) + len(self.price)

    def items(self) -> List[Tuple[SeriesKey, ChangePointSeries]]:
        """The round as canonically-sorted columnar-codec series items.

        Every row becomes a point under exactly the series key the hot
        tables use (advisor rows fan out to their three measures), so a
        cold partition file is a byte-faithful raw snapshot of what the
        round *observed* -- the diff stage decides what the hot engine
        *stores*.
        """
        points: Dict[SeriesKey, List[Tuple[float, Value]]] = {}

        def add(key: SeriesKey, time: float, value: Value) -> None:
            points.setdefault(key, []).append((float(time), value))

        for itype, region, zone, score, time in self.sps:
            add(SeriesKey(SPS_MEASURE, dimension_key(
                {DIM_TYPE: itype, DIM_REGION: region, DIM_ZONE: zone})),
                time, int(score))
        for itype, region, ratio, if_score, savings, time in self.advisor:
            dims = dimension_key({DIM_TYPE: itype, DIM_REGION: region})
            add(SeriesKey(INTERRUPTION_RATIO_MEASURE, dims), time, float(ratio))
            add(SeriesKey(IF_SCORE_MEASURE, dims), time, float(if_score))
            add(SeriesKey(SAVINGS_MEASURE, dims), time, int(savings))
        for itype, region, zone, price, time in self.price:
            add(SeriesKey(PRICE_MEASURE, dimension_key(
                {DIM_TYPE: itype, DIM_REGION: region, DIM_ZONE: zone})),
                time, float(price))

        items: List[Tuple[SeriesKey, ChangePointSeries]] = []
        for key in sorted(points, key=lambda k: (k.measure_name,
                                                 k.dimensions)):
            rows = sorted(points[key], key=lambda r: r[0])
            items.append((key, ChangePointSeries(
                times=[t for t, _ in rows],
                values=[v for _, v in rows],
                observed_until=rows[-1][0],
                observation_count=len(rows))))
        return items

    def tables_touched(self) -> List[str]:
        touched = []
        if self.sps:
            touched.append(SPS_TABLE)
        if self.advisor:
            touched.append(ADVISOR_TABLE)
        if self.price:
            touched.append(PRICE_TABLE)
        return touched


class RoundMerger:
    """Accumulates one round's rows from the three collectors."""

    def __init__(self) -> None:
        self._sps: List[SpsRow] = []
        self._advisor: List[AdvisorRow] = []
        self._price: List[PriceRow] = []

    # -- RecordBatch-compatible sink surface --------------------------------

    def add_sps(self, instance_type: str, region: str, zone: str,
                score: int, time: float) -> None:
        self._sps.append((instance_type, region, zone, score, time))

    def add_sps_rows(self, rows: Sequence[SpsRow]) -> None:
        self._sps.extend(rows)

    def add_advisor(self, instance_type: str, region: str,
                    interruption_ratio: float, if_score: float,
                    savings_percent: int, time: float) -> None:
        self._advisor.append((instance_type, region, interruption_ratio,
                              if_score, savings_percent, time))

    def add_advisor_rows(self, rows: Sequence[AdvisorRow]) -> None:
        self._advisor.extend(rows)

    def add_price(self, instance_type: str, region: str, zone: str,
                  price: float, time: float) -> None:
        self._price.append((instance_type, region, zone, price, time))

    def add_price_rows(self, rows: Sequence[PriceRow]) -> None:
        self._price.extend(rows)

    # -- round boundary ------------------------------------------------------

    @property
    def pending_rows(self) -> int:
        return len(self._sps) + len(self._advisor) + len(self._price)

    def take_round(self, time: float) -> MergedRound:
        """Snapshot and clear the buffered rows as one merged round."""
        merged = MergedRound(time=float(time), sps=self._sps,
                             advisor=self._advisor, price=self._price)
        self._sps = []
        self._advisor = []
        self._price = []
        return merged
