"""The merged wide-record schema shared by the archive and the lake.

SpotLake's production merge stage joins the three per-source collection
outputs into one wide row per pool -- (instance_type, region, zone) ->
sps, interruption_ratio, if_score, savings, spot_price -- before diffing
and upload (``merge_data.py`` in the real pipeline).  This module is the
single definition of that schema: the hot tables' names, measure names
and dimension names, plus the per-source row tuples the collectors
produce.  ``core.archive`` re-exports every constant, so the rest of the
codebase keeps importing them from the archive facade.

Measure names are globally unique across the three tables, which is what
lets the cold tier store a whole round in one columnar segment and route
any history query by (measure, filters) alone.
"""

from __future__ import annotations

from typing import Tuple

SPS_TABLE = "sps"
ADVISOR_TABLE = "advisor"
PRICE_TABLE = "price"

SPS_MEASURE = "sps"
IF_SCORE_MEASURE = "if_score"
INTERRUPTION_RATIO_MEASURE = "interruption_ratio"
SAVINGS_MEASURE = "savings"
PRICE_MEASURE = "spot_price"

DIM_TYPE = "InstanceType"
DIM_REGION = "Region"
DIM_ZONE = "AvailabilityZone"

#: The three tables the merged round fans out to (gap records are not
#: part of the merge: holes are archived directly at collection time).
MERGED_TABLES = (SPS_TABLE, ADVISOR_TABLE, PRICE_TABLE)

#: Per-source row tuples, exactly as the collectors and the archive's
#: batch writers exchange them.
SpsRow = Tuple[str, str, str, int, float]            # type, region, zone, score, t
PriceRow = Tuple[str, str, str, float, float]        # type, region, zone, price, t
AdvisorRow = Tuple[str, str, float, float, int, float]  # type, region, ratio, if, sav, t
