"""Date-partitioned cold tier: immutable round files + a lake manifest.

Every committed collection round lands as one immutable columnar file

    data_dir/lake/YYYY/MM/DD/round-<t>.seg        (level 0, raw round)

reusing the v2 segment codec (:mod:`repro.storage.columnar`): zone maps
and mmap-backed predicate-pushdown scans come for free.  ``repro lake
compact`` folds a finished day's round files into one

    data_dir/lake/YYYY/MM/DD/day-<t>.seg          (level 1, deduped day)

keeping, per series, the day's first row plus every value change -- a
windowed history scan then decodes only actual change points, while the
manifest's per-partition round-time list keeps ``/rounds/<date>``
serving raw round snapshots via carry-forward.

Publish protocol (crash windows mirror the storage engine's checkpoint):

1. ``lake.segment``  -- before the partition file is written: a crash
   here leaves no trace.
2. ``lake.manifest`` -- partition durable, manifest not yet replaced: a
   crash leaves an orphan file the next publish garbage-collects (or the
   re-collected round atomically overwrites).
3. ``lake.publish``  -- manifest live, orphans not yet collected.

The manifest (``LAKE_MANIFEST``) is the root of trust: only partitions
it lists exist.  Because rounds are appended to the lake *before* the
hot engine's group commit, recovery truncates the lake to the hot
store's ``last_commit_time`` (:meth:`SpotDataLake.trim_to`) -- a lake
round the WAL never committed is re-collected deterministically, byte-
identical file included.

Timestamps are simulation time; partition dates derive from them via
``datetime.fromtimestamp(t, tz=timezone.utc)`` (never the host clock),
so the layout itself is byte-deterministic.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import mmap
import os
import threading
from dataclasses import dataclass
from datetime import datetime, timezone
from operator import itemgetter
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._util import atomic_open
from ..storage.columnar import SegmentCursor, encode_segment
from ..timeseries.compression import ChangePointSeries, values_equal
from ..timeseries.record import Record, SeriesKey, Value
from ..timeseries.vector import TierColumns
from ..storage.wal import NoopCrashHook
from .merge import MergedRound
from .schema import (
    DIM_REGION,
    DIM_TYPE,
    DIM_ZONE,
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    PRICE_MEASURE,
    SAVINGS_MEASURE,
    SPS_MEASURE,
)

#: Lake crash windows, in the order one round commit reaches them
#: (armed by ``doublerun --durability --lake``).
LAKE_CRASH_WINDOWS = ("lake.segment", "lake.manifest", "lake.publish")

LAKE_DIR_NAME = "lake"
LAKE_MANIFEST_NAME = "LAKE_MANIFEST"
LAKE_FORMAT = 1

#: Segment-codec table label of every lake partition.
LAKE_TABLE = "lake"


def lake_day(time: float) -> str:
    """``YYYY/MM/DD`` partition directory of a simulation timestamp."""
    stamp = datetime.fromtimestamp(float(time), tz=timezone.utc)
    return f"{stamp.year:04d}/{stamp.month:02d}/{stamp.day:02d}"


def _stamp_text(time: float) -> str:
    """Filename-stable rendering of a round timestamp."""
    time = float(time)
    return str(int(time)) if time.is_integer() else repr(time)


def _merge_runs(runs: List[List[Tuple[float, Value]]],
                ) -> List[Tuple[float, Value]]:
    """Merge per-partition time-sorted row runs into one sorted list.

    Each partition already returns a series' rows time-sorted, so a
    k-way ``heapq.merge`` is O(n log k) instead of the O(n log n)
    re-sort of the concatenation -- and ``heapq.merge`` is stable across
    its inputs, preserving the partition-order tie behavior the stable
    ``list.sort`` had.
    """
    if len(runs) == 1:
        return runs[0]
    return list(heapq.merge(*runs, key=itemgetter(0)))


@dataclass(frozen=True)
class LakePartition:
    """One immutable lake file, as recorded in the manifest."""

    kind: str                  # "round" (level 0) or "day" (level 1)
    path: str                  # posix path relative to the lake root
    start: float               # min row timestamp in the file
    end: float                 # max row timestamp in the file
    rounds: Tuple[float, ...]  # commit times of the rounds it covers
    rows: int                  # points stored in the file
    bytes: int                 # file size
    sha256: str                # digest of the exact file bytes

    @property
    def day(self) -> str:
        """The ``YYYY/MM/DD`` directory this partition lives under."""
        return self.path.rsplit("/", 1)[0]

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "path": self.path,
            "start": self.start, "end": self.end,
            "rounds": list(self.rounds), "rows": self.rows,
            "bytes": self.bytes, "sha256": self.sha256,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "LakePartition":
        return cls(kind=str(raw["kind"]), path=str(raw["path"]),
                   start=float(raw["start"]), end=float(raw["end"]),
                   rounds=tuple(float(t) for t in raw["rounds"]),
                   rows=int(raw["rows"]), bytes=int(raw["bytes"]),
                   sha256=str(raw["sha256"]))


class LakeFormatError(ValueError):
    """The lake manifest is not a well-formed format-1 document."""


class SpotDataLake:
    """The cold tier under one ``data_dir/lake`` root."""

    def __init__(self, root: Union[str, Path], crash_hook=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.crash_hook = crash_hook or NoopCrashHook()
        self._lock = threading.Lock()
        #: manifest version as last read from / written to disk
        self._version = 0
        self._partitions: Tuple[LakePartition, ...] = ()
        #: open mmap-backed cursors, one per live partition file, keyed
        #: by (path, sha256) so a re-collected overwrite never serves
        #: stale bytes; guarded by its own lock because compaction reads
        #: partitions while holding the manifest lock
        self._cursors: Dict[Tuple[str, str],
                            Tuple[object, mmap.mmap, SegmentCursor]] = {}
        self._cursor_lock = threading.Lock()
        self._load_manifest()

    # -- manifest ------------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.root / LAKE_MANIFEST_NAME

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if not path.exists():
            return
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
            if raw.get("format") != LAKE_FORMAT:
                raise LakeFormatError(
                    f"unsupported lake manifest format {raw.get('format')!r}")
            self._version = int(raw["version"])
            self._partitions = tuple(LakePartition.from_dict(p)
                                     for p in raw["partitions"])
        except LakeFormatError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise LakeFormatError(f"undecodable lake manifest: {exc}") \
                from None

    def _write_manifest(self, partitions: Sequence[LakePartition],
                        version: int) -> None:
        payload = {
            "format": LAKE_FORMAT,
            "version": version,
            "partitions": [p.as_dict() for p in partitions],
        }
        with atomic_open(self._manifest_path(),
                         sync_directory=True) as fh:
            json.dump(payload, fh, sort_keys=True,
                      separators=(",", ":"))
            fh.write("\n")

    def _publish(self, partitions: Sequence[LakePartition],
                 crash_hooks: bool) -> None:
        """Write + publish a new manifest, then collect orphan files."""
        if crash_hooks:
            self.crash_hook.before("lake.manifest")
        version = self._version + 1
        self._write_manifest(partitions, version)
        self._version = version
        self._partitions = tuple(partitions)
        if crash_hooks:
            self.crash_hook.before("lake.publish")
        self._invalidate_cursors()
        self._collect_orphans()

    def _collect_orphans(self) -> None:
        """Delete ``.seg`` files the live manifest does not reference."""
        live = {p.path for p in self._partitions}
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames.sort()
            rel_dir = Path(dirpath).relative_to(self.root).as_posix()
            for name in sorted(filenames):
                if not name.endswith(".seg"):
                    continue
                rel = name if rel_dir == "." else f"{rel_dir}/{name}"
                if rel not in live:
                    os.unlink(Path(dirpath) / name)

    # -- introspection -------------------------------------------------------

    @property
    def partitions(self) -> Tuple[LakePartition, ...]:
        with self._lock:
            return self._partitions

    @property
    def round_count(self) -> int:
        """Committed rounds the lake holds (survives trims/compaction)."""
        return sum(len(p.rounds) for p in self.partitions)

    def round_times(self) -> List[float]:
        """Every archived round commit time, ascending."""
        times = [t for p in self.partitions for t in p.rounds]
        times.sort()
        return times

    def days(self) -> List[str]:
        """Distinct ``YYYY/MM/DD`` partition days, ascending."""
        seen: Dict[str, None] = {}
        for part in self.partitions:
            seen.setdefault(part.day, None)
        return sorted(seen)

    def census(self) -> dict:
        """Partition count / bytes / time span (the stats payload)."""
        parts = self.partitions
        return {
            "partitions": len(parts),
            "rounds": sum(len(p.rounds) for p in parts),
            "days": len({p.day for p in parts}),
            "bytes": sum(p.bytes for p in parts),
            "rows": sum(p.rows for p in parts),
            "start": min((p.start for p in parts), default=None),
            "end": max((p.end for p in parts), default=None),
        }

    def digest(self) -> str:
        """Deterministic identity of the lake's logical content.

        Hashes the manifest's partition list (each entry pins its file's
        sha256), *not* the manifest version: a recovered-and-trimmed lake
        digests equal to a reference that never crashed.
        """
        payload = {"format": LAKE_FORMAT,
                   "partitions": [p.as_dict() for p in self.partitions]}
        raw = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()

    # -- recovery ------------------------------------------------------------

    def trim_to(self, last_commit_time: Optional[float]) -> int:
        """Drop (in memory) rounds newer than the hot store's last commit.

        Rounds land in the lake *before* the hot WAL's group commit, so
        a crash between the two leaves the lake one round ahead; the
        trimmed round is re-collected deterministically and its file
        atomically overwritten.  The on-disk manifest is left alone --
        the next publish persists the trimmed view and collects the
        orphan file.  Returns the number of rounds dropped.
        """
        cutoff = float("-inf") if last_commit_time is None \
            else float(last_commit_time)
        with self._lock:
            before = sum(len(p.rounds) for p in self._partitions)
            kept = tuple(p for p in self._partitions
                         if p.rounds and p.rounds[-1] <= cutoff)
            self._partitions = kept
            self._invalidate_cursors()
            return before - sum(len(p.rounds) for p in kept)

    # -- writes --------------------------------------------------------------

    def append_round(self, merged: MergedRound) -> LakePartition:
        """Land one merged round as an immutable date-partitioned file."""
        if merged.row_count == 0:
            raise ValueError("refusing to archive an empty round")
        items = merged.items()
        rows = sum(len(series.times) for _, series in items)
        start = min(series.times[0] for _, series in items)
        end = max(series.times[-1] for _, series in items)
        blob = encode_segment(LAKE_TABLE, int(merged.time), 0, items)
        rel = f"{lake_day(merged.time)}/round-{_stamp_text(merged.time)}.seg"
        with self._lock:
            self.crash_hook.before("lake.segment")
            target = self.root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            with atomic_open(target, binary=True,
                             sync_directory=True) as fh:
                fh.write(blob)
            partition = LakePartition(
                kind="round", path=rel, start=start, end=end,
                rounds=(float(merged.time),), rows=rows, bytes=len(blob),
                sha256=hashlib.sha256(blob).hexdigest())
            self._publish([*self._partitions, partition], crash_hooks=True)
        return partition

    # -- compaction ----------------------------------------------------------

    def compact(self, include_active: bool = False) -> dict:
        """Fold each day's round files into one deduped day file.

        Per series the day file keeps the first row plus every value
        change, so windowed history scans decode only change points
        while ``round_snapshot`` reconstructs any of the day's rounds by
        carry-forward (exact as long as a series observed that day was
        observed from its first round onward -- mid-day collection gaps
        degrade snapshot reconstruction, never history queries).

        The newest day keeps receiving rounds and is skipped unless
        ``include_active``.  Returns a summary dict.
        """
        with self._lock:
            groups: Dict[str, List[LakePartition]] = {}
            for part in self._partitions:
                if part.kind == "round":
                    groups.setdefault(part.day, []).append(part)
            if not include_active and self._partitions:
                last_day = max(p.day for p in self._partitions)
                groups.pop(last_day, None)
            merged_days = {day: parts for day, parts in groups.items()
                           if len(parts) >= 1}
            if not merged_days:
                return {"days_compacted": 0, "partitions_merged": 0,
                        "bytes_before": 0, "bytes_after": 0}

            replacements: Dict[str, LakePartition] = {}
            bytes_before = 0
            for day in sorted(merged_days):
                parts = sorted(merged_days[day], key=lambda p: p.start)
                bytes_before += sum(p.bytes for p in parts)
                replacements[day] = self._compact_day(day, parts)

            out: List[LakePartition] = []
            emitted: Dict[str, bool] = {}
            for part in self._partitions:
                if part.kind == "round" and part.day in replacements:
                    if not emitted.get(part.day):
                        emitted[part.day] = True
                        out.append(replacements[part.day])
                    continue
                out.append(part)
            self._publish(out, crash_hooks=False)
            return {
                "days_compacted": len(replacements),
                "partitions_merged": sum(len(p) for p in merged_days.values()),
                "bytes_before": bytes_before,
                "bytes_after": sum(p.bytes for p in replacements.values()),
            }

    def _compact_day(self, day: str,
                     parts: Sequence[LakePartition]) -> LakePartition:
        """Merge one day's round files into a single level-1 partition."""
        merged: Dict[SeriesKey, ChangePointSeries] = {}
        for part in parts:
            for key, series in self._partition_items(part):
                into = merged.get(key)
                if into is None:
                    merged[key] = ChangePointSeries(
                        times=list(series.times), values=list(series.values),
                        observed_until=series.observed_until,
                        observation_count=series.observation_count)
                    continue
                for t, v in zip(series.times, series.values):
                    if not values_equal(into.values[-1], v):
                        into.times.append(t)
                        into.values.append(v)
                into.observed_until = max(into.observed_until,
                                          series.observed_until)
                into.observation_count += series.observation_count
        items = [(key, merged[key]) for key in
                 sorted(merged, key=lambda k: (k.measure_name, k.dimensions))]
        rounds = tuple(sorted(t for p in parts for t in p.rounds))
        rows = sum(len(series.times) for _, series in items)
        blob = encode_segment(LAKE_TABLE, int(rounds[0]), 1, items)
        rel = f"{day}/day-{_stamp_text(rounds[0])}.seg"
        target = self.root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        with atomic_open(target, binary=True, sync_directory=True) as fh:
            fh.write(blob)
        return LakePartition(
            kind="day", path=rel,
            start=min(p.start for p in parts),
            end=max(p.end for p in parts),
            rounds=rounds, rows=rows, bytes=len(blob),
            sha256=hashlib.sha256(blob).hexdigest())

    # -- reads ---------------------------------------------------------------

    def _cursor(self, part: LakePartition) -> SegmentCursor:
        """The partition's open mmap-backed cursor (opened once, cached).

        Cursor reads are stateless over an immutable buffer, so one
        cached cursor serves concurrent scans; entries are dropped (and
        their mmaps closed) whenever a publish or trim removes the
        partition from the live set.
        """
        key = (part.path, part.sha256)
        with self._cursor_lock:
            entry = self._cursors.get(key)
            if entry is None:
                fh = open(self.root / part.path, "rb")
                try:
                    buffer = mmap.mmap(fh.fileno(), 0,
                                       access=mmap.ACCESS_READ)
                except OSError:
                    fh.close()
                    raise
                entry = (fh, buffer, SegmentCursor(buffer, memoize=True))
                self._cursors[key] = entry
            return entry[2]

    def _invalidate_cursors(self) -> None:
        """Close cursors for files the live partition set no longer holds."""
        live = {(p.path, p.sha256) for p in self._partitions}
        with self._cursor_lock:
            stale = [k for k in self._cursors if k not in live]
            for key in stale:
                fh, buffer, cursor = self._cursors.pop(key)
                cursor.release()
                buffer.close()
                fh.close()

    def close(self) -> None:
        """Release every cached cursor (mmaps and file handles)."""
        with self._cursor_lock:
            for fh, buffer, cursor in self._cursors.values():
                cursor.release()
                buffer.close()
                fh.close()
            self._cursors.clear()

    def _partition_scan(self, part: LakePartition, start: float, end: float,
                        match: Optional[Callable[[SeriesKey], bool]],
                        ) -> List[Tuple[SeriesKey,
                                        List[Tuple[float, Value]]]]:
        """Zone-map-pruned scan of one partition file via its cursor."""
        return self._cursor(part).scan(start, end, match=match)

    def _partition_items(self, part: LakePartition,
                         ) -> List[Tuple[SeriesKey, ChangePointSeries]]:
        return self._cursor(part).items()

    def scan(self, start: float = float("-inf"), end: float = float("inf"),
             measure: Optional[str] = None,
             filters: Optional[Dict[str, str]] = None,
             ) -> List[Tuple[SeriesKey, List[Tuple[float, Value]]]]:
        """Raw windowed read across partitions, merged per series.

        Rows are whatever the partitions store -- every observation for
        round files, deduped change rows for compacted day files; use
        :meth:`change_points` for hot-store-equivalent history.  Series
        appear in canonical (measure, dimensions) order.
        """
        match = self._matcher(measure, filters)
        per_key: Dict[SeriesKey, List[List[Tuple[float, Value]]]] = {}
        for part in self.partitions:
            if part.end < start or part.start > end:
                continue
            for key, rows in self._partition_scan(part, start, end, match):
                per_key.setdefault(key, []).append(rows)
        return [(key, _merge_runs(per_key[key]))
                for key in sorted(per_key, key=lambda k: (k.measure_name,
                                                          k.dimensions))]

    @staticmethod
    def _matcher(measure: Optional[str],
                 filters: Optional[Dict[str, str]],
                 ) -> Optional[Callable[[SeriesKey], bool]]:
        if measure is None and not filters:
            return None
        wanted = dict(filters or {})
        if not wanted:
            return lambda key: key.measure_name == measure

        def match(key: SeriesKey) -> bool:
            if measure is not None and key.measure_name != measure:
                return False
            return key.matches(wanted)

        return match

    def change_points(self, measure: str, filters: Dict[str, str],
                      start: float, end: float) -> List[Record]:
        """Hot-store-equivalent change-point history from cold files.

        Reconstructs exactly what an un-evicted hot table's ``scan``
        would return for ``[start, end]``: per series, rows where the
        value differs from the previous observation -- including a
        *baseline* walk into earlier partitions so a value that changed
        before the window doesn't re-emit at the window edge.  Output
        is sorted by (time, measure, dimensions), the hot scan's exact
        tie order, which keeps pagination cursors stable across the
        hot/cold boundary.
        """
        parts = self.partitions
        match = self._matcher(measure, filters)
        per_key: Dict[SeriesKey, List[List[Tuple[float, Value]]]] = {}
        for part in parts:
            if part.end < start or part.start > end:
                continue
            for key, rows in self._partition_scan(part, start, end, match):
                per_key.setdefault(key, []).append(rows)
        if not per_key:
            return []

        # baseline: the last value strictly before the window, per key;
        # walk earlier partitions newest-first and stop once resolved
        baseline: Dict[SeriesKey, Value] = {}
        unresolved = dict.fromkeys(per_key)
        if start != float("-inf"):
            for part in reversed(parts):
                if not unresolved:
                    break
                if part.start >= start:
                    continue
                found = self._partition_scan(
                    part, float("-inf"), start,
                    match=lambda key: key in unresolved)
                for key, rows in found:
                    rows = [r for r in rows if r[0] < start]
                    if rows and key not in baseline:
                        baseline[key] = max(rows, key=lambda r: r[0])[1]
                        unresolved.pop(key, None)

        out: List[Record] = []
        for key in sorted(per_key, key=lambda k: (k.measure_name,
                                                  k.dimensions)):
            rows = _merge_runs(per_key[key])
            has_prev = key in baseline
            prev = baseline.get(key)
            for t, v in rows:
                if not has_prev or not values_equal(prev, v):
                    out.append(Record(key.dimensions, key.measure_name, v, t))
                prev, has_prev = v, True
        # the hot table emits rows in canonical (measure, dims) series
        # order then stable-sorts by time; appending in that same series
        # order makes a stable time-only sort reproduce the hot total
        # order exactly (and cheaply -- float keys, no tuple compares)
        out.sort(key=lambda r: r.time)
        return out

    def scan_column_arrays(self, measure: str, filters: Dict[str, str],
                           start: float, end: float,
                           universe: Sequence[SeriesKey],
                           counters: Optional[Dict[str, int]] = None,
                           ) -> TierColumns:
        """Cold change-row columns for ``[start, end]``, aligned to a
        caller-supplied series universe.

        The vectorized analogue of :meth:`change_points`: per universe
        series, the float64 (times, values) change rows in the window
        plus the baseline value in force just before it, assembled from
        ``SegmentCursor.scan_columns`` without building per-row tuples.
        Partitions are time-disjoint, so per-series assembly is pure
        concatenation in partition-start order; observation streams from
        round files are deduped in the float domain against the running
        predecessor (NaN equals NaN, as in ``values_equal``).  Series
        the universe does not list are ignored -- the hot table's key
        set is a superset of the lake's by construction (every lake row
        passed through the differ).  ``counters`` accumulates the cursor
        decode/prune counters.
        """
        n = len(universe)
        cols = TierColumns.empty(n)
        index_of = {key: i for i, key in enumerate(universe)}
        match = self._matcher(measure, filters)
        parts = sorted(self.partitions, key=lambda p: (p.start, p.path))
        runs_t: List[List[np.ndarray]] = [[] for _ in range(n)]
        runs_v: List[List[np.ndarray]] = [[] for _ in range(n)]
        for part in parts:
            if part.end < start or part.start > end:
                # the manifest [start, end] is a partition-level zone
                # map: the whole file is skipped without opening it
                if counters is not None:
                    counters["partitions_pruned"] = \
                        counters.get("partitions_pruned", 0) + 1
                continue
            keys, counts, times, values = self._cursor(part).scan_columns(
                start, end, match=match, counters=counters)
            offset = 0
            for j, key in enumerate(keys):
                cnt = int(counts[j])
                i = index_of.get(key)
                if i is not None:
                    runs_t[i].append(times[offset:offset + cnt])
                    runs_v[i].append(values[offset:offset + cnt])
                offset += cnt

        # baseline: last raw value strictly before the window, walking
        # earlier partitions newest-first (a series' first-ever raw row
        # is itself a change, so "any row before start" is exactly
        # "a change point exists before start")
        if start != float("-inf"):
            unresolved = dict.fromkeys(universe)
            for part in reversed(parts):
                if not unresolved:
                    break
                if part.start >= start:
                    continue
                keys, counts, times, values = \
                    self._cursor(part).scan_columns(
                        float("-inf"), start,
                        match=lambda key: key in unresolved,
                        counters=counters)
                offset = 0
                for j, key in enumerate(keys):
                    cnt = int(counts[j])
                    seg_t = times[offset:offset + cnt]
                    seg_v = values[offset:offset + cnt]
                    offset += cnt
                    hi = int(np.searchsorted(seg_t, start, side="left"))
                    i = index_of.get(key)
                    if hi and i is not None and not cols.has_base[i]:
                        cols.has_base[i] = True
                        cols.base_values[i] = seg_v[hi - 1]
                        unresolved.pop(key, None)

        t_parts: List[np.ndarray] = []
        v_parts: List[np.ndarray] = []
        for i in range(n):
            if not runs_t[i]:
                continue
            raw_t = np.concatenate(runs_t[i])
            raw_v = np.concatenate(runs_v[i])
            m = raw_t.size
            prev = np.empty(m)
            prev[1:] = raw_v[:-1]
            prev[0] = cols.base_values[i]
            keep = ~((raw_v == prev)
                     | (np.isnan(raw_v) & np.isnan(prev)))
            if not cols.has_base[i]:
                keep[0] = True
            kept = int(np.count_nonzero(keep))
            if kept:
                cols.counts[i] = kept
                t_parts.append(raw_t[keep])
                v_parts.append(raw_v[keep])
        if t_parts:
            cols.times = np.concatenate(t_parts)
            cols.values = np.concatenate(v_parts)
        return cols

    def latest_values(self) -> List[Tuple[SeriesKey, Value]]:
        """Each archived series' newest value (differ restart seeding)."""
        latest: Dict[SeriesKey, Tuple[float, Value]] = {}
        for part in self.partitions:
            for key, rows in self._partition_scan(
                    part, float("-inf"), float("inf"), None):
                t, v = rows[-1]
                current = latest.get(key)
                if current is None or t >= current[0]:
                    latest[key] = (t, v)
        return [(key, latest[key][1]) for key in
                sorted(latest, key=lambda k: (k.measure_name, k.dimensions))]

    # -- round snapshots (the /rounds/<date> payload) ------------------------

    def rounds_on(self, day: str) -> List[float]:
        """Round commit times under one ``YYYY-MM-DD`` (or ``Y/M/D``) day."""
        wanted = day.replace("-", "/")
        times = [t for p in self.partitions if p.day == wanted
                 for t in p.rounds]
        times.sort()
        return times

    def round_snapshot(self, time: float) -> List[dict]:
        """The wide per-pool merged record of one archived round.

        Joins the round's values back into the paper's merged shape:
        one row per (instance_type, region, zone) carrying sps and
        spot_price, with the pair-level advisor measures broadcast onto
        every zone row (pairs with no zone-level data emit a zone-less
        row).  For compacted days the values are reconstructed by
        carry-forward from the day file's change rows.
        """
        time = float(time)
        owner = None
        for part in self.partitions:
            if time in part.rounds:
                owner = part
                break
        if owner is None:
            raise KeyError(f"no archived round at t={time!r}")
        resolved: Dict[SeriesKey, Value] = {}
        for key, rows in self._partition_scan(owner, float("-inf"),
                                              time, None):
            resolved[key] = rows[-1][1]

        pools: Dict[Tuple[str, str, str], Dict[str, Value]] = {}
        pairs: Dict[Tuple[str, str], Dict[str, Value]] = {}
        for key, value in resolved.items():
            dims = key.dimension_dict
            measure = key.measure_name
            if measure in (SPS_MEASURE, PRICE_MEASURE):
                coords = (dims[DIM_TYPE], dims[DIM_REGION], dims[DIM_ZONE])
                pools.setdefault(coords, {})[measure] = value
            else:
                pairs.setdefault((dims[DIM_TYPE], dims[DIM_REGION]),
                                 {})[measure] = value

        rows = []
        paired_seen: Dict[Tuple[str, str], bool] = {}
        for itype, region, zone in sorted(pools):
            measures = pools[(itype, region, zone)]
            advisor = pairs.get((itype, region), {})
            paired_seen[(itype, region)] = True
            rows.append({
                "instance_type": itype, "region": region, "zone": zone,
                "sps": measures.get(SPS_MEASURE),
                "spot_price": measures.get(PRICE_MEASURE),
                "interruption_ratio": advisor.get(INTERRUPTION_RATIO_MEASURE),
                "if_score": advisor.get(IF_SCORE_MEASURE),
                "savings": advisor.get(SAVINGS_MEASURE),
            })
        for itype, region in sorted(pairs):
            if paired_seen.get((itype, region)):
                continue
            advisor = pairs[(itype, region)]
            rows.append({
                "instance_type": itype, "region": region, "zone": None,
                "sps": None, "spot_price": None,
                "interruption_ratio": advisor.get(INTERRUPTION_RATIO_MEASURE),
                "if_score": advisor.get(IF_SCORE_MEASURE),
                "savings": advisor.get(SAVINGS_MEASURE),
            })
        rows.sort(key=lambda r: (r["instance_type"], r["region"],
                                 r["zone"] or ""))
        return rows
