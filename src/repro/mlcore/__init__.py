"""ML substrate: CART trees, random forests, metrics, sampling (no sklearn)."""

from .forest import RandomForestClassifier
from .metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    macro_f1,
    precision_recall_f1,
)
from .sampling import stratified_undersample, train_test_split
from .tree import DecisionTreeClassifier

__all__ = [
    "RandomForestClassifier", "DecisionTreeClassifier",
    "accuracy", "classification_report", "confusion_matrix",
    "macro_f1", "precision_recall_f1",
    "stratified_undersample", "train_test_split",
]
