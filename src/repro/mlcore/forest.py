"""Random forest classifier: bootstrap-bagged CART trees.

Matches the scikit-learn defaults the paper relies on: 100 trees, sqrt
feature subsampling, bootstrap resampling, majority vote by averaged leaf
probabilities.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bagged ensemble of CART trees.

    Parameters
    ----------
    n_estimators:
        Trees in the forest (sklearn default: 100).
    max_depth, min_samples_split:
        Passed to every tree.
    max_features:
        Per-split feature subsample; "sqrt" is the classification default.
    random_state:
        Seed for bootstrap and feature subsampling.
    """

    def __init__(self, n_estimators: int = 100,
                 max_depth: Optional[int] = None,
                 min_samples_split: int = 2,
                 max_features="sqrt",
                 random_state=None):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.random_state = random_state
        self.trees_: List[DecisionTreeClassifier] = []
        self.n_classes_ = 0

    def fit(self, X, y) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        self.n_classes_ = int(y.max()) + 1
        self.trees_ = []
        n = len(X)
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                random_state=rng.integers(0, 2**31 - 1),
            )
            tree.fit(X[idx], y[idx])
            # a bootstrap draw may miss the top class; align widths
            tree.n_classes_ = max(tree.n_classes_, self.n_classes_)
            self.trees_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Forest probabilities: mean of per-tree leaf distributions."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=float)
        total = np.zeros((len(X), self.n_classes_))
        for tree in self.trees_:
            proba = tree.predict_proba(X)
            if proba.shape[1] < self.n_classes_:
                pad = np.zeros((len(X), self.n_classes_ - proba.shape[1]))
                proba = np.hstack([proba, pad])
            total += proba[:, :self.n_classes_]
        return total / len(self.trees_)

    def predict(self, X) -> np.ndarray:
        """Majority-vote class per row."""
        return np.argmax(self.predict_proba(X), axis=1)

    def feature_importances(self) -> np.ndarray:
        """Crude importance: how often each feature splits, forest-wide."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        counts = np.zeros(self.trees_[0].n_features_)

        def walk(node):
            if node is None or node.is_leaf:
                return
            counts[node.feature] += 1
            walk(node.left)
            walk(node.right)

        for tree in self.trees_:
            walk(tree._root)
        total = counts.sum()
        return counts / total if total else counts
