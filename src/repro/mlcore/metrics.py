"""Classification metrics: accuracy, precision/recall, F1, confusion matrix.

Table 4 compares methods by accuracy and F1-score; for the three-class
problem (NoInterrupt / Interrupted / NoFulfill) the F1 reported is the
macro average, mirroring the scikit-learn convention for multiclass.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def _as_int_arrays(y_true, y_pred):
    t = np.asarray(y_true, dtype=int)
    p = np.asarray(y_pred, dtype=int)
    if t.shape != p.shape:
        raise ValueError("y_true and y_pred shapes differ")
    if len(t) == 0:
        raise ValueError("empty label arrays")
    return t, p


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly correct predictions."""
    t, p = _as_int_arrays(y_true, y_pred)
    return float(np.mean(t == p))


def confusion_matrix(y_true, y_pred, n_classes: int | None = None) -> np.ndarray:
    """Counts[c_true, c_pred]."""
    t, p = _as_int_arrays(y_true, y_pred)
    k = n_classes or int(max(t.max(), p.max())) + 1
    matrix = np.zeros((k, k), dtype=int)
    for a, b in zip(t, p):
        matrix[a, b] += 1
    return matrix


def precision_recall_f1(y_true, y_pred, n_classes: int | None = None
                        ) -> Dict[str, np.ndarray]:
    """Per-class precision, recall and F1 (zero-division -> 0.0)."""
    cm = confusion_matrix(y_true, y_pred, n_classes)
    tp = np.diag(cm).astype(float)
    predicted = cm.sum(axis=0).astype(float)
    actual = cm.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return {"precision": precision, "recall": recall, "f1": f1}


def macro_f1(y_true, y_pred, n_classes: int | None = None) -> float:
    """Unweighted mean of per-class F1 scores."""
    return float(np.mean(precision_recall_f1(y_true, y_pred, n_classes)["f1"]))


def classification_report(y_true, y_pred, class_names: Sequence[str] | None = None
                          ) -> str:
    """Human-readable per-class metric table."""
    stats = precision_recall_f1(y_true, y_pred)
    k = len(stats["f1"])
    names = list(class_names) if class_names else [f"class {i}" for i in range(k)]
    lines = [f"{'':16s} {'prec':>6s} {'recall':>6s} {'f1':>6s}"]
    for i in range(k):
        lines.append(f"{names[i]:16s} {stats['precision'][i]:6.2f} "
                     f"{stats['recall'][i]:6.2f} {stats['f1'][i]:6.2f}")
    lines.append(f"{'accuracy':16s} {accuracy(y_true, y_pred):6.2f}")
    lines.append(f"{'macro f1':16s} {macro_f1(y_true, y_pred):6.2f}")
    return "\n".join(lines)
