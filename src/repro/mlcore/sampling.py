"""Sampling utilities: stratified under-sampling and train/test splits.

The paper's experiment design (Section 5.4) stratifies candidate pools by
their (placement score, interruption-free score) combination and
*under-samples* every stratum to the size of the smallest one (the L-H
combination), distributing instance types and zones uniformly rather than
sampling purely at random -- pure random sampling biased toward popular
types/regions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Hashable, List, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")


def stratified_undersample(items: Sequence[T],
                           stratum_of: Callable[[T], Hashable],
                           spread_of: Callable[[T], Hashable] | None = None,
                           per_stratum: int | None = None,
                           seed: int = 0) -> List[T]:
    """Under-sample every stratum to a common size.

    ``stratum_of`` labels each item; ``per_stratum`` defaults to the size of
    the smallest stratum.  When ``spread_of`` is given, the sampler
    round-robins over that secondary label inside each stratum so the
    selection is spread uniformly (the paper spreads over instance type and
    availability zone).
    """
    strata: Dict[Hashable, List[T]] = defaultdict(list)
    for item in items:
        strata[stratum_of(item)].append(item)
    if not strata:
        return []
    target = per_stratum or min(len(v) for v in strata.values())
    rng = np.random.default_rng(seed)
    out: List[T] = []
    for label in sorted(strata, key=str):
        members = strata[label]
        if len(members) <= target:
            out.extend(members)
            continue
        if spread_of is None:
            idx = rng.choice(len(members), size=target, replace=False)
            out.extend(members[i] for i in idx)
            continue
        groups: Dict[Hashable, List[T]] = defaultdict(list)
        for member in members:
            groups[spread_of(member)].append(member)
        for bucket in groups.values():
            rng.shuffle(bucket)  # type: ignore[arg-type]
        order = sorted(groups, key=str)
        picked: List[T] = []
        cursor = 0
        while len(picked) < target:
            progressed = False
            for key in order:
                bucket = groups[key]
                if cursor < len(bucket):
                    picked.append(bucket[cursor])
                    progressed = True
                    if len(picked) == target:
                        break
            if not progressed:
                break
            cursor += 1
        out.extend(picked)
    return out


def train_test_split(X, y, test_fraction: float = 0.3, seed: int = 0,
                     stratify: bool = True) -> Tuple[np.ndarray, np.ndarray,
                                                     np.ndarray, np.ndarray]:
    """Random (optionally label-stratified) train/test split."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if len(X) != len(y):
        raise ValueError("X and y length mismatch")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    test_idx: List[int] = []
    if stratify:
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            rng.shuffle(members)
            k = max(1, int(round(len(members) * test_fraction)))
            test_idx.extend(members[:k].tolist())
    else:
        order = rng.permutation(len(y))
        k = max(1, int(round(len(y) * test_fraction)))
        test_idx = order[:k].tolist()
    test_mask = np.zeros(len(y), dtype=bool)
    test_mask[test_idx] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]
