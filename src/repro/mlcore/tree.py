"""CART decision-tree classifier (Gini impurity), from scratch on numpy.

The paper's Table 4 uses scikit-learn's default RandomForestClassifier; no
scikit-learn is available here, so this module implements the underlying
CART tree with the same defaults that matter: Gini splits, no depth limit,
split until pure or ``min_samples_split`` is reached, and optional
``max_features`` subsampling for forest use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves carry class-count distributions."""

    counts: np.ndarray  # per-class sample counts at this node
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return 1.0 - float(np.sum(p * p))


class DecisionTreeClassifier:
    """Binary-split CART tree over float features and integer labels.

    Parameters
    ----------
    max_depth:
        Depth limit (None = grow until pure).
    min_samples_split:
        Minimum samples required to attempt a split.
    max_features:
        Features considered per split: None = all, "sqrt" = sqrt(n), or an
        int count.  Forests pass "sqrt" (the sklearn default).
    random_state:
        Seed (or Generator) for feature subsampling.
    """

    def __init__(self, max_depth: Optional[int] = None,
                 min_samples_split: int = 2,
                 max_features=None,
                 random_state=None):
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._rng = np.random.default_rng(random_state)
        self._root: Optional[_Node] = None
        self.n_classes_ = 0
        self.n_features_ = 0

    # -- fitting ---------------------------------------------------------------

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if y.min() < 0:
            raise ValueError("labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        self.n_features_ = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _feature_candidates(self) -> np.ndarray:
        n = self.n_features_
        if self.max_features is None:
            return np.arange(n)
        if self.max_features == "sqrt":
            k = max(1, int(np.sqrt(n)))
        else:
            k = max(1, min(int(self.max_features), n))
        return self._rng.choice(n, size=k, replace=False)

    def _class_counts(self, y: np.ndarray) -> np.ndarray:
        return np.bincount(y, minlength=self.n_classes_).astype(float)

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        """Best (feature, threshold) by weighted-Gini decrease, else None."""
        n = len(y)
        parent_counts = self._class_counts(y)
        best = None
        best_score = _gini(parent_counts)
        if best_score == 0.0:
            return None
        for feature in self._feature_candidates():
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            left_counts = np.zeros(self.n_classes_)
            right_counts = parent_counts.copy()
            for i in range(n - 1):
                cls = ys[i]
                left_counts[cls] += 1
                right_counts[cls] -= 1
                if xs[i] == xs[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                score = (n_left * _gini(left_counts)
                         + n_right * _gini(right_counts)) / n
                if score < best_score - 1e-12:
                    best_score = score
                    best = (int(feature), float((xs[i] + xs[i + 1]) / 2.0))
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = self._class_counts(y)
        node = _Node(counts)
        if (len(y) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or _gini(counts) == 0.0):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        if not mask.any() or mask.all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    # -- prediction ----------------------------------------------------------------

    def _leaf(self, row: np.ndarray) -> _Node:
        node = self._root
        assert node is not None, "tree is not fitted"
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node

    def predict_proba(self, X) -> np.ndarray:
        """Per-class probabilities from leaf class frequencies."""
        X = np.asarray(X, dtype=float)
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        out = np.zeros((len(X), self.n_classes_))
        for i, row in enumerate(X):
            counts = self._leaf(row).counts
            total = counts.sum()
            out[i] = counts / total if total else 1.0 / self.n_classes_
        return out

    def predict(self, X) -> np.ndarray:
        """Most probable class per row."""
        return np.argmax(self.predict_proba(X), axis=1)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)
