"""Multi-vendor spot dataset support (paper Section 7)."""

from .adapters import AwsAdapter, AzureAdapter, GcpAdapter, azure_catalog, gcp_catalog
from .analysis import (
    PriceQuote,
    availability_timelines,
    cheapest_by_vendor,
    cross_vendor_savings,
)
from .collector import (
    AVAILABILITY_TABLE,
    INTERRUPTION_TABLE,
    PRICE_TABLE,
    MultiCloudArchive,
    MultiCloudReport,
)
from .vendor import (
    Access,
    DatasetAccess,
    HardwareProfile,
    VendorAdapter,
    VendorOffering,
)

__all__ = [
    "AwsAdapter", "AzureAdapter", "GcpAdapter", "azure_catalog", "gcp_catalog",
    "PriceQuote", "availability_timelines", "cheapest_by_vendor",
    "cross_vendor_savings",
    "AVAILABILITY_TABLE", "INTERRUPTION_TABLE", "PRICE_TABLE",
    "MultiCloudArchive", "MultiCloudReport",
    "Access", "DatasetAccess", "HardwareProfile", "VendorAdapter",
    "VendorOffering",
]
