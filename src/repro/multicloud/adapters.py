"""Vendor adapters: AWS (full surface), Azure and GCP (reduced surfaces).

Azure and Google get their own simulated worlds built on the same latent
market machinery but with vendor-specific catalogs (their real type-naming
conventions, fewer regions) and independent seeds, so cross-vendor series
are genuinely distinct.  Their adapters expose only the datasets the paper
says those vendors publish.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cloudsim import Catalog, InstanceFamily, Region, SimulatedCloud
from .vendor import (
    Access,
    DatasetAccess,
    HardwareProfile,
    VendorOffering,
)


def _profile(itype) -> HardwareProfile:
    return HardwareProfile(itype.vcpus, itype.memory_gib,
                           itype.family.accelerator)


class AwsAdapter:
    """AWS: price and availability via API, interruption via web."""

    name = "aws"
    access = DatasetAccess(price=Access.API, availability=Access.API,
                           interruption=Access.WEB)

    def __init__(self, cloud: SimulatedCloud):
        self.cloud = cloud

    def offerings(self) -> List[VendorOffering]:
        out = []
        for itype in self.cloud.catalog.instance_types:
            for region in self.cloud.catalog.regions_offering(itype):
                out.append(VendorOffering(self.name, itype.name, region.code,
                                          _profile(itype)))
        return out

    def spot_price(self, instance_type: str, region: str,
                   timestamp: float) -> Optional[float]:
        return self.cloud.pricing.spot_price(instance_type, region, timestamp)

    def availability_score(self, instance_type: str, region: str,
                           timestamp: float) -> Optional[int]:
        return self.cloud.placement.region_score(instance_type, region,
                                                 timestamp)

    def interruption_ratio(self, instance_type: str, region: str,
                           timestamp: float) -> Optional[float]:
        return self.cloud.advisor.interruption_ratio(instance_type, region,
                                                     timestamp)


def azure_catalog(seed: int = 100) -> Catalog:
    """A compact Azure-style catalog (D/E/F/NC/L series)."""
    def fam(name, letter, cat, sizes, accel=None, premium=0.0):
        return InstanceFamily(name, letter, cat, sizes, accel, premium)

    families = [
        fam("Standard_D_v3", "M", "general",
            ("large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge")),
        fam("Standard_D_v4", "M", "general",
            ("large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge")),
        fam("Standard_B", "T", "general", ("micro", "small", "medium", "large")),
        fam("Standard_F_v2", "C", "compute",
            ("large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge")),
        fam("Standard_E_v4", "R", "memory",
            ("large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge")),
        fam("Standard_M", "X", "memory", ("8xlarge", "16xlarge", "32xlarge")),
        fam("Standard_NC_T4", "G", "accelerated",
            ("xlarge", "2xlarge", "4xlarge"), "nvidia-t4", 1.7),
        fam("Standard_ND_A100", "P", "accelerated",
            ("24xlarge",), "nvidia-a100", 5.6),
        fam("Standard_L_v2", "I", "storage",
            ("large", "xlarge", "2xlarge", "4xlarge", "8xlarge")),
    ]
    regions = [
        Region("az-eastus-1", "us", 3), Region("az-westus-1", "us", 3),
        Region("az-westeu-1", "eu", 3), Region("az-northeu-1", "eu", 2),
        Region("az-japaneast-1", "ap", 3), Region("az-auseast-1", "ap", 2),
        Region("az-brazilsouth-1", "sa", 2),
    ]
    return Catalog(seed=seed, families=families, regions=regions)


def gcp_catalog(seed: int = 200) -> Catalog:
    """A compact GCP-style catalog (e2/n2/c2/m2/a2 series)."""
    def fam(name, letter, cat, sizes, accel=None, premium=0.0):
        return InstanceFamily(name, letter, cat, sizes, accel, premium)

    families = [
        fam("e2-standard", "T", "general",
            ("small", "medium", "large", "xlarge", "2xlarge", "4xlarge")),
        fam("n2-standard", "M", "general",
            ("large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge")),
        fam("c2-standard", "C", "compute",
            ("xlarge", "2xlarge", "4xlarge", "8xlarge")),
        fam("m2-ultramem", "X", "memory", ("16xlarge", "32xlarge")),
        fam("a2-highgpu", "P", "accelerated",
            ("2xlarge", "4xlarge", "8xlarge"), "nvidia-a100", 5.6),
        fam("n2d-standard", "M", "general",
            ("large", "xlarge", "2xlarge", "4xlarge", "8xlarge")),
    ]
    regions = [
        Region("gcp-uscentral-1", "us", 3), Region("gcp-useast-1", "us", 3),
        Region("gcp-euwest-1", "eu", 3), Region("gcp-asiaeast-1", "ap", 2),
        Region("gcp-asianortheast-1", "ap", 3),
    ]
    return Catalog(seed=seed, families=families, regions=regions)


class AzureAdapter:
    """Azure: price via API; eviction rate via web portal; no placement
    score equivalent."""

    name = "azure"
    access = DatasetAccess(price=Access.API, availability=Access.WEB,
                           interruption=Access.WEB)

    def __init__(self, seed: int = 100):
        self.cloud = SimulatedCloud(seed=seed, catalog=azure_catalog(seed))

    def offerings(self) -> List[VendorOffering]:
        return [VendorOffering(self.name, itype.name, region.code,
                               _profile(itype))
                for itype in self.cloud.catalog.instance_types
                for region in self.cloud.catalog.regions_offering(itype)]

    def spot_price(self, instance_type: str, region: str,
                   timestamp: float) -> Optional[float]:
        return self.cloud.pricing.spot_price(instance_type, region, timestamp)

    def availability_score(self, instance_type: str, region: str,
                           timestamp: float) -> Optional[int]:
        # Azure's portal shows an eviction-rate-derived signal; it is
        # web-scraped, not an API score, and coarser than the AWS SPS.
        ratio = self.cloud.advisor.interruption_ratio(instance_type, region,
                                                      timestamp)
        return 3 if ratio < 0.10 else (2 if ratio < 0.20 else 1)

    def interruption_ratio(self, instance_type: str, region: str,
                           timestamp: float) -> Optional[float]:
        return self.cloud.advisor.interruption_ratio(instance_type, region,
                                                     timestamp)


class GcpAdapter:
    """Google Cloud: current spot price from the web portal only; no
    availability or interruption dataset at all (paper Section 7)."""

    name = "gcp"
    access = DatasetAccess(price=Access.WEB, availability=Access.NONE,
                           interruption=Access.NONE)

    def __init__(self, seed: int = 200):
        self.cloud = SimulatedCloud(seed=seed, catalog=gcp_catalog(seed))

    def offerings(self) -> List[VendorOffering]:
        return [VendorOffering(self.name, itype.name, region.code,
                               _profile(itype))
                for itype in self.cloud.catalog.instance_types
                for region in self.cloud.catalog.regions_offering(itype)]

    def spot_price(self, instance_type: str, region: str,
                   timestamp: float) -> Optional[float]:
        return self.cloud.pricing.spot_price(instance_type, region, timestamp)

    def availability_score(self, instance_type: str, region: str,
                           timestamp: float) -> Optional[int]:
        return None

    def interruption_ratio(self, instance_type: str, region: str,
                           timestamp: float) -> Optional[float]:
        return None
