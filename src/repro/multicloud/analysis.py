"""Cross-vendor analyses over the unified archive (paper Section 7).

Two analyses the paper motivates with its global-key schema:

* *hardware-matched price comparison* -- for a hardware profile, which
  vendor currently offers the cheapest equivalent spot machine;
* *temporal availability comparison* -- how each vendor's published
  availability signal moves over a common time grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .collector import (
    AVAILABILITY_TABLE,
    DIM_ACCEL,
    DIM_MEMORY,
    DIM_REGION,
    DIM_TYPE,
    DIM_VCPUS,
    DIM_VENDOR,
    PRICE_TABLE,
    MultiCloudArchive,
)
from .vendor import HardwareProfile


@dataclass(frozen=True)
class PriceQuote:
    """One vendor's cheapest match for a hardware profile."""

    vendor: str
    instance_type: str
    region: str
    price: float


def cheapest_by_vendor(archive: MultiCloudArchive, profile: HardwareProfile,
                       timestamp: float) -> List[PriceQuote]:
    """Cheapest archived spot price per vendor for a hardware profile.

    Matching uses the global key (vcpus, memory bucket, accelerator) so
    vendor-specific type names never enter the comparison.
    """
    table = archive.store.table(PRICE_TABLE)
    filters = {
        DIM_VCPUS: str(profile.vcpus),
        DIM_MEMORY: str(int(round(profile.memory_gib))),
        DIM_ACCEL: profile.accelerator or "none",
    }
    best: Dict[str, PriceQuote] = {}
    for key in table.series_keys("spot_price", filters):
        series = table.series(key)
        assert series is not None
        price = series.value_at(timestamp)
        if price is None:
            continue
        dims = key.dimension_dict
        quote = PriceQuote(dims[DIM_VENDOR], dims[DIM_TYPE],
                           dims[DIM_REGION], float(price))
        current = best.get(quote.vendor)
        if current is None or quote.price < current.price:
            best[quote.vendor] = quote
    return sorted(best.values(), key=lambda q: q.price)


def cross_vendor_savings(quotes: Sequence[PriceQuote]) -> Optional[float]:
    """Fractional saving of the cheapest vendor over the dearest."""
    if len(quotes) < 2:
        return None
    prices = sorted(q.price for q in quotes)
    return 1.0 - prices[0] / prices[-1]


def availability_timelines(archive: MultiCloudArchive,
                           sample_times: Sequence[float]
                           ) -> Dict[str, np.ndarray]:
    """Mean published availability per vendor over a common time grid.

    Vendors without an availability dataset (GCP) are absent from the
    result -- exactly the gap the paper's archive service fills by
    recording whatever each vendor does publish.
    """
    table = archive.store.table(AVAILABILITY_TABLE)
    sums: Dict[str, np.ndarray] = {}
    counts: Dict[str, np.ndarray] = {}
    for key in table.series_keys("availability"):
        vendor = key.dimension_dict[DIM_VENDOR]
        series = table.series(key)
        assert series is not None
        values = np.array([np.nan if v is None else float(v)
                           for v in series.resample(sample_times)])
        if vendor not in sums:
            sums[vendor] = np.zeros(len(sample_times))
            counts[vendor] = np.zeros(len(sample_times))
        good = ~np.isnan(values)
        sums[vendor][good] += values[good]
        counts[vendor][good] += 1
    out: Dict[str, np.ndarray] = {}
    for vendor in sums:
        with np.errstate(invalid="ignore"):
            out[vendor] = np.where(counts[vendor] > 0,
                                   sums[vendor] / np.maximum(counts[vendor], 1),
                                   np.nan)
    return out
