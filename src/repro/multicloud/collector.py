"""Multi-vendor collection into a unified global-key schema.

Section 7 of the paper: a shared schema with *global keys* -- the
timestamp, plus hardware details -- lets a single archive hold every
vendor's spot datasets and support cross-vendor analyses.  One table per
dataset, with a ``Vendor`` dimension; the hardware profile rides along as
dimensions so joins on equivalent machines are a filter away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..timeseries import Record, TimeSeriesStore
from .vendor import Access, VendorAdapter, VendorOffering

PRICE_TABLE = "mc_price"
AVAILABILITY_TABLE = "mc_availability"
INTERRUPTION_TABLE = "mc_interruption"

DIM_VENDOR = "Vendor"
DIM_TYPE = "InstanceType"
DIM_REGION = "Region"
DIM_VCPUS = "VCpus"
DIM_MEMORY = "MemoryGiB"
DIM_ACCEL = "Accelerator"


def _dimensions(offering: VendorOffering) -> Dict[str, str]:
    hardware = offering.hardware
    return {
        DIM_VENDOR: offering.vendor,
        DIM_TYPE: offering.instance_type,
        DIM_REGION: offering.region,
        DIM_VCPUS: str(hardware.vcpus),
        DIM_MEMORY: str(int(round(hardware.memory_gib))),
        DIM_ACCEL: hardware.accelerator or "none",
    }


@dataclass
class MultiCloudReport:
    """What one multi-vendor round collected."""

    per_vendor_records: Dict[str, int]
    datasets_missing: Dict[str, List[str]]

    @property
    def total_records(self) -> int:
        return sum(self.per_vendor_records.values())


class MultiCloudArchive:
    """Unified archive over any number of vendor adapters."""

    def __init__(self, vendors: Sequence[VendorAdapter]):
        by_name = {}
        for vendor in vendors:
            if vendor.name in by_name:
                raise ValueError(f"duplicate vendor {vendor.name!r}")
            by_name[vendor.name] = vendor
        self.vendors: Dict[str, VendorAdapter] = by_name
        self.store = TimeSeriesStore()
        for table in (PRICE_TABLE, AVAILABILITY_TABLE, INTERRUPTION_TABLE):
            self.store.create_table(table)

    # -- collection -------------------------------------------------------

    def collect(self, timestamp: float,
                max_offerings_per_vendor: Optional[int] = None) -> MultiCloudReport:
        """One collection round: every vendor, every dataset it publishes."""
        per_vendor: Dict[str, int] = {}
        missing: Dict[str, List[str]] = {}
        for name, vendor in self.vendors.items():
            offerings = vendor.offerings()
            if max_offerings_per_vendor is not None:
                offerings = offerings[:max_offerings_per_vendor]
            written = 0
            for offering in offerings:
                dims = _dimensions(offering)
                price = vendor.spot_price(offering.instance_type,
                                          offering.region, timestamp)
                if price is not None:
                    self.store.table(PRICE_TABLE).write(
                        Record.make(dims, "spot_price", price, timestamp))
                    written += 1
                score = vendor.availability_score(
                    offering.instance_type, offering.region, timestamp)
                if score is not None:
                    self.store.table(AVAILABILITY_TABLE).write(
                        Record.make(dims, "availability", int(score), timestamp))
                    written += 1
                ratio = vendor.interruption_ratio(
                    offering.instance_type, offering.region, timestamp)
                if ratio is not None:
                    self.store.table(INTERRUPTION_TABLE).write(
                        Record.make(dims, "interruption_ratio", float(ratio),
                                    timestamp))
                    written += 1
            per_vendor[name] = written
            missing[name] = [
                dataset for dataset, access in (
                    ("price", vendor.access.price),
                    ("availability", vendor.access.availability),
                    ("interruption", vendor.access.interruption))
                if access is Access.NONE
            ]
        return MultiCloudReport(per_vendor, missing)

    # -- reads --------------------------------------------------------------

    def price_at(self, vendor: str, instance_type: str, region: str,
                 timestamp: float) -> Optional[float]:
        value = self.store.table(PRICE_TABLE).value_at(
            "spot_price",
            self._lookup_dims(vendor, instance_type, region), timestamp)
        return None if value is None else float(value)

    def _lookup_dims(self, vendor: str, instance_type: str,
                     region: str) -> Dict[str, str]:
        adapter = self.vendors[vendor]
        for offering in adapter.offerings():
            if (offering.instance_type == instance_type
                    and offering.region == region):
                return _dimensions(offering)
        raise KeyError(f"{vendor} does not offer {instance_type} in {region}")

    def vendors_with_dataset(self, dataset: str) -> List[str]:
        """Vendors publishing a dataset at all (Section 7's access table)."""
        attr = {"price": "price", "availability": "availability",
                "interruption": "interruption"}[dataset]
        return sorted(name for name, vendor in self.vendors.items()
                      if getattr(vendor.access, attr) is not Access.NONE)
