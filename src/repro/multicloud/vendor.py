"""Vendor abstraction for multi-cloud spot datasets (paper Section 7).

The paper's "extending service for various cloud vendors" observes that
each vendor exposes a *different subset* of spot information through a
*different access medium*:

============  ==========  ==============  ====================
dataset       AWS         Microsoft Azure Google Cloud
============  ==========  ==============  ====================
spot price    API         API             web portal only
availability  API (SPS)   web portal only --
interruption  web only    web portal only --
============  ==========  ==============  ====================

A :class:`VendorAdapter` normalizes that surface: every dataset read
returns either a value or ``None`` when the vendor simply does not publish
it, and :class:`DatasetAccess` records *how* it is reachable so collectors
can route API reads and web scrapes appropriately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple


class Access(str, enum.Enum):
    """How a vendor exposes one dataset."""

    API = "api"
    WEB = "web"
    NONE = "none"


@dataclass(frozen=True)
class DatasetAccess:
    """Access medium per dataset for one vendor."""

    price: Access
    availability: Access
    interruption: Access


@dataclass(frozen=True)
class HardwareProfile:
    """The paper's proposed *global key*: vendor-neutral hardware identity.

    Joining on (timestamp, hardware profile) lets analyses compare spot
    behaviour of equivalent machines across vendors even though every
    vendor names its types differently.
    """

    vcpus: int
    memory_gib: float
    accelerator: Optional[str] = None

    @property
    def key(self) -> Tuple[int, int, str]:
        """Coarse join key: vcpus, memory bucket, accelerator family."""
        return (self.vcpus, int(round(self.memory_gib)),
                self.accelerator or "none")


@dataclass(frozen=True)
class VendorOffering:
    """One orderable (type, region) pair of a vendor."""

    vendor: str
    instance_type: str
    region: str
    hardware: HardwareProfile


class VendorAdapter(Protocol):
    """Uniform read surface over one vendor's spot datasets."""

    name: str
    access: DatasetAccess

    def offerings(self) -> List[VendorOffering]:
        """All orderable (type, region) pairs with hardware profiles."""
        ...

    def spot_price(self, instance_type: str, region: str,
                   timestamp: float) -> Optional[float]:
        """Current spot $/hour, or None when the vendor publishes none."""
        ...

    def availability_score(self, instance_type: str, region: str,
                           timestamp: float) -> Optional[int]:
        """Vendor availability score (AWS SPS-like), or None."""
        ...

    def interruption_ratio(self, instance_type: str, region: str,
                           timestamp: float) -> Optional[float]:
        """Trailing interruption ratio, or None."""
        ...
