"""Score conversions shared by every layer (paper Section 5).

The advisor's categorical interruption frequency is converted to the
*interruption-free score*: the lowest interruption bucket maps to 3.0 and
the highest to 1.0, with the three middle buckets at 2.5, 2.0, 1.5 -- the
same 1.0..3.0 range as the empirically observed single-type spot placement
score, so the two datasets can be compared directly.

This module lives at the package root (next to ``_util``) because the
mapping is needed both *below* ``core`` -- the simulated lifecycle engine
conditions on the advisor bucket -- and *above* it in the Section-5
analysis.  Putting it in ``analysis`` forced upward imports from
``cloudsim`` and ``core`` that violated the package DAG (LAY001);
``analysis.scores`` now re-exports these names for its own layer's use.
"""

from __future__ import annotations

from typing import Sequence

#: Interruption-free score per advisor bucket index (0 = "<5%" ... 4 = ">20%").
BUCKET_TO_SCORE = (3.0, 2.5, 2.0, 1.5, 1.0)

#: All interruption-free score values, descending.
IF_SCORE_VALUES = (3.0, 2.5, 2.0, 1.5, 1.0)

#: All single-type spot placement score values, descending.
SPS_VALUES = (3, 2, 1)

#: Advisor bucket upper bounds (exclusive), mirroring cloudsim.advisor.
_BUCKET_UPPER = (0.05, 0.10, 0.15, 0.20, float("inf"))


def interruption_free_score(ratio: float) -> float:
    """Interruption-free score for a raw trailing-month interruption ratio.

    >>> interruption_free_score(0.01)
    3.0
    >>> interruption_free_score(0.30)
    1.0
    """
    if ratio < 0:
        raise ValueError("interruption ratio cannot be negative")
    for idx, upper in enumerate(_BUCKET_UPPER):
        if ratio < upper:
            return BUCKET_TO_SCORE[idx]
    return BUCKET_TO_SCORE[-1]


def score_from_bucket(bucket_index: int) -> float:
    """Interruption-free score for an advisor bucket index (0..4)."""
    if not 0 <= bucket_index < len(BUCKET_TO_SCORE):
        raise ValueError(f"bucket index out of range: {bucket_index}")
    return BUCKET_TO_SCORE[bucket_index]


def categorize(score: float) -> str:
    """Categorize a score into High / Medium / Low (paper Section 5.4).

    The experiment design uses exactly 3.0 -> High, 2.0 -> Medium,
    1.0 -> Low; intermediate interruption-free values (2.5, 1.5) fall into
    the nearest-lower experiment category and are excluded by the paper's
    sampler, which we mirror by returning an empty string for them.
    """
    if score == 3.0:
        return "H"
    if score == 2.0:
        return "M"
    if score == 1.0:
        return "L"
    return ""


def mean_score(values: Sequence[float]) -> float:
    """Plain mean used by the heatmap aggregations (empty -> nan)."""
    if not values:
        return float("nan")
    return sum(values) / len(values)
