"""Bin-packing solver substrate (MIP-solver stand-in for OR-Tools/CBC)."""

from .binpack import (
    STATS,
    BranchAndBoundResult,
    InfeasibleError,
    SolverStats,
    best_fit_decreasing,
    bin_count,
    branch_and_bound,
    first_fit_decreasing,
    is_valid_packing,
    lower_bound_l1,
    lower_bound_l2,
    pack,
)

__all__ = [
    "STATS", "BranchAndBoundResult", "InfeasibleError", "SolverStats",
    "best_fit_decreasing", "bin_count", "branch_and_bound",
    "first_fit_decreasing", "is_valid_packing", "lower_bound_l1",
    "lower_bound_l2", "pack",
]
