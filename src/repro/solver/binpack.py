"""Bin-packing solvers.

SpotLake reduces its placement-score query count by packing the regions
supporting an instance type (item weight = number of supporting zones) into
queries of capacity 10 -- the API's result-row cap (paper Section 3.2,
Figure 1).  The paper used a mixed-integer-programming solver (CBC via
OR-Tools); this module provides:

* :func:`first_fit_decreasing` and :func:`best_fit_decreasing` heuristics;
* :func:`branch_and_bound` -- an exact solver with L1/L2 lower bounds and a
  node budget, falling back to the best incumbent when exhausted;
* :func:`pack` -- the convenience entry point (exact with FFD fallback).

All solvers return a list of bins, each a list of the original item indexes.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


class InfeasibleError(ValueError):
    """An item exceeds the bin capacity (can never be packed)."""


@dataclass
class SolverStats:
    """Process-wide solver invocation counters.

    The plan cache's contract -- "an unchanged catalog replans with zero
    solver calls" -- is asserted against these counters, so every public
    solver entry point increments them.
    """

    ffd_calls: int = 0
    bfd_calls: int = 0
    bnb_calls: int = 0
    #: guards the counters; solvers may run on pool workers (PR 5)
    lock: threading.Lock = field(default_factory=threading.Lock,
                                 repr=False, compare=False)

    @property
    def total_calls(self) -> int:
        with self.lock:
            return self.ffd_calls + self.bfd_calls + self.bnb_calls

    def reset(self) -> None:
        with self.lock:
            self.ffd_calls = self.bfd_calls = self.bnb_calls = 0


#: The module-level counter instance (``from repro.solver import STATS``).
STATS = SolverStats()


def _validate(weights: Sequence[float], capacity: float) -> None:
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    for w in weights:
        if w <= 0:
            raise ValueError("item weights must be positive")
        if w > capacity:
            raise InfeasibleError(
                f"item weight {w} exceeds bin capacity {capacity}")


def lower_bound_l1(weights: Sequence[float], capacity: float) -> int:
    """Continuous lower bound: ceil(total weight / capacity)."""
    if not weights:
        return 0
    return math.ceil(sum(weights) / capacity - 1e-9)


def lower_bound_l2(weights: Sequence[float], capacity: float) -> int:
    """Martello-Toth L2 bound, tighter than L1 for big-item mixes.

    For each threshold k in (0, capacity/2], items > capacity - k cannot
    share a bin with anything; items in (capacity/2, capacity - k] each need
    their own bin but may accept one small item; the remainder is bounded by
    volume.
    """
    if not weights:
        return 0
    best = lower_bound_l1(weights, capacity)
    thresholds = sorted({w for w in weights if w <= capacity / 2.0})
    for k in [0.0] + thresholds:
        big = [w for w in weights if w > capacity - k]
        mid = [w for w in weights if capacity / 2.0 < w <= capacity - k]
        small = [w for w in weights if k <= w <= capacity / 2.0]
        free = len(mid) * capacity - sum(mid)
        overflow = sum(small) - free
        extra = max(0, math.ceil(overflow / capacity - 1e-9))
        best = max(best, len(big) + len(mid) + extra)
    return best


def first_fit_decreasing(weights: Sequence[float], capacity: float) -> List[List[int]]:
    """Classic FFD heuristic (<= 11/9 OPT + 1 bins)."""
    with STATS.lock:
        STATS.ffd_calls += 1
    _validate(weights, capacity)
    order = sorted(range(len(weights)), key=lambda i: -weights[i])
    bins: List[List[int]] = []
    residual: List[float] = []
    for idx in order:
        w = weights[idx]
        for b, room in enumerate(residual):
            if w <= room + 1e-9:
                bins[b].append(idx)
                residual[b] = room - w
                break
        else:
            bins.append([idx])
            residual.append(capacity - w)
    return bins


def best_fit_decreasing(weights: Sequence[float], capacity: float) -> List[List[int]]:
    """BFD heuristic: place each item in the tightest bin that fits."""
    with STATS.lock:
        STATS.bfd_calls += 1
    _validate(weights, capacity)
    order = sorted(range(len(weights)), key=lambda i: -weights[i])
    bins: List[List[int]] = []
    residual: List[float] = []
    for idx in order:
        w = weights[idx]
        best_bin = -1
        best_room = float("inf")
        for b, room in enumerate(residual):
            if w <= room + 1e-9 and room < best_room:
                best_bin, best_room = b, room
        if best_bin >= 0:
            bins[best_bin].append(idx)
            residual[best_bin] = best_room - w
        else:
            bins.append([idx])
            residual.append(capacity - w)
    return bins


@dataclass
class BranchAndBoundResult:
    """Solution plus optimality evidence from the exact solver."""

    bins: List[List[int]]
    optimal: bool
    nodes_explored: int
    lower_bound: int


def branch_and_bound(weights: Sequence[float], capacity: float,
                     node_budget: int = 200_000) -> BranchAndBoundResult:
    """Exact bin packing by branch-and-bound with symmetry breaking.

    Items are placed in decreasing-weight order; each node tries every open
    bin with room plus one new bin (opening bin k+1 before bin k is filled
    is symmetric, so only a single new bin is branched).  Pruned by the L2
    lower bound on the unplaced remainder.  When the node budget runs out
    the best incumbent found so far is returned with ``optimal=False``.
    """
    with STATS.lock:
        STATS.bnb_calls += 1
    _validate(weights, capacity)
    n = len(weights)
    if n == 0:
        return BranchAndBoundResult([], True, 0, 0)

    order = sorted(range(n), key=lambda i: -weights[i])
    sorted_weights = [weights[i] for i in order]
    lb_root = lower_bound_l2(weights, capacity)

    incumbent = first_fit_decreasing(weights, capacity)
    best_count = len(incumbent)
    nodes = 0
    budget_hit = False

    assignment: List[int] = [-1] * n  # position -> bin id, in sorted order
    residuals: List[float] = []

    def remainder_bound(position: int) -> int:
        rest = sorted_weights[position:]
        if not rest:
            return 0
        free = sum(residuals)
        need = sum(rest) - free
        return max(0, math.ceil(need / capacity - 1e-9))

    def dfs(position: int) -> None:
        nonlocal best_count, incumbent, nodes, budget_hit
        if budget_hit:
            return
        nodes += 1
        if nodes > node_budget:
            budget_hit = True
            return
        if position == n:
            if len(residuals) < best_count:
                best_count = len(residuals)
                bins: List[List[int]] = [[] for _ in range(best_count)]
                for pos, b in enumerate(assignment):
                    bins[b].append(order[pos])
                incumbent = bins
            return
        if len(residuals) + remainder_bound(position) >= best_count:
            return
        w = sorted_weights[position]
        tried_rooms = set()
        for b, room in enumerate(residuals):
            if w <= room + 1e-9 and round(room, 9) not in tried_rooms:
                tried_rooms.add(round(room, 9))
                residuals[b] = room - w
                assignment[position] = b
                dfs(position + 1)
                residuals[b] = room
        if len(residuals) + 1 < best_count:
            residuals.append(capacity - w)
            assignment[position] = len(residuals) - 1
            dfs(position + 1)
            residuals.pop()
        assignment[position] = -1

    dfs(0)
    optimal = (not budget_hit) or best_count == lb_root
    return BranchAndBoundResult(incumbent, optimal, nodes, lb_root)


def pack(weights: Sequence[float], capacity: float,
         exact: bool = True, node_budget: int = 200_000) -> List[List[int]]:
    """Pack items into the fewest bins; exact by default, FFD otherwise."""
    if not exact:
        return first_fit_decreasing(weights, capacity)
    return branch_and_bound(weights, capacity, node_budget).bins


def bin_count(bins: List[List[int]]) -> int:
    """Number of non-empty bins in a packing."""
    return sum(1 for b in bins if b)


def is_valid_packing(bins: List[List[int]], weights: Sequence[float],
                     capacity: float) -> bool:
    """Every item exactly once, every bin within capacity."""
    seen: List[int] = []
    for b in bins:
        if sum(weights[i] for i in b) > capacity + 1e-9:
            return False
        seen.extend(b)
    return sorted(seen) == list(range(len(weights)))
