"""Durable log-structured storage under the time-series store.

Write-ahead log (group commits, CRC-protected, torn-tail tolerant),
immutable sorted segments behind an atomically-published MANIFEST,
size-tiered compaction with retention folded into merges, and crash
recovery that reconstructs byte-identical ``Table`` state.
"""

from .compaction import (
    CompactionStats,
    DEFAULT_TIER_FANOUT,
    compact_table,
    trim_series,
)
from .engine import CRASH_WINDOWS, StorageEngine
from .recovery import RecoveredState, recover
from .segments import (
    CorruptSegmentError,
    MANIFEST_NAME,
    Manifest,
    SegmentMeta,
    TableManifest,
    load_manifest,
    read_segment,
    store_manifest,
    write_segment,
)
from .wal import (
    CorruptWalError,
    DEFAULT_SEGMENT_BYTES,
    NoopCrashHook,
    WalReplay,
    WalWriter,
    read_wal,
)

__all__ = [
    "CompactionStats", "DEFAULT_TIER_FANOUT", "compact_table", "trim_series",
    "CRASH_WINDOWS", "StorageEngine",
    "RecoveredState", "recover",
    "CorruptSegmentError", "MANIFEST_NAME", "Manifest", "SegmentMeta",
    "TableManifest", "load_manifest", "read_segment", "store_manifest",
    "write_segment",
    "CorruptWalError", "DEFAULT_SEGMENT_BYTES", "NoopCrashHook", "WalReplay",
    "WalWriter", "read_wal",
]
