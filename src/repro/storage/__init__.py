"""Durable log-structured storage under the time-series store.

Write-ahead log (group commits, CRC-protected, torn-tail tolerant),
immutable sorted segments (binary columnar v2 with zone-map predicate
pushdown; legacy JSON-lines v1 readable and migrated in place) behind
an atomically-published MANIFEST, size-tiered compaction with retention
folded into merges, and crash recovery that reconstructs byte-identical
``Table`` state.
"""

from .columnar import ColumnarFormatError, SegmentCursor, encode_segment
from .compaction import (
    CompactionStats,
    DEFAULT_TIER_FANOUT,
    compact_table,
    migrate_formats,
    trim_series,
)
from .engine import CRASH_WINDOWS, StorageEngine
from .recovery import RecoveredState, recover
from .segments import (
    CorruptSegmentError,
    MANIFEST_NAME,
    Manifest,
    SEGMENT_FORMAT,
    SUPPORTED_SEGMENT_FORMATS,
    SegmentMeta,
    TableManifest,
    forced_segment_format,
    load_manifest,
    read_segment,
    sanitize_table_component,
    scan_segment,
    segment_file_name,
    store_manifest,
    write_segment,
)
from .wal import (
    CorruptWalError,
    DEFAULT_SEGMENT_BYTES,
    NoopCrashHook,
    WalReplay,
    WalWriter,
    read_wal,
)

__all__ = [
    "ColumnarFormatError", "SegmentCursor", "encode_segment",
    "CompactionStats", "DEFAULT_TIER_FANOUT", "compact_table",
    "migrate_formats", "trim_series",
    "CRASH_WINDOWS", "StorageEngine",
    "RecoveredState", "recover",
    "CorruptSegmentError", "MANIFEST_NAME", "Manifest", "SEGMENT_FORMAT",
    "SUPPORTED_SEGMENT_FORMATS", "SegmentMeta", "TableManifest",
    "forced_segment_format", "load_manifest", "read_segment",
    "sanitize_table_component", "scan_segment", "segment_file_name",
    "store_manifest", "write_segment",
    "CorruptWalError", "DEFAULT_SEGMENT_BYTES", "NoopCrashHook", "WalReplay",
    "WalWriter", "read_wal",
]
