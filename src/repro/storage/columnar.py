"""Binary columnar segment bodies (segment format v2).

The v1 segment codec is JSON-lines: one line per series with the full
change-point arrays spelled out in text.  Parsing it dominates cold
reads and the text encoding bloats disk.  Format v2 keeps the same
*logical* content -- the exact state of every flushed series, sorted by
series key -- but lays it out columnar and binary:

``file := MAGIC | header_len(u32le) | header_json | body``

* **Header** -- one JSON object (parsed with the C decoder in a single
  call) holding the segment identity, two dictionaries, and per-series
  descriptors.  ``strings`` dictionary-encodes every measure name,
  dimension name and dimension value in the segment; ``values``
  dictionary-encodes non-numeric / low-cardinality observation values
  (JSON preserves their concrete types: ``1``, ``1.0``, ``true`` and
  ``"1"`` stay distinct).
* **Body** -- per series, the time and value columns split into *chunks*
  of at most ``chunk_points`` rows.  Time columns are delta-encoded
  against the first timestamp at the narrowest integer width that
  round-trips exactly (raw float64 otherwise); value columns are raw
  float64 / int64 when a chunk is type-homogeneous and high-cardinality,
  dictionary indices at the narrowest unsigned width otherwise (see
  :mod:`repro.timeseries.compression` for the column primitives).
* **Zone maps** -- every chunk descriptor carries ``[tmin, tmax]``, so a
  time-range scan touches only the chunk byte ranges that can overlap
  the query window; with an mmap-backed buffer the skipped chunks are
  never read off disk at all.  This is the predicate pushdown that lifts
  cold full-archive sweeps (and the serving front end's read ceiling).

Encoding is deterministic: dictionaries are populated in first-visit
order over the (already canonically sorted) series items, so identical
logical content always produces identical bytes -- the property the
crash matrix's byte-identity gate and segment checksums rely on.

This module deliberately knows nothing about files, manifests or
checksums; :mod:`repro.storage.segments` owns naming, atomic publish and
validation, and dispatches between the v1 and v2 codecs.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..timeseries.compression import (
    ChangePointSeries,
    int_column_fits,
    pack_float_column,
    pack_index_column,
    pack_int_column,
    pack_time_column,
    unpack_time_array,
    unpack_time_column,
    unpack_value_array,
    unpack_value_column,
)
from ..timeseries.record import SeriesKey, Value

#: v2 segment file magic (8 bytes, includes the format version).
MAGIC = b"SPSEG2\r\n"

#: Rows per column chunk: the zone-map granularity.  Small enough that a
#: narrow time window decodes only a sliver of a long series, large
#: enough that numpy's per-call overhead amortizes.
DEFAULT_CHUNK_POINTS = 512

#: Chunks whose value column has at most this many distinct values are
#: dictionary-encoded regardless of type (1-2 bytes per row beats 8).
_DICT_MAX_DISTINCT = 64


class ColumnarFormatError(ValueError):
    """The buffer is not a well-formed v2 columnar segment."""


def _value_key(value: Value) -> Tuple[str, str]:
    """Hashable dictionary key distinguishing type and NaN.

    ``repr`` of a float is its shortest exact round-trip, so distinct
    float values map to distinct keys while every NaN collapses to one
    dictionary slot (matching ``values_equal`` semantics).
    """
    return (type(value).__name__, repr(value))


class _Dictionary:
    """Insertion-ordered value -> index mapping with O(1) lookup."""

    def __init__(self, key=None):
        self._key = key
        self._index: Dict[object, int] = {}
        self.items: List[object] = []

    def index_of(self, value):
        key = self._key(value) if self._key else value
        idx = self._index.get(key)
        if idx is None:
            idx = len(self.items)
            self._index[key] = idx
            self.items.append(value)
        return idx


def _encode_value_chunk(chunk: Sequence[Value],
                        dictionary: _Dictionary) -> bytes:
    """Pick the cheapest exact encoding for one value chunk."""
    distinct = {_value_key(v) for v in chunk}
    if len(distinct) > _DICT_MAX_DISTINCT:
        if all(type(v) is float for v in chunk):
            return pack_float_column(chunk)
        if all(type(v) is int for v in chunk) and int_column_fits(chunk):
            return pack_int_column(chunk)
    return pack_index_column([dictionary.index_of(v) for v in chunk])


def encode_segment(table: str, segment_id: int, level: int,
                   items: Sequence[Tuple[SeriesKey, ChangePointSeries]],
                   chunk_points: int = DEFAULT_CHUNK_POINTS) -> bytes:
    """Serialize sorted series items into one v2 segment byte string."""
    strings = _Dictionary()
    values = _Dictionary(key=_value_key)
    body = bytearray()
    descriptors = []
    for key, series in items:
        times, vals = series.times, series.values
        chunks = []
        for lo in range(0, len(times), chunk_points):
            hi = min(lo + chunk_points, len(times))
            t_blob = pack_time_column(times[lo:hi])
            v_blob = _encode_value_chunk(vals[lo:hi], values)
            t_off = len(body)
            body.extend(t_blob)
            v_off = len(body)
            body.extend(v_blob)
            chunks.append([hi - lo, times[lo], times[hi - 1],
                           t_off, len(t_blob), v_off, len(v_blob)])
        dims = []
        for name, value in key.dimensions:
            dims.append(strings.index_of(name))
            dims.append(strings.index_of(value))
        descriptors.append({
            "m": strings.index_of(key.measure_name),
            "d": dims,
            "ou": series.observed_until,
            "oc": series.observation_count,
            "n": len(times),
            "ch": chunks,
        })
    header = {
        "format": 2,
        "table": table,
        "id": segment_id,
        "level": level,
        "series": len(items),
        "strings": strings.items,
        "values": values.items,
        "desc": descriptors,
    }
    # compact separators keep the header small; sorted keys make the
    # bytes canonical (dictionaries are already insertion-ordered lists)
    header_raw = json.dumps(header, separators=(",", ":"),
                            sort_keys=True).encode("utf-8")
    return b"".join((MAGIC, len(header_raw).to_bytes(4, "little"),
                     header_raw, bytes(body)))


class SegmentCursor:
    """Decoder over one v2 segment buffer (bytes or an mmap).

    The constructor parses only the header; column bytes are touched
    lazily per chunk, so zone-map-guided scans over an mmap-backed
    buffer never fault in the skipped pages.
    """

    def __init__(self, buffer, memoize: bool = False):
        view = memoryview(buffer)
        self._view = view
        #: memoized decode state, opt-in for long-lived cursors (the
        #: lake keeps one cursor per partition and serves many scans
        #: from it): series keys and chunk columns are decoded once and
        #: reused.  One-shot cursors leave it off -- the bookkeeping is
        #: pure overhead when nothing is ever re-read.
        self._memoize = memoize
        self._keys: Optional[List[SeriesKey]] = None
        self._chunk_cache: Dict[int, Tuple[List[float], list]] = {}
        self._array_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        # float64 lookup table over the value dictionary, built lazily on
        # the first scan_columns call (None until then); _float_lut_bad
        # flags dictionary slots with no exact numeric reading
        self._float_lut: Optional[np.ndarray] = None
        self._float_lut_bad: Optional[np.ndarray] = None
        parsed = False
        try:
            if bytes(view[:len(MAGIC)]) != MAGIC:
                raise ColumnarFormatError(
                    "bad magic: not a v2 columnar segment")
            header_len = int.from_bytes(view[len(MAGIC):len(MAGIC) + 4],
                                        "little")
            header_end = len(MAGIC) + 4 + header_len
            if header_end > len(view):
                raise ColumnarFormatError("truncated segment header")
            self.header = json.loads(bytes(
                view[len(MAGIC) + 4:header_end]).decode("utf-8"))
            self._body = view[header_end:]
            self._strings = self.header["strings"]
            self._values = self.header["values"]
            self._desc = self.header["desc"]
            if self.header.get("format") != 2 or \
                    len(self._desc) != self.header.get("series"):
                raise ColumnarFormatError(
                    "segment header is internally inconsistent")
            parsed = True
        except ColumnarFormatError:
            raise
        except (ValueError, KeyError, IndexError, TypeError,
                UnicodeDecodeError) as exc:
            raise ColumnarFormatError(
                f"undecodable v2 segment: {exc}") from None
        finally:
            if not parsed:
                self.release()

    def release(self) -> None:
        """Drop the buffer views so an underlying mmap can close.

        Idempotent and safe on a half-constructed cursor (a failed parse
        releases its views before the exception propagates).
        """
        body = getattr(self, "_body", None)
        if body is not None:
            body.release()
        self._view.release()
        self._keys = None
        self._chunk_cache.clear()
        self._array_cache.clear()
        self._float_lut = None
        self._float_lut_bad = None

    def __enter__(self) -> "SegmentCursor":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # -- helpers -----------------------------------------------------------

    def _key_of(self, desc: dict) -> SeriesKey:
        strings = self._strings
        dims = desc["d"]
        pairs = tuple((strings[dims[i]], strings[dims[i + 1]])
                      for i in range(0, len(dims), 2))
        return SeriesKey(strings[desc["m"]], pairs)

    def keys(self) -> Optional[List[SeriesKey]]:
        """Every series key in descriptor order, or None un-memoized."""
        if self._memoize and self._keys is None:
            self._keys = [self._key_of(desc) for desc in self._desc]
        return self._keys

    def _chunk_columns(self, chunk: Sequence) -> Tuple[List[float], list]:
        n, _, _, t_off, t_len, v_off, v_len = chunk
        if self._memoize:
            cached = self._chunk_cache.get(t_off)
            if cached is not None:
                return cached
        times = unpack_time_column(bytes(self._body[t_off:t_off + t_len]))
        is_index, raw = unpack_value_column(
            bytes(self._body[v_off:v_off + v_len]))
        if is_index:
            dictionary = self._values
            vals = [dictionary[i] for i in raw]
        else:
            vals = raw
        if len(times) != n or len(vals) != n:
            raise ColumnarFormatError(
                f"chunk decodes to {len(times)}/{len(vals)} rows, "
                f"descriptor says {n}")
        if self._memoize:
            self._chunk_cache[t_off] = (times, vals)
        return times, vals

    # -- full decode (recovery / compaction) -------------------------------

    def items(self) -> List[Tuple[SeriesKey, ChangePointSeries]]:
        """Decode every series -- the v1-equivalent full read."""
        try:
            out = []
            keys = self.keys()
            for index, desc in enumerate(self._desc):
                times: List[float] = []
                vals: list = []
                for chunk in desc["ch"]:
                    t, v = self._chunk_columns(chunk)
                    times.extend(t)
                    vals.extend(v)
                if len(times) != desc["n"]:
                    raise ColumnarFormatError(
                        f"series decodes to {len(times)} rows, "
                        f"descriptor says {desc['n']}")
                key = keys[index] if keys is not None else self._key_of(desc)
                out.append((key, ChangePointSeries(
                    times=times, values=vals,
                    observed_until=float(desc["ou"]),
                    observation_count=int(desc["oc"]))))
            return out
        except ColumnarFormatError:
            raise
        except (ValueError, KeyError, IndexError, TypeError) as exc:
            raise ColumnarFormatError(
                f"undecodable v2 segment body: {exc}") from None

    # -- predicate-pushdown scan -------------------------------------------

    def scan(self, start: float = float("-inf"),
             end: float = float("inf"),
             match: Optional[Callable[[SeriesKey], bool]] = None,
             ) -> List[Tuple[SeriesKey, List[Tuple[float, Value]]]]:
        """Change points inside ``[start, end]``, per series.

        Only chunks whose zone map ``[tmin, tmax]`` overlaps the window
        are decoded; boundary chunks are trimmed row-wise after decode.
        Series with no overlapping chunks are omitted entirely.  An
        optional ``match`` predicate on the series key skips whole
        series before any chunk is touched (the lake's key pushdown).
        """
        try:
            out = []
            keys = self.keys()
            for index, desc in enumerate(self._desc):
                key = keys[index] if keys is not None else None
                if match is not None:
                    if key is None:
                        key = self._key_of(desc)
                    if not match(key):
                        continue
                rows: List[Tuple[float, Value]] = []
                for chunk in desc["ch"]:
                    tmin, tmax = chunk[1], chunk[2]
                    if tmax < start or tmin > end:
                        continue  # zone map excludes the whole chunk
                    times, vals = self._chunk_columns(chunk)
                    if tmin >= start and tmax <= end:
                        rows.extend(zip(times, vals))
                    else:
                        rows.extend((t, v) for t, v in zip(times, vals)
                                    if start <= t <= end)
                if rows:
                    if key is None:
                        key = self._key_of(desc)
                    out.append((key, rows))
            return out
        except ColumnarFormatError:
            raise
        except (ValueError, KeyError, IndexError, TypeError) as exc:
            raise ColumnarFormatError(
                f"undecodable v2 segment body: {exc}") from None

    # -- columnar fast path (analytics pushdown) ---------------------------

    def _value_lut(self) -> Tuple[np.ndarray, np.ndarray]:
        """Float64 view of the value dictionary plus a bad-slot mask.

        Bools read as 0.0/1.0 and ints as exact float64 (the analytics
        engine aggregates in the float domain); strings and other
        non-numeric dictionary entries are flagged so a chunk that
        actually references one raises instead of aggregating garbage.
        """
        if self._float_lut is None:
            lut = np.zeros(len(self._values), dtype="<f8")
            bad = np.zeros(len(self._values), dtype=bool)
            for slot, value in enumerate(self._values):
                if isinstance(value, (int, float)):
                    lut[slot] = float(value)
                else:
                    bad[slot] = True
            self._float_lut = lut
            self._float_lut_bad = bad
        return self._float_lut, self._float_lut_bad

    def _chunk_arrays(self, chunk: Sequence) -> Tuple[np.ndarray, np.ndarray]:
        """One chunk as (times, values) float64 arrays, no row tuples."""
        n, _, _, t_off, t_len, v_off, v_len = chunk
        if self._memoize:
            cached = self._array_cache.get(t_off)
            if cached is not None:
                return cached
        times = unpack_time_array(bytes(self._body[t_off:t_off + t_len]))
        is_index, raw = unpack_value_array(
            bytes(self._body[v_off:v_off + v_len]))
        if is_index:
            lut, bad = self._value_lut()
            if raw.size and int(raw.max()) >= lut.size:
                raise ColumnarFormatError(
                    "value index out of dictionary range")
            if bad[raw].any():
                raise TypeError(
                    "column scan over non-numeric series values")
            vals = lut[raw]
        else:
            vals = raw.astype("<f8") if raw.dtype.kind == "i" else raw
        if times.size != n or vals.size != n:
            raise ColumnarFormatError(
                f"chunk decodes to {times.size}/{vals.size} rows, "
                f"descriptor says {n}")
        if self._memoize:
            self._array_cache[t_off] = (times, vals)
        return times, vals

    def scan_columns(self, start: float = float("-inf"),
                     end: float = float("inf"),
                     match: Optional[Callable[[SeriesKey], bool]] = None,
                     counters: Optional[Dict[str, int]] = None,
                     ) -> Tuple[List[SeriesKey], np.ndarray,
                                np.ndarray, np.ndarray]:
        """Decoded columns inside ``[start, end]`` without per-row tuples.

        Returns ``(keys, counts, times, values)``: the matched series
        keys (descriptor order) that have at least one in-window row,
        rows-per-series counts, and the concatenated float64 time/value
        columns (series-major; time-sorted within each series).  Chunk
        selection is the same zone-map pruning :meth:`scan` performs,
        but surviving chunks decode straight into numpy arrays and only
        boundary chunks are trimmed (via ``searchsorted``, not a Python
        row filter).  Series holding non-numeric values raise
        ``TypeError``.  ``counters``, when given, accumulates
        ``chunks_pruned`` / ``chunks_decoded`` / ``rows_decoded``.
        """
        try:
            keys_out: List[SeriesKey] = []
            counts: List[int] = []
            t_parts: List[np.ndarray] = []
            v_parts: List[np.ndarray] = []
            pruned = decoded = rows_decoded = 0
            keys = self.keys()
            for index, desc in enumerate(self._desc):
                key = keys[index] if keys is not None else None
                if match is not None:
                    if key is None:
                        key = self._key_of(desc)
                    if not match(key):
                        continue
                total = 0
                first_part = len(t_parts)
                for chunk in desc["ch"]:
                    tmin, tmax = chunk[1], chunk[2]
                    if tmax < start or tmin > end:
                        pruned += 1
                        continue  # zone map excludes the whole chunk
                    times, vals = self._chunk_arrays(chunk)
                    decoded += 1
                    rows_decoded += times.size
                    if tmin < start or tmax > end:
                        lo = int(np.searchsorted(times, start, side="left"))
                        hi = int(np.searchsorted(times, end, side="right"))
                        times, vals = times[lo:hi], vals[lo:hi]
                    if times.size:
                        total += times.size
                        t_parts.append(times)
                        v_parts.append(vals)
                if total:
                    if key is None:
                        key = self._key_of(desc)
                    keys_out.append(key)
                    counts.append(total)
                else:
                    del t_parts[first_part:]
                    del v_parts[first_part:]
            if counters is not None:
                counters["chunks_pruned"] = \
                    counters.get("chunks_pruned", 0) + pruned
                counters["chunks_decoded"] = \
                    counters.get("chunks_decoded", 0) + decoded
                counters["rows_decoded"] = \
                    counters.get("rows_decoded", 0) + rows_decoded
            times_flat = (np.concatenate(t_parts) if t_parts
                          else np.empty(0, dtype="<f8"))
            values_flat = (np.concatenate(v_parts) if v_parts
                           else np.empty(0, dtype="<f8"))
            return (keys_out, np.asarray(counts, dtype=np.int64),
                    times_flat, values_flat)
        except (ColumnarFormatError, TypeError):
            raise
        except (ValueError, KeyError, IndexError) as exc:
            raise ColumnarFormatError(
                f"undecodable v2 segment body: {exc}") from None

    def time_bounds(self) -> Optional[Tuple[float, float]]:
        """Segment-wide [min, max] timestamp from the zone maps alone."""
        tmin, tmax = math.inf, -math.inf
        for desc in self._desc:
            for chunk in desc["ch"]:
                tmin = min(tmin, chunk[1])
                tmax = max(tmax, chunk[2])
        if tmin > tmax:
            return None
        return tmin, tmax
