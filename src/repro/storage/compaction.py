"""Size-tiered compaction: fold small segments into larger, trimmed ones.

Every checkpoint flushes one level-0 segment per dirty table, so L0
accumulates one segment per checkpoint.  Once a level holds
``tier_fanout`` segments they are merged into a single segment one level
up -- classic size-tiered compaction, with two SpotLake-specific twists:

* *Newest wins per series.*  Segments store the full state of each
  series they contain (change-point arrays plus observation counters),
  so a merge keeps only the newest version of each key -- no
  tombstones, no record-level merge.
* *Eviction is a compaction concern.*  Retention cutoffs recorded by
  eviction WAL ops (``TableManifest.evicted_through``) are applied while
  merging: change points the retention sweep already dropped from the
  live store are physically reclaimed here, mirroring
  ``Table.evict_before`` semantics exactly (the last point at or before
  the cutoff survives because its value is still in force).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..timeseries.compression import ChangePointSeries
from ..timeseries.record import SeriesKey
from .segments import (
    SegmentMeta,
    TableManifest,
    current_write_format,
    read_segment,
    write_segment,
)

#: Segments per level that trigger a merge into the next level.
DEFAULT_TIER_FANOUT = 4


@dataclass
class CompactionStats:
    """Work accounting for one checkpoint's compaction pass."""

    merges: int = 0
    segments_merged: int = 0
    segments_created: int = 0
    #: old-format segments rewritten in place to the current format
    segments_migrated: int = 0
    bytes_written: int = 0
    points_dropped: int = 0
    #: files superseded by merges, deleted after the manifest publishes
    obsolete_files: List[str] = field(default_factory=list)

    def merge_into(self, other: "CompactionStats") -> None:
        self.merges += other.merges
        self.segments_merged += other.segments_merged
        self.segments_created += other.segments_created
        self.segments_migrated += other.segments_migrated
        self.bytes_written += other.bytes_written
        self.points_dropped += other.points_dropped
        self.obsolete_files.extend(other.obsolete_files)


def trim_series(series: ChangePointSeries, cutoff: Optional[float]) -> int:
    """Apply a retention cutoff in place; returns points dropped.

    Mirrors ``Table.evict_before``: drop change points strictly before
    ``cutoff`` but keep the last one at or before it.
    """
    if cutoff is None:
        return 0
    keep_from = bisect_right(series.times, cutoff) - 1
    if keep_from <= 0:
        return 0
    del series.times[:keep_from]
    del series.values[:keep_from]
    return keep_from


def merge_tier(directory: Path, table: str, metas: List[SegmentMeta],
               segment_id: int, level: int, cutoff: Optional[float],
               ) -> Tuple[SegmentMeta, CompactionStats]:
    """Merge one level's segments into a single next-level segment."""
    stats = CompactionStats(merges=1, segments_merged=len(metas),
                            obsolete_files=[m.file for m in metas])
    merged: Dict[SeriesKey, ChangePointSeries] = {}
    # newest first so the first version seen of each key wins
    for meta in sorted(metas, key=lambda m: m.segment_id, reverse=True):
        for key, series in read_segment(directory, meta):
            if key not in merged:
                merged[key] = series
    for series in merged.values():
        stats.points_dropped += trim_series(series, cutoff)
    items = sorted(merged.items(),
                   key=lambda kv: (kv[0].measure_name, kv[0].dimensions))
    new_meta = write_segment(directory, segment_id, table, level, items)
    stats.segments_created += 1
    stats.bytes_written += new_meta.bytes
    return new_meta, stats


def migrate_formats(directory: Path, table: str,
                    manifest: TableManifest) -> CompactionStats:
    """Rewrite segments whose body format is not the current write format.

    The segment *content* is unchanged -- same series, same state -- and
    the segment keeps its id and level, so the "higher id => newer data"
    ordering recovery relies on is untouched.  The old file gets a
    different extension than the new one, so the rewrite never clobbers
    it: until the manifest publishes, recovery still sees the original,
    and afterwards the orphaned file is garbage-collected like any other
    superseded segment.  This is how a pre-columnar data directory
    converges to v2 without a stop-the-world rewrite: every checkpoint
    migrates whatever old-format segments its tables still reference.
    """
    stats = CompactionStats()
    fmt = current_write_format()
    for index, meta in enumerate(manifest.segments):
        if meta.format == fmt:
            continue
        items = read_segment(directory, meta)
        new_meta = write_segment(directory, meta.segment_id, table,
                                 meta.level, items)
        manifest.segments[index] = new_meta
        stats.segments_migrated += 1
        stats.bytes_written += new_meta.bytes
        stats.obsolete_files.append(meta.file)
    return stats


def compact_table(directory: Path, table: str, manifest: TableManifest,
                  next_segment_id, tier_fanout: int = DEFAULT_TIER_FANOUT,
                  ) -> CompactionStats:
    """Run size-tiered merges on one table until every tier is slim.

    ``next_segment_id`` is a callable allocating monotonically increasing
    segment ids (shared across tables by the engine).  The table's
    segment list is rewritten in place; superseded files are reported in
    the returned stats for post-publish deletion, not deleted here.
    Segments that survive merging but carry an outdated body format are
    migrated in place afterwards (see :func:`migrate_formats`).
    """
    total = CompactionStats()
    while True:
        by_level: Dict[int, List[SegmentMeta]] = {}
        for meta in manifest.segments:
            by_level.setdefault(meta.level, []).append(meta)
        ripe = [lvl for lvl, metas in sorted(by_level.items())
                if len(metas) >= tier_fanout]
        if not ripe:
            break
        level = ripe[0]
        # a merge must consume the ENTIRE level: that is what keeps
        # "higher segment id => newer data" true across levels, which is
        # the ordering recovery's newest-wins merge relies on
        victims = by_level[level]
        new_meta, stats = merge_tier(
            directory, table, victims, next_segment_id(), level + 1,
            manifest.evicted_through)
        total.merge_into(stats)
        survivors = [m for m in manifest.segments if m not in victims]
        manifest.segments = sorted(survivors + [new_meta],
                                   key=lambda m: m.segment_id)
    total.merge_into(migrate_formats(directory, table, manifest))
    return total
