"""StorageEngine: the durable facade under ``TimeSeriesStore``.

The engine owns a data directory laid out as::

    data_dir/
      MANIFEST              # atomically-published root of trust
      wal-00000001.log      # segmented write-ahead log (group commits)
      seg-00000001-sps-L0.seg     # immutable sorted segment files
      seg-00000002-sps-L0.jsonl   # (legacy v1 bodies, until compaction
      ...                         #  migrates them to columnar v2)

and attaches to a *live* store (the archive's in-memory tables are the
memtable -- there is no second copy of the data).  The write protocol:

1. every archive mutation is logged first (``log_create_table`` /
   ``log_record`` / ``log_eviction``) and then applied to the live
   table by the caller;
2. ``commit_round`` group-commits the round's batch to the WAL -- the
   crash-atomicity unit is the collection round;
3. every ``checkpoint_every`` rounds (the caller's cadence),
   ``checkpoint`` flushes dirty series to level-0 segments, runs
   size-tiered compaction, publishes a new manifest and garbage-collects
   the log.

Crash windows (exercised by ``cloudsim.faults.CrashInjector`` and the
``doublerun --durability`` harness) cover every step: a torn WAL flush,
a crash after commit, mid-checkpoint before/after the manifest publish,
and mid-GC.  Recovery from any of them reconstructs the exact state of
the last committed round (see ``recovery.py``).
"""

from __future__ import annotations

import json
import os
from math import isfinite
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..timeseries.record import Record, SeriesKey
from ..timeseries.store import RetentionPolicy, TimeSeriesStore
from .compaction import DEFAULT_TIER_FANOUT, CompactionStats, compact_table
from .recovery import RecoveredState, recover
from .segments import (
    Manifest,
    TableManifest,
    is_segment_file_name,
    store_manifest,
    write_segment,
)
from .wal import (
    DEFAULT_SEGMENT_BYTES,
    NoopCrashHook,
    WalWriter,
    _ENCODER,
    wal_file_name,
)

#: Every named crash window, in the order a round reaches them.
CRASH_WINDOWS = (
    "wal.flush",            # torn write during the group-commit flush
    "wal.commit",           # after the batch is durable, before bookkeeping
    "checkpoint.segments",  # before dirty series flush to L0 segments
    "checkpoint.manifest",  # new manifest written but not yet published
    "checkpoint.publish",   # manifest live, garbage not yet collected
    "checkpoint.gc",        # before old WAL/segment files are deleted
)


class StorageEngine:
    """Durable write-ahead-logged storage under one data directory."""

    def __init__(self, data_dir: Union[str, Path], *,
                 wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 tier_fanout: int = DEFAULT_TIER_FANOUT,
                 fsync: bool = False,
                 crash_hook: Optional[NoopCrashHook] = None):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.tier_fanout = tier_fanout
        self.crash_hook = crash_hook or NoopCrashHook()

        #: state reconstructed from disk at open (fresh dirs recover empty)
        self.recovered: RecoveredState = recover(self.data_dir)
        self._manifest = self.recovered.manifest
        self.rounds_committed = self.recovered.rounds_committed
        self.last_commit_time = self.recovered.last_commit_time
        self._dirty: Dict[str, Set[SeriesKey]] = {
            name: set(keys) for name, keys in self.recovered.dirty.items()}
        self._pending_evictions: Dict[str, float] = dict(
            self.recovered.replayed_evictions)
        self._line_templates: Dict[Tuple[str, SeriesKey],
                                   Tuple[str, str]] = {}
        # batch-ingest twin of _line_templates: per-table, keyed by the
        # caller's pre-built SeriesKey (cached hash: no per-point key
        # construction, no per-point (table, key) tuple).  Entries are
        # [prefix, mid, dirty_epoch] lists: a key whose entry already
        # carries the current epoch is known to be in the dirty set, so
        # repeat points skip the set-add (and its Python-level hash call)
        self._point_templates: Dict[str, Tuple[Dict[SeriesKey, list],
                                               Set[SeriesKey]]] = {}
        # bumped by checkpoint() when the dirty sets are cleared
        self._dirty_epoch = 0
        self._store: Optional[TimeSeriesStore] = None

        # append to the newest existing WAL file (never clobber committed
        # records); a fully-GC'd log starts at the manifest's next number
        number = self.recovered.max_wal_number or self._manifest.next_wal_number
        self._writer = WalWriter(
            self.data_dir, number=number,
            next_seq=self.recovered.last_seq + 1,
            segment_bytes=wal_segment_bytes, fsync=fsync,
            crash_hook=self.crash_hook)
        self.checkpoints = 0
        self.compaction_stats = CompactionStats()
        self.segment_bytes_written = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, store: TimeSeriesStore) -> None:
        """Bind the live store whose tables are the engine's memtable."""
        self._store = store

    @property
    def store(self) -> TimeSeriesStore:
        if self._store is None:
            raise RuntimeError("StorageEngine has no attached store")
        return self._store

    # -- logging (call before mutating the live store) ---------------------

    def log_create_table(self, name: str,
                         policy: Optional[RetentionPolicy] = None) -> int:
        retention = policy.max_age_seconds if policy is not None else None
        return self._writer.append(
            {"op": "create", "table": name, "retention": retention})

    def log_record(self, table_name: str, record: Record) -> int:
        # Hot path: a series' dims/measure/table never change, so the
        # invariant JSON text around the per-record seq/time/value is
        # encoded once per (table, series) and spliced thereafter.  The
        # spliced line is byte-identical to what ``encode_record`` emits
        # (canonical sorted-key order: dims, measure, op, seq, table,
        # time, value; scalar formatting matches json's C encoder).  The
        # cache key avoids constructing/hashing a SeriesKey per record:
        # its components hash at C speed.
        entry = self._line_templates.get(
            (table_name, record.measure_name, record.dimensions))
        if entry is None:
            key = SeriesKey.of(record)
            entry = (
                '{"dims":%s,"measure":%s,"op":"write","seq":' % (
                    _ENCODER.encode(record.dimension_dict),
                    _ENCODER.encode(record.measure_name)),
                ',"table":%s,"time":' % _ENCODER.encode(table_name),
                key,
                self._dirty.setdefault(table_name, set()))
            self._line_templates[
                (table_name, record.measure_name, record.dimensions)] = entry
        prefix, mid, key, dirty = entry
        # scalar-to-JSON, inlined (this is the single hottest call site):
        # ``repr`` of a finite float and ``str`` of a non-bool int are
        # exactly what json's C encoder emits, so splicing them preserves
        # canonical byte-identity; anything else (bools, strings,
        # non-finite floats) takes the full encoder below
        time, value = record.time, record.value
        kind = type(value)
        if kind is int:
            value_text = str(value)
        elif kind is float and isfinite(value):
            value_text = repr(value)
        else:
            value_text = None
        if value_text is not None and type(time) is float and isfinite(time):
            seq = self._writer.append_template(
                prefix, f'{mid}{time!r},"value":{value_text}}}')
        else:  # non-finite floats, bools, strings: canonical slow path
            seq = self._writer.append({
                "op": "write", "table": table_name,
                "measure": record.measure_name,
                "dims": record.dimension_dict,
                "value": record.value, "time": record.time})
        dirty.add(key)
        return seq

    def _point_state(self, table_name: str
                     ) -> Tuple[Dict[SeriesKey, list], Set[SeriesKey]]:
        state = self._point_templates.get(table_name)
        if state is None:
            state = ({}, self._dirty.setdefault(table_name, set()))
            self._point_templates[table_name] = state
        return state

    def _point_template(self, table_name: str,
                        templates: Dict[SeriesKey, list],
                        key: SeriesKey) -> list:
        entry = [
            '{"dims":%s,"measure":%s,"op":"write","seq":' % (
                _ENCODER.encode(key.dimension_dict),
                _ENCODER.encode(key.measure_name)),
            ',"table":%s,"time":' % _ENCODER.encode(table_name),
            -1]  # dirty epoch: "not known dirty"
        templates[key] = entry
        return entry

    def log_point(self, table_name: str, key: SeriesKey, time: float,
                  value) -> int:
        """Log one (key, time, value) point -- :meth:`log_record` for the
        batched ingest path.

        Emits byte-identical WAL lines to :meth:`log_record` on the same
        data (same canonical encoding, same template splice), but takes a
        pre-built :class:`SeriesKey` so batch writers skip the per-record
        ``Record`` construction and the (table, measure, dims) tuple hash.
        """
        templates, dirty = self._point_state(table_name)
        entry = templates.get(key)
        if entry is None:
            entry = self._point_template(table_name, templates, key)
        prefix, mid = entry[0], entry[1]
        # same inlined scalar-to-JSON fast path as log_record
        kind = type(value)
        if kind is int:
            value_text = str(value)
        elif kind is float and isfinite(value):
            value_text = repr(value)
        else:
            value_text = None
        if value_text is not None and type(time) is float and isfinite(time):
            seq = self._writer.append_template(
                prefix, f'{mid}{time!r},"value":{value_text}}}')
        else:  # non-finite floats, bools, strings: canonical slow path
            seq = self._writer.append({
                "op": "write", "table": table_name,
                "measure": key.measure_name,
                "dims": key.dimension_dict,
                "value": value, "time": time})
        dirty.add(key)
        return seq

    def log_points(self, table_name: str,
                   points: Sequence[Tuple[SeriesKey, float, object]]) -> int:
        """Bulk :meth:`log_point`: one WAL buffer handoff per batch.

        Byte- and sequence-identical to looping ``log_point`` over
        ``points`` (a non-fast-path scalar mid-batch flushes the
        accumulated run first, preserving record order), but amortizes the
        per-record dispatch: templates and the dirty set resolve once,
        spliced lines accumulate into a single
        :meth:`~repro.storage.wal.WalWriter.append_template_many` call.
        Returns the last sequence number used.
        """
        templates, dirty = self._point_state(table_name)
        templates_get = templates.get
        dirty_add = dirty.add
        epoch = self._dirty_epoch
        parts: List[Tuple[str, str]] = []
        parts_append = parts.append
        last_seq = self._writer.next_seq - 1
        # per-batch memo: collection rounds stamp long runs of points with
        # the same timestamp, so repr(time) is computed once per run
        memo_time: object = None
        time_text = ""
        for key, time, value in points:
            entry = templates_get(key)
            if entry is None:
                entry = self._point_template(table_name, templates, key)
            kind = type(value)
            if kind is int:
                value_text = str(value)
            elif kind is float and isfinite(value):
                value_text = repr(value)
            else:
                value_text = None
            if value_text is not None and type(time) is float \
                    and isfinite(time):
                if time is not memo_time:
                    memo_time = time
                    time_text = repr(time)
                parts_append(
                    (entry[0],
                     f'{entry[1]}{time_text},"value":{value_text}}}'))
            else:  # slow path: flush the run first to keep seq order
                if parts:
                    last_seq = self._writer.append_template_many(parts)
                    parts = []
                    parts_append = parts.append
                last_seq = self._writer.append({
                    "op": "write", "table": table_name,
                    "measure": key.measure_name,
                    "dims": key.dimension_dict,
                    "value": value, "time": time})
            if entry[2] != epoch:
                entry[2] = epoch
                dirty_add(key)
        if parts:
            last_seq = self._writer.append_template_many(parts)
        return last_seq

    def log_eviction(self, table_name: str, cutoff: float,
                     touched: Sequence[SeriesKey]) -> int:
        seq = self._writer.append(
            {"op": "evict", "table": table_name, "cutoff": cutoff})
        self._dirty.setdefault(table_name, set()).update(touched)
        previous = self._pending_evictions.get(table_name, float("-inf"))
        self._pending_evictions[table_name] = max(previous, cutoff)
        return seq

    # -- round commit ------------------------------------------------------

    def commit_round(self, time: float) -> int:
        """Group-commit the round's batch; returns the marker's seq."""
        seq = self._writer.commit(self.rounds_committed + 1, time)
        self.rounds_committed += 1
        self.last_commit_time = time
        return seq

    # -- checkpoint --------------------------------------------------------

    def _flush_dirty(self, manifest: Manifest) -> None:
        for table_name in sorted(self._dirty):
            keys = self._dirty[table_name]
            if not keys:
                continue
            table = self.store.table(table_name)
            items = []
            for key in sorted(keys, key=lambda k: (k.measure_name,
                                                   k.dimensions)):
                series = table.series(key)
                if series is not None and series.times:
                    items.append((key, series))
            if not items:
                continue
            segment_id = manifest.next_segment_id
            manifest.next_segment_id += 1
            meta = write_segment(self.data_dir, segment_id, table_name, 0,
                                 items)
            manifest.tables[table_name].segments.append(meta)
            self.segment_bytes_written += meta.bytes

    def _collect_garbage(self, manifest: Manifest) -> None:
        live = set(manifest.live_files())
        for entry in sorted(os.listdir(self.data_dir)):
            # both body formats (.jsonl v1, .seg v2): a mixed-format
            # directory mid-migration sheds superseded files of either
            if is_segment_file_name(entry) and entry not in live:
                os.unlink(self.data_dir / entry)
            elif entry.startswith("wal-") and entry.endswith(".log") and \
                    entry != wal_file_name(self._writer.number):
                os.unlink(self.data_dir / entry)

    def checkpoint(self, time: float) -> Manifest:
        """Fold the committed log into segments and publish a manifest.

        Must run at a round boundary (no uncommitted batch pending): the
        manifest horizon is the last committed sequence number.
        """
        if self._writer.pending:
            raise RuntimeError(
                "checkpoint requires a committed round boundary "
                f"({self._writer.pending} uncommitted records pending)")
        self.crash_hook.before("checkpoint.segments")

        store = self.store
        manifest = Manifest(
            version=self._manifest.version + 1,
            last_applied_seq=self._writer.next_seq - 1,
            rounds_committed=self.rounds_committed,
            last_commit_time=self.last_commit_time,
            next_segment_id=self._manifest.next_segment_id,
            next_wal_number=self._writer.number + 1,
            tables={})
        for name in store.table_names():
            previous = self._manifest.tables.get(name)
            entry = TableManifest(
                retention=store.policy(name).max_age_seconds,
                records_written=store.table(name).stats.records_written,
                evicted_through=previous.evicted_through if previous else None,
                segments=list(previous.segments) if previous else [])
            pending = self._pending_evictions.get(name)
            if pending is not None:
                current = entry.evicted_through
                entry.evicted_through = pending if current is None \
                    else max(current, pending)
            manifest.tables[name] = entry

        self._flush_dirty(manifest)

        def next_segment_id() -> int:
            allocated = manifest.next_segment_id
            manifest.next_segment_id += 1
            return allocated

        for name in sorted(manifest.tables):
            stats = compact_table(self.data_dir, name, manifest.tables[name],
                                  next_segment_id, self.tier_fanout)
            self.segment_bytes_written += stats.bytes_written
            self.compaction_stats.merge_into(stats)

        # roll first so the manifest's next_wal_number matches the active
        # file and every superseded log file is safe to delete
        self._writer.roll()
        manifest.next_wal_number = self._writer.number
        store_manifest(self.data_dir, manifest, self.crash_hook)

        self.crash_hook.before("checkpoint.gc")
        self._collect_garbage(manifest)
        self._manifest = manifest
        # clear in place: log_record's template cache holds references to
        # these per-table dirty sets
        for keys in self._dirty.values():
            keys.clear()
        # invalidate log_points' per-entry dirty stamps in O(1): entries
        # compare their stamp against this epoch before re-adding a key
        self._dirty_epoch += 1
        self._pending_evictions = {}
        self.checkpoints += 1
        return manifest

    # -- lifecycle / introspection -----------------------------------------

    def close(self) -> None:
        self._writer.close()

    @property
    def manifest(self) -> Manifest:
        return self._manifest

    def evicted_through(self, table_name: str) -> Optional[float]:
        """The table's retention watermark: rows at or before it are gone.

        Combines the durable manifest watermark with evictions WAL-logged
        since the last checkpoint; None when the table was never swept.
        This is the hot/cold split point federated history queries use.
        """
        entry = self._manifest.tables.get(table_name)
        durable = entry.evicted_through if entry else None
        pending = self._pending_evictions.get(table_name)
        if durable is None:
            return pending
        if pending is None:
            return durable
        return max(durable, pending)

    def lake_census(self) -> Optional[dict]:
        """Cold-tier census read straight off the lake manifest, or None.

        The storage layer sits below the lake package, so the manifest
        JSON (format 1: ``{"format", "version", "partitions"}``) is
        parsed directly rather than through :class:`SpotDataLake`.
        """
        path = self.data_dir / "lake" / "LAKE_MANIFEST"
        if not path.exists():
            return None
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
            parts = raw["partitions"]
            return {
                "format": raw["format"],
                "manifest_version": raw["version"],
                "partitions": len(parts),
                "rounds": sum(len(p["rounds"]) for p in parts),
                "days": len({p["path"].rsplit("/", 1)[0] for p in parts}),
                "bytes": sum(p["bytes"] for p in parts),
                "rows": sum(p["rows"] for p in parts),
                "start": min((p["start"] for p in parts), default=None),
                "end": max((p["end"] for p in parts), default=None),
            }
        except (ValueError, KeyError, TypeError):
            return {"error": "undecodable lake manifest"}

    def stats(self) -> dict:
        """Durability counters (the ``repro recover`` / bench payload)."""
        live_bytes = self._manifest.live_bytes()
        out = {
            "rounds_committed": self.rounds_committed,
            "last_seq": self._writer.next_seq - 1,
            "checkpoints": self.checkpoints,
            "manifest_version": self._manifest.version,
            "wal_bytes_written": self._writer.bytes_written,
            "wal_records_written": self._writer.records_written,
            "segment_bytes_written": self.segment_bytes_written,
            "live_segment_bytes": live_bytes,
            "compaction_merges": self.compaction_stats.merges,
            "compaction_points_dropped": self.compaction_stats.points_dropped,
            "segments_migrated": self.compaction_stats.segments_migrated,
            "segment_formats": {
                str(fmt): count for fmt, count
                in sorted(self._manifest.format_census().items())},
            "write_amplification": (
                self.segment_bytes_written / live_bytes if live_bytes else 0.0),
        }
        lake = self.lake_census()
        if lake is not None:
            out["lake"] = lake
        return out
