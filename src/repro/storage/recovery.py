"""Crash recovery: manifest + segments + WAL tail -> byte-identical store.

Opening a data directory replays three layers, each validated:

1. the ``MANIFEST`` (atomically published, so always internally
   consistent) names the live segment set and the log horizon;
2. segments install series state via ``Table.install_series`` --
   newest-wins per series key, then the manifest's ``evicted_through``
   retention cutoff is re-applied (eviction ops already folded into the
   horizon may have been garbage-collected from the WAL); the segment
   reader dispatches per file on the manifest's recorded body format,
   so a mixed v1/v2 directory (an in-flight columnar migration) recovers
   exactly like a homogeneous one;
3. the WAL tail (``seq > last_applied_seq``) replays committed batches
   through the ordinary ``Table.write`` / ``evict_before`` path,
   discarding a torn final record and any batch without a commit marker.

Because segment flushes capture exact series state (including
``observed_until`` / ``observation_count``) and the WAL tail replays the
original record stream through the same ingestion code, the recovered
store is byte-identical -- ``dump_store`` output and all -- to the state
an uninterrupted process held at its last committed round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from ..timeseries.record import Record, SeriesKey
from ..timeseries.store import RetentionPolicy, TimeSeriesStore
from ..timeseries.table import Table
from .segments import Manifest, load_manifest, read_segment
from .wal import CorruptWalError, read_wal


@dataclass
class RecoveredState:
    """Everything a restarted engine (or operator) learns from disk."""

    store: TimeSeriesStore
    manifest: Manifest
    #: sequence number of the last committed (applied) record
    last_seq: int = 0
    rounds_committed: int = 0
    last_commit_time: Optional[float] = None
    #: torn/invalid trailing WAL lines discarded (crash mid-flush)
    torn_lines: int = 0
    #: well-formed WAL records discarded for lacking a commit marker
    uncommitted_records: int = 0
    #: WAL-tail operations replayed through the ingestion path
    replayed_operations: int = 0
    #: series touched by the WAL tail (the restarted engine's dirty set)
    dirty: Dict[str, Set[SeriesKey]] = field(default_factory=dict)
    #: newest eviction cutoff seen in the WAL tail, per table
    replayed_evictions: Dict[str, float] = field(default_factory=dict)
    #: highest WAL file number present on disk (0 = empty log)
    max_wal_number: int = 0

    @property
    def data_loss(self) -> bool:
        """True when recovery had to discard anything (an interrupted
        flush's torn tail or an uncommitted batch -- never a committed
        round)."""
        return self.torn_lines > 0 or self.uncommitted_records > 0


def _install_tables(store: TimeSeriesStore, manifest: Manifest,
                    directory: Path) -> None:
    for name in sorted(manifest.tables):
        entry = manifest.tables[name]
        table = Table(name)
        seen: Set[SeriesKey] = set()
        # newest-wins: walk segments newest-first, first version of each
        # key is authoritative (see compaction.py's ordering invariant)
        collected = []
        for meta in sorted(entry.segments, key=lambda m: m.segment_id,
                           reverse=True):
            for key, series in read_segment(directory, meta):
                if key not in seen:
                    seen.add(key)
                    collected.append((key, series))
        collected.sort(key=lambda kv: (kv[0].measure_name, kv[0].dimensions))
        for key, series in collected:
            table.install_series(key, series)
        if entry.evicted_through is not None:
            table.evict_before(entry.evicted_through)
        table.stats.records_written = entry.records_written
        store.install_table(table, RetentionPolicy(entry.retention))


def _replay_tail(store: TimeSeriesStore, state: RecoveredState,
                 operations: List[dict]) -> None:
    for op in operations:
        kind = op.get("op")
        table_name = op.get("table")
        if kind == "create":
            policy = RetentionPolicy(max_age_seconds=op["retention"])
            store.create_table(table_name, policy)
        elif kind == "write":
            record = Record.make(op["dims"], op["measure"], op["value"],
                                 op["time"])
            store.table(table_name).write(record)
            state.dirty.setdefault(table_name, set()).add(
                SeriesKey.of(record))
        elif kind == "evict":
            table = store.table(table_name)
            # conservative dirty marking: the next checkpoint re-flushes
            # every series of an evicted table
            state.dirty.setdefault(table_name, set()).update(
                table.series_keys())
            table.evict_before(op["cutoff"])
            previous = state.replayed_evictions.get(table_name,
                                                    float("-inf"))
            state.replayed_evictions[table_name] = max(previous,
                                                       op["cutoff"])
        else:
            raise CorruptWalError(f"unknown WAL operation {kind!r}")
        state.replayed_operations += 1


def recover(directory: Path) -> RecoveredState:
    """Reconstruct the store (and engine bookkeeping) from a data dir.

    Safe on a fresh (or not-yet-created) directory (empty store), after
    any crash window (the manifest protocol and WAL torn-tail rules
    guarantee a consistent prefix), and idempotent: recovering twice
    yields identical state.
    """
    directory = Path(directory)
    if not directory.exists():
        return RecoveredState(store=TimeSeriesStore(), manifest=Manifest())
    manifest = load_manifest(directory) or Manifest()
    store = TimeSeriesStore()
    state = RecoveredState(
        store=store, manifest=manifest,
        last_seq=manifest.last_applied_seq,
        rounds_committed=manifest.rounds_committed,
        last_commit_time=manifest.last_commit_time)
    _install_tables(store, manifest, directory)

    replay = read_wal(directory, after_seq=manifest.last_applied_seq)
    _replay_tail(store, state, replay.operations)
    state.last_seq = max(state.last_seq, replay.last_seq)
    state.rounds_committed += replay.rounds
    if replay.commits:
        state.last_commit_time = replay.commits[-1]["time"]
    state.torn_lines = replay.torn_lines
    state.uncommitted_records = replay.uncommitted_records
    state.max_wal_number = replay.max_file_number
    return state
