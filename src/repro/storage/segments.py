"""Immutable sorted segment files and the versioned MANIFEST.

A *segment* is a checkpoint's flush of change-point series: one
JSON-lines file per (table, checkpoint) holding the full state of every
series touched since the previous checkpoint, sorted by series key.
Segments are immutable once published; newer segments shadow older ones
series-by-series (newest wins), which is what lets compaction merge them
without replaying the log.

The ``MANIFEST`` names the live segment set (per table, with retention
configuration and ingestion counters) plus the log horizon
(``last_applied_seq``): everything a cold start needs before replaying
the WAL tail.  It is published via temp file + ``os.replace`` -- readers
see either the old or the new version, never a torn one -- and each
segment carries its SHA-256 in the manifest so recovery detects bit rot
or half-written leftovers from a crashed checkpoint (which are simply
not referenced and therefore invisible).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .._util import atomic_open
from ..timeseries.compression import ChangePointSeries
from ..timeseries.record import SeriesKey
from .wal import NoopCrashHook

MANIFEST_NAME = "MANIFEST"
MANIFEST_FORMAT = 1
SEGMENT_FORMAT = 1


def segment_file_name(segment_id: int, table: str, level: int) -> str:
    return f"seg-{segment_id:08d}-{table}-L{level}.jsonl"


@dataclass(frozen=True)
class SegmentMeta:
    """Manifest entry describing one immutable segment file."""

    file: str
    segment_id: int
    table: str
    level: int
    series: int
    bytes: int
    sha256: str

    def as_dict(self) -> dict:
        return {"file": self.file, "id": self.segment_id, "table": self.table,
                "level": self.level, "series": self.series,
                "bytes": self.bytes, "sha256": self.sha256}

    @classmethod
    def from_dict(cls, raw: dict) -> "SegmentMeta":
        return cls(raw["file"], raw["id"], raw["table"], raw["level"],
                   raw["series"], raw["bytes"], raw["sha256"])


class CorruptSegmentError(ValueError):
    """A manifest-referenced segment failed validation."""


def write_segment(directory: Path, segment_id: int, table: str, level: int,
                  items: Sequence[Tuple[SeriesKey, ChangePointSeries]],
                  ) -> SegmentMeta:
    """Publish one segment file; ``items`` must be sorted by series key."""
    directory = Path(directory)
    name = segment_file_name(segment_id, table, level)
    header = {"format": SEGMENT_FORMAT, "table": table, "level": level,
              "id": segment_id, "series": len(items)}
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for key, series in items:
        lines.append(json.dumps({
            "measure": key.measure_name,
            "dims": dict(key.dimensions),
            "times": series.times,
            "values": series.values,
            "observed_until": series.observed_until,
            "observations": series.observation_count,
        }, sort_keys=True, separators=(",", ":")))
    content = "\n".join(lines) + "\n"
    with atomic_open(directory / name) as fh:
        fh.write(content)
    raw = content.encode("utf-8")
    return SegmentMeta(name, segment_id, table, level, len(items),
                       len(raw), hashlib.sha256(raw).hexdigest())


def read_segment(directory: Path, meta: SegmentMeta, verify: bool = True,
                 ) -> List[Tuple[SeriesKey, ChangePointSeries]]:
    """Load a segment's series, validating checksum and header."""
    path = Path(directory) / meta.file
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CorruptSegmentError(
            f"manifest references missing segment {meta.file}: {exc}") from None
    if verify and hashlib.sha256(raw).hexdigest() != meta.sha256:
        raise CorruptSegmentError(
            f"segment {meta.file} fails its manifest checksum")
    lines = raw.decode("utf-8").splitlines()
    header = json.loads(lines[0])
    if header.get("format") != SEGMENT_FORMAT or \
            header.get("table") != meta.table or \
            header.get("id") != meta.segment_id:
        raise CorruptSegmentError(
            f"segment {meta.file} header does not match its manifest entry")
    items: List[Tuple[SeriesKey, ChangePointSeries]] = []
    for raw_line in lines[1:]:
        line = json.loads(raw_line)
        key = SeriesKey(line["measure"], tuple(sorted(line["dims"].items())))
        items.append((key, ChangePointSeries(
            times=[float(t) for t in line["times"]],
            values=line["values"],
            observed_until=float(line["observed_until"]),
            observation_count=int(line["observations"]),
        )))
    return items


@dataclass
class TableManifest:
    """Per-table durable state: retention, counters, live segments."""

    #: RetentionPolicy.max_age_seconds (None = keep everything)
    retention: Optional[float] = None
    #: Table.stats.records_written as of ``last_applied_seq``
    records_written: int = 0
    #: newest eviction cutoff folded into the segment horizon; recovery
    #: re-applies it so evict ops GC'd from the WAL are never lost
    evicted_through: Optional[float] = None
    #: live segments, oldest first (ascending segment id)
    segments: List[SegmentMeta] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {"retention": self.retention,
                "records_written": self.records_written,
                "evicted_through": self.evicted_through,
                "segments": [m.as_dict() for m in self.segments]}

    @classmethod
    def from_dict(cls, raw: dict) -> "TableManifest":
        return cls(raw["retention"], raw["records_written"],
                   raw["evicted_through"],
                   [SegmentMeta.from_dict(m) for m in raw["segments"]])


@dataclass
class Manifest:
    """The storage engine's atomically-published root of trust."""

    version: int = 0
    #: WAL records with seq <= this are folded into the segment set
    last_applied_seq: int = 0
    rounds_committed: int = 0
    last_commit_time: Optional[float] = None
    next_segment_id: int = 1
    next_wal_number: int = 1
    tables: Dict[str, TableManifest] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "version": self.version,
            "last_applied_seq": self.last_applied_seq,
            "rounds_committed": self.rounds_committed,
            "last_commit_time": self.last_commit_time,
            "next_segment_id": self.next_segment_id,
            "next_wal_number": self.next_wal_number,
            "tables": {name: t.as_dict()
                       for name, t in sorted(self.tables.items())},
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Manifest":
        if raw.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"unsupported manifest format {raw.get('format')!r}")
        return cls(raw["version"], raw["last_applied_seq"],
                   raw["rounds_committed"], raw["last_commit_time"],
                   raw["next_segment_id"], raw["next_wal_number"],
                   {name: TableManifest.from_dict(t)
                    for name, t in raw["tables"].items()})

    def live_files(self) -> List[str]:
        """Every segment file the manifest references."""
        return [meta.file for name in sorted(self.tables)
                for meta in self.tables[name].segments]

    def live_bytes(self) -> int:
        return sum(meta.bytes for name in sorted(self.tables)
                   for meta in self.tables[name].segments)


def load_manifest(directory: Path) -> Optional[Manifest]:
    """The published manifest, or None for a fresh data directory."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    return Manifest.from_dict(json.loads(path.read_text(encoding="utf-8")))


def store_manifest(directory: Path, manifest: Manifest,
                   crash_hook: Optional[NoopCrashHook] = None) -> None:
    """Atomically publish a new manifest version.

    Crash windows: ``checkpoint.manifest`` fires before the ``os.replace``
    (the new version is invisible; recovery uses the previous one) and
    ``checkpoint.publish`` fires just after (the new version is live but
    WAL/segment garbage collection has not run; recovery tolerates the
    stale files).
    """
    hook = crash_hook or NoopCrashHook()
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    body = json.dumps(manifest.as_dict(), sort_keys=True, indent=1) + "\n"
    with tmp.open("w", encoding="utf-8") as fh:
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())
    hook.before("checkpoint.manifest")
    os.replace(tmp, path)
    hook.before("checkpoint.publish")
