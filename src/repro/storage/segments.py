"""Immutable sorted segment files and the versioned MANIFEST.

A *segment* is a checkpoint's flush of change-point series: one file per
(table, checkpoint) holding the full state of every series touched since
the previous checkpoint, sorted by series key.  Segments are immutable
once published; newer segments shadow older ones series-by-series
(newest wins), which is what lets compaction merge them without
replaying the log.

Two segment body formats exist behind one read API:

* **v1** -- JSON-lines (``.jsonl``): a JSON header line followed by one
  JSON object per series.  Still fully readable; no longer written.
* **v2** -- binary columnar (``.seg``): dictionary-encoded dimensions
  and values, delta-packed timestamps, per-chunk zone maps for
  time-range predicate pushdown, optionally mmap-backed so scans decode
  only the blocks overlapping the query window (see
  :mod:`repro.storage.columnar`).

``SEGMENT_FORMAT`` names the *write* format; readers accept every format
in ``SUPPORTED_SEGMENT_FORMATS`` and compaction migrates old segments
forward in place, so a data directory may legally hold a mix while an
upgrade is in flight.

The ``MANIFEST`` names the live segment set (per table, with retention
configuration and ingestion counters) plus the log horizon
(``last_applied_seq``): everything a cold start needs before replaying
the WAL tail.  It is published via temp file + ``os.replace`` followed
by a *directory fsync* -- readers see either the old or the new version,
never a torn one, and the publish itself survives power loss -- and each
segment carries its SHA-256 in the manifest so recovery detects bit rot
or half-written leftovers from a crashed checkpoint (which are simply
not referenced and therefore invisible).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .._util import atomic_open, fsync_directory
from ..timeseries.compression import ChangePointSeries
from ..timeseries.record import SeriesKey, Value
from .columnar import ColumnarFormatError, SegmentCursor, encode_segment
from .wal import NoopCrashHook

MANIFEST_NAME = "MANIFEST"
MANIFEST_FORMAT = 1

#: The format new segments are written in.
SEGMENT_FORMAT = 2
#: Every format the reader (and therefore recovery) accepts.
SUPPORTED_SEGMENT_FORMATS = (1, 2)

#: body-format -> file extension (v1 kept its historical name)
_SEGMENT_EXTENSIONS = {1: "jsonl", 2: "seg"}
SEGMENT_EXTENSIONS = tuple(_SEGMENT_EXTENSIONS.values())

#: Characters embedded verbatim in segment file names; everything else
#: is percent-escaped.  Deliberately excludes ``-`` (the file-name field
#: separator), ``/`` and ``%`` (the escape char itself).
_SAFE_TABLE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.")

#: Module default write format; tests and the mixed-format durability
#: harness override it via :func:`forced_segment_format`.
_write_format = [SEGMENT_FORMAT]


@contextmanager
def forced_segment_format(fmt: int) -> Iterator[None]:
    """Temporarily force the default segment write format.

    Exists for the upgrade-path tests and benchmarks: a directory
    seeded under ``forced_segment_format(1)`` behaves exactly like one
    written by a pre-columnar build, so mixed-format recovery and the
    in-place migration can be exercised without checked-in fixtures.
    """
    if fmt not in SUPPORTED_SEGMENT_FORMATS:
        raise ValueError(f"unsupported segment format {fmt!r}")
    _write_format.append(fmt)
    try:
        yield
    finally:
        _write_format.pop()


def current_write_format() -> int:
    """The segment format new segment files are being written in."""
    return _write_format[-1]


def sanitize_table_component(table: str) -> str:
    """Escape a table name for embedding in a segment file name.

    Table names are user-supplied and may contain path separators or the
    codec's own field separator (a table literally named ``a-L1`` must
    not produce a name that reads as table ``a`` at level 1).  Characters
    outside ``[A-Za-z0-9_.]`` are percent-escaped; the mapping is
    injective, so two distinct tables can never collide on disk.
    """
    if all(c in _SAFE_TABLE_CHARS for c in table):
        return table
    return "".join(c if c in _SAFE_TABLE_CHARS
                   else "".join(f"%{b:02x}" for b in c.encode("utf-8"))
                   for c in table)


def segment_file_name(segment_id: int, table: str, level: int,
                      fmt: Optional[int] = None) -> str:
    if fmt is None:
        fmt = _write_format[-1]
    ext = _SEGMENT_EXTENSIONS[fmt]
    return (f"seg-{segment_id:08d}-{sanitize_table_component(table)}"
            f"-L{level}.{ext}")


def is_segment_file_name(name: str) -> bool:
    """True for any (live or orphaned) segment file of either format."""
    return name.startswith("seg-") and \
        name.rsplit(".", 1)[-1] in SEGMENT_EXTENSIONS


@dataclass(frozen=True)
class SegmentMeta:
    """Manifest entry describing one immutable segment file."""

    file: str
    segment_id: int
    table: str
    level: int
    series: int
    bytes: int
    sha256: str
    #: body format of the file; manifests written before the columnar
    #: codec lack the key and deserialize as v1
    format: int = SEGMENT_FORMAT

    def as_dict(self) -> dict:
        return {"file": self.file, "id": self.segment_id, "table": self.table,
                "level": self.level, "series": self.series,
                "bytes": self.bytes, "sha256": self.sha256,
                "format": self.format}

    @classmethod
    def from_dict(cls, raw: dict) -> "SegmentMeta":
        return cls(raw["file"], raw["id"], raw["table"], raw["level"],
                   raw["series"], raw["bytes"], raw["sha256"],
                   raw.get("format", 1))


class CorruptSegmentError(ValueError):
    """A manifest-referenced segment failed validation."""


def write_segment(directory: Path, segment_id: int, table: str, level: int,
                  items: Sequence[Tuple[SeriesKey, ChangePointSeries]],
                  fmt: Optional[int] = None) -> SegmentMeta:
    """Publish one segment file; ``items`` must be sorted by series key.

    ``fmt`` selects the body codec (default: the current write format,
    normally ``SEGMENT_FORMAT``).  Either way the file is published
    atomically with a directory fsync, and the returned meta carries the
    SHA-256 over the exact bytes on disk.
    """
    directory = Path(directory)
    if fmt is None:
        fmt = _write_format[-1]
    name = segment_file_name(segment_id, table, level, fmt)
    if fmt == 1:
        header = {"format": 1, "table": table, "level": level,
                  "id": segment_id, "series": len(items)}
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for key, series in items:
            lines.append(json.dumps({
                "measure": key.measure_name,
                "dims": dict(key.dimensions),
                "times": series.times,
                "values": series.values,
                "observed_until": series.observed_until,
                "observations": series.observation_count,
            }, sort_keys=True, separators=(",", ":")))
        raw = ("\n".join(lines) + "\n").encode("utf-8")
    elif fmt == 2:
        raw = encode_segment(table, segment_id, level, items)
    else:
        raise ValueError(f"unsupported segment format {fmt!r}")
    with atomic_open(directory / name, binary=True,
                     sync_directory=True) as fh:
        fh.write(raw)
    return SegmentMeta(name, segment_id, table, level, len(items),
                       len(raw), hashlib.sha256(raw).hexdigest(), fmt)


def _segment_bytes(directory: Path, meta: SegmentMeta,
                   verify: bool) -> bytes:
    path = Path(directory) / meta.file
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CorruptSegmentError(
            f"manifest references missing segment {meta.file}: {exc}") from None
    if verify and hashlib.sha256(raw).hexdigest() != meta.sha256:
        raise CorruptSegmentError(
            f"segment {meta.file} fails its manifest checksum")
    return raw


def _check_header(meta: SegmentMeta, header: dict) -> None:
    if header.get("format") != meta.format or \
            header.get("table") != meta.table or \
            header.get("id") != meta.segment_id:
        raise CorruptSegmentError(
            f"segment {meta.file} header does not match its manifest entry")


def _decode_v1(meta: SegmentMeta,
               raw: bytes) -> List[Tuple[SeriesKey, ChangePointSeries]]:
    try:
        lines = raw.decode("utf-8").splitlines()
        header = json.loads(lines[0])
        _check_header(meta, header)
        items: List[Tuple[SeriesKey, ChangePointSeries]] = []
        for raw_line in lines[1:]:
            line = json.loads(raw_line)
            key = SeriesKey(line["measure"],
                            tuple(sorted(line["dims"].items())))
            items.append((key, ChangePointSeries(
                times=[float(t) for t in line["times"]],
                values=line["values"],
                observed_until=float(line["observed_until"]),
                observation_count=int(line["observations"]),
            )))
        return items
    except CorruptSegmentError:
        raise
    except (IndexError, KeyError, TypeError, ValueError,
            UnicodeDecodeError) as exc:
        # json.JSONDecodeError is a ValueError; an empty or truncated
        # file must surface as segment corruption, never as a raw
        # decoder exception recovery's corruption path cannot route
        raise CorruptSegmentError(
            f"segment {meta.file} body is undecodable: {exc}") from None


def read_segment(directory: Path, meta: SegmentMeta, verify: bool = True,
                 ) -> List[Tuple[SeriesKey, ChangePointSeries]]:
    """Load a segment's series, validating checksum and header.

    Dispatches on the manifest's recorded body format; every decode
    failure -- wrong magic, truncated body, malformed JSON, bad column
    bytes -- raises :class:`CorruptSegmentError` so recovery handles all
    corruption uniformly.
    """
    if meta.format not in SUPPORTED_SEGMENT_FORMATS:
        raise CorruptSegmentError(
            f"segment {meta.file} has unsupported format {meta.format!r}")
    raw = _segment_bytes(directory, meta, verify)
    if meta.format == 1:
        return _decode_v1(meta, raw)
    try:
        cursor = SegmentCursor(raw)
        _check_header(meta, cursor.header)
        return cursor.items()
    except CorruptSegmentError:
        raise
    except ColumnarFormatError as exc:
        raise CorruptSegmentError(
            f"segment {meta.file} body is undecodable: {exc}") from None


def scan_segment(directory: Path, meta: SegmentMeta,
                 start: float = float("-inf"), end: float = float("inf"),
                 verify: bool = False, use_mmap: bool = True,
                 ) -> List[Tuple[SeriesKey, List[Tuple[float, Value]]]]:
    """Change points inside ``[start, end]``, per series.

    The time-range read path.  For v2 segments the chunk zone maps prune
    the decode to the blocks overlapping the window, and with
    ``use_mmap`` (the default) the skipped blocks are never paged in --
    which is why ``verify`` defaults off here: checksumming would force
    a full read.  v1 segments have no zone maps; they are fully parsed
    and filtered per series (bisect on the sorted times).
    """
    if meta.format not in SUPPORTED_SEGMENT_FORMATS:
        raise CorruptSegmentError(
            f"segment {meta.file} has unsupported format {meta.format!r}")
    if meta.format == 1:
        out = []
        for key, series in read_segment(directory, meta, verify=verify):
            rows = series.change_points(start, end)
            if rows:
                out.append((key, rows))
        return out
    path = Path(directory) / meta.file
    try:
        with path.open("rb") as fh:
            if verify or not use_mmap:
                raw = fh.read()
                if verify and \
                        hashlib.sha256(raw).hexdigest() != meta.sha256:
                    raise CorruptSegmentError(
                        f"segment {meta.file} fails its manifest checksum")
                cursor = SegmentCursor(raw)
                _check_header(meta, cursor.header)
                return cursor.scan(start, end)
            with mmap.mmap(fh.fileno(), 0,
                           access=mmap.ACCESS_READ) as buffer:
                # the cursor's memoryviews must be released before the
                # mmap closes, even when header validation raises
                with SegmentCursor(buffer) as cursor:
                    _check_header(meta, cursor.header)
                    return cursor.scan(start, end)
    except OSError as exc:
        raise CorruptSegmentError(
            f"manifest references missing segment {meta.file}: {exc}") from None
    except CorruptSegmentError:
        raise
    except ColumnarFormatError as exc:
        raise CorruptSegmentError(
            f"segment {meta.file} body is undecodable: {exc}") from None


@dataclass
class TableManifest:
    """Per-table durable state: retention, counters, live segments."""

    #: RetentionPolicy.max_age_seconds (None = keep everything)
    retention: Optional[float] = None
    #: Table.stats.records_written as of ``last_applied_seq``
    records_written: int = 0
    #: newest eviction cutoff folded into the segment horizon; recovery
    #: re-applies it so evict ops GC'd from the WAL are never lost
    evicted_through: Optional[float] = None
    #: live segments, oldest first (ascending segment id)
    segments: List[SegmentMeta] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {"retention": self.retention,
                "records_written": self.records_written,
                "evicted_through": self.evicted_through,
                "segments": [m.as_dict() for m in self.segments]}

    @classmethod
    def from_dict(cls, raw: dict) -> "TableManifest":
        return cls(raw["retention"], raw["records_written"],
                   raw["evicted_through"],
                   [SegmentMeta.from_dict(m) for m in raw["segments"]])


@dataclass
class Manifest:
    """The storage engine's atomically-published root of trust."""

    version: int = 0
    #: WAL records with seq <= this are folded into the segment set
    last_applied_seq: int = 0
    rounds_committed: int = 0
    last_commit_time: Optional[float] = None
    next_segment_id: int = 1
    next_wal_number: int = 1
    tables: Dict[str, TableManifest] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "version": self.version,
            "last_applied_seq": self.last_applied_seq,
            "rounds_committed": self.rounds_committed,
            "last_commit_time": self.last_commit_time,
            "next_segment_id": self.next_segment_id,
            "next_wal_number": self.next_wal_number,
            "tables": {name: t.as_dict()
                       for name, t in sorted(self.tables.items())},
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Manifest":
        if raw.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"unsupported manifest format {raw.get('format')!r}")
        return cls(raw["version"], raw["last_applied_seq"],
                   raw["rounds_committed"], raw["last_commit_time"],
                   raw["next_segment_id"], raw["next_wal_number"],
                   {name: TableManifest.from_dict(t)
                    for name, t in raw["tables"].items()})

    def live_files(self) -> List[str]:
        """Every segment file the manifest references."""
        return [meta.file for name in sorted(self.tables)
                for meta in self.tables[name].segments]

    def live_bytes(self) -> int:
        return sum(meta.bytes for name in sorted(self.tables)
                   for meta in self.tables[name].segments)

    def format_census(self) -> Dict[int, int]:
        """Live segment count per body format (migration progress)."""
        census: Dict[int, int] = {}
        for name in sorted(self.tables):
            for meta in self.tables[name].segments:
                census[meta.format] = census.get(meta.format, 0) + 1
        return census


def load_manifest(directory: Path) -> Optional[Manifest]:
    """The published manifest, or None for a fresh data directory."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    return Manifest.from_dict(json.loads(path.read_text(encoding="utf-8")))


def store_manifest(directory: Path, manifest: Manifest,
                   crash_hook: Optional[NoopCrashHook] = None) -> None:
    """Atomically publish a new manifest version.

    The temp file is fsynced, renamed over ``MANIFEST``, and then the
    *directory* is fsynced: without that last step the rename lives only
    in the in-memory directory cache and a power loss just after publish
    could resurrect the previous manifest version.

    Crash windows: ``checkpoint.manifest`` fires before the ``os.replace``
    (the new version is invisible; recovery uses the previous one) and
    ``checkpoint.publish`` fires once the rename is durable (the new
    version is live but WAL/segment garbage collection has not run;
    recovery tolerates the stale files).
    """
    hook = crash_hook or NoopCrashHook()
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    body = json.dumps(manifest.as_dict(), sort_keys=True, indent=1) + "\n"
    with tmp.open("w", encoding="utf-8") as fh:
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())
    hook.before("checkpoint.manifest")
    os.replace(tmp, path)
    fsync_directory(directory)
    hook.before("checkpoint.publish")
