"""Segmented append-only write-ahead log with per-record checksums.

Every archive mutation (table create, record write, retention eviction)
is serialized as one JSON-lines record carrying a monotonically
increasing sequence number and a CRC32 over the payload bytes:

    ``<crc32 hex8> <canonical-json payload>\\n``

Records are *group-committed*: appends buffer in memory and a
:meth:`WalWriter.commit` flushes the whole batch -- terminated by a
``commit`` marker record -- in a single write.  Replay applies a batch
only when its commit marker is present and checksums, which makes the
collection round the unit of crash atomicity: a crash mid-flush (a torn
tail) rolls the archive back to the previous committed round, never to a
half-written one.

Torn-tail tolerance is strict: invalid bytes are forgiven only at the
very tail of the newest log segment (the one place a crashed flush can
leave them).  A bad checksum or sequence gap *followed by valid records*
is real corruption and raises :class:`CorruptWalError`.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: WAL file naming: ``wal-<number 8 digits>.log``.
WAL_PREFIX = "wal-"
WAL_SUFFIX = ".log"

#: Roll to a new log segment once the active one exceeds this many bytes.
DEFAULT_SEGMENT_BYTES = 1 << 20


class CorruptWalError(ValueError):
    """The log is damaged somewhere other than its torn-write tail."""


def wal_file_name(number: int) -> str:
    return f"{WAL_PREFIX}{number:08d}{WAL_SUFFIX}"


def wal_file_number(name: str) -> Optional[int]:
    """The segment number encoded in a WAL file name (None if not one)."""
    if not (name.startswith(WAL_PREFIX) and name.endswith(WAL_SUFFIX)):
        return None
    digits = name[len(WAL_PREFIX):-len(WAL_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_wal_files(directory: Path) -> List[Tuple[int, Path]]:
    """(number, path) of every WAL segment, in log order."""
    found = []
    for entry in sorted(os.listdir(directory)):
        number = wal_file_number(entry)
        if number is not None:
            found.append((number, directory / entry))
    found.sort(key=lambda pair: pair[0])
    return found


#: Shared canonical encoder (sorted keys, no whitespace, finite numbers);
#: reused across calls to skip per-call encoder construction.
_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"),
                            allow_nan=False)


def encode_record(seq: int, payload: dict) -> bytes:
    """One WAL line: crc-protected canonical JSON with the sequence number."""
    raw = _ENCODER.encode({"seq": seq, **payload}).encode("utf-8")
    return b"%08x " % zlib.crc32(raw) + raw + b"\n"


def decode_line(line: bytes) -> Optional[dict]:
    """Decode one WAL line; None when the bytes fail validation."""
    if not line.endswith(b"\n"):
        return None  # partial final write: no terminator
    body = line[:-1]
    if len(body) < 10 or body[8:9] != b" ":
        return None
    crc_hex, raw = body[:8], body[9:]
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(raw) != expected:
        return None
    try:
        record = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(record, dict) or "seq" not in record:
        return None
    return record


class NoopCrashHook:
    """Default crash hook: never crashes, never tears a write."""

    def before(self, window: str) -> None:
        """Called at a named crash window; may raise to abort the process."""

    def torn_write(self, window: str, size: int) -> Optional[int]:
        """Bytes of an in-flight flush to persist; None = write all."""
        return None

    def crash(self, window: str) -> None:
        """Abort after a torn write was persisted; must raise."""
        raise RuntimeError(f"crash hook armed a torn write at {window!r} "
                           "but declined to crash")


class WalWriter:
    """Group-committing appender over the segmented log.

    ``append`` only buffers; ``commit`` makes the batch durable (flush +
    optional fsync) behind the crash hook's ``wal.flush`` (torn write)
    and ``wal.commit`` (post-durability) windows.
    """

    def __init__(self, directory: Path, number: int = 1, next_seq: int = 1,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 fsync: bool = False, crash_hook: Optional[NoopCrashHook] = None):
        self.directory = Path(directory)
        self.number = number
        self.next_seq = next_seq
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self.crash_hook = crash_hook or NoopCrashHook()
        self.bytes_written = 0
        self.records_written = 0
        self._buffer: List[bytes] = []
        self._fh = open(self.directory / wal_file_name(number), "ab")

    @property
    def pending(self) -> int:
        """Buffered (not yet committed) records."""
        return len(self._buffer)

    def append(self, payload: dict) -> int:
        """Buffer one record; returns its assigned sequence number."""
        seq = self.next_seq
        self.next_seq += 1
        self._buffer.append(encode_record(seq, payload))
        return seq

    def append_template(self, prefix: str, suffix: str) -> int:
        """Buffer one pre-encoded record, splicing in the sequence number.

        ``prefix`` must end just after a ``"seq":`` key and ``suffix``
        supply the rest of the canonical JSON body; the caller guarantees
        ``prefix + str(seq) + suffix`` is exactly what :func:`encode_record`
        would have produced.  This is the ingest hot path: per-series
        templates skip re-encoding the invariant dims/measure/table text
        for every record (see ``StorageEngine.log_record``).
        """
        seq = self.next_seq
        self.next_seq += 1
        raw = f"{prefix}{seq}{suffix}".encode("utf-8")
        self._buffer.append(b"%08x " % zlib.crc32(raw) + raw + b"\n")
        return seq

    def append_template_many(self, parts: List[Tuple[str, str]]) -> int:
        """Buffer a run of pre-encoded records; returns the last seq used.

        The bulk form of :meth:`append_template`: sequence numbers are
        assigned in list order and every line is byte-identical to what N
        single appends would have buffered.  One call per ingest batch
        replaces N Python-level method dispatches -- the batched-ingest
        path's hottest win.
        """
        seq = self.next_seq
        buffer_append = self._buffer.append
        crc32 = zlib.crc32
        for prefix, suffix in parts:
            raw = f"{prefix}{seq}{suffix}".encode("utf-8")
            buffer_append(b"%08x " % crc32(raw) + raw + b"\n")
            seq += 1
        self.next_seq = seq
        return seq - 1

    def _make_durable(self, data: bytes) -> None:
        hook = self.crash_hook
        torn = hook.torn_write("wal.flush", len(data))
        if torn is not None:
            self._fh.write(data[:max(0, min(torn, len(data)))])
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            hook.crash("wal.flush")
        self._fh.write(data)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def commit(self, round_index: int, time: float) -> int:
        """Durably flush the buffered batch under one commit marker.

        Returns the commit marker's sequence number.  On a crash-hook
        abort the buffer is preserved in memory (the process is assumed
        dead; tests inspect it) and whatever prefix reached the file is
        exactly what replay will discard.
        """
        marker_seq = self.append({"op": "commit", "round": round_index,
                                  "time": time})
        data = b"".join(self._buffer)
        self._make_durable(data)
        self.crash_hook.before("wal.commit")
        self.bytes_written += len(data)
        self.records_written += len(self._buffer)
        self._buffer = []
        if self._fh.tell() >= self.segment_bytes:
            self.roll()
        return marker_seq

    def roll(self) -> int:
        """Close the active segment and open the next-numbered one."""
        self._fh.close()
        self.number += 1
        self._fh = open(self.directory / wal_file_name(self.number), "ab")
        return self.number

    def close(self) -> None:
        self._fh.close()


@dataclass
class WalReplay:
    """Committed operations recovered from the log, plus loss accounting."""

    #: committed non-marker operations in sequence order
    operations: List[dict] = field(default_factory=list)
    #: committed round markers in sequence order
    commits: List[dict] = field(default_factory=list)
    #: sequence number of the last committed record (``after_seq`` if none)
    last_seq: int = 0
    #: torn/invalid trailing lines discarded from the newest segment
    torn_lines: int = 0
    #: well-formed records discarded for lacking a commit marker
    uncommitted_records: int = 0
    #: highest WAL file number present (0 when the log is empty)
    max_file_number: int = 0

    @property
    def rounds(self) -> int:
        return len(self.commits)


def read_wal(directory: Path, after_seq: int = 0) -> WalReplay:
    """Replay the log, returning only batch-atomic committed operations.

    Records with ``seq <= after_seq`` (already folded into segments by a
    checkpoint) are skipped.  Sequence numbers must increase by exactly
    one between consecutive surviving records; any gap, and any invalid
    line that is *not* at the very tail of the newest segment, raises
    :class:`CorruptWalError`.
    """
    directory = Path(directory)
    replay = WalReplay(last_seq=after_seq)
    files = list_wal_files(directory)
    if not files:
        return replay
    replay.max_file_number = files[-1][0]

    lines: List[Tuple[Path, int, bytes]] = []
    for _, path in files:
        with path.open("rb") as fh:
            for lineno, raw in enumerate(fh.read().splitlines(keepends=True), 1):
                lines.append((path, lineno, raw))

    records: List[dict] = []
    for index, (path, lineno, raw) in enumerate(lines):
        record = decode_line(raw)
        if record is None:
            remaining = lines[index:]
            if any(decode_line(r) is not None for _, _, r in remaining[1:]):
                raise CorruptWalError(
                    f"invalid WAL record at {path.name}:{lineno} followed "
                    "by valid records: log corrupted beyond the torn tail")
            replay.torn_lines = len(remaining)
            break
        records.append(record)

    previous_seq: Optional[int] = None
    pending: List[dict] = []
    for record in records:
        seq = record["seq"]
        if previous_seq is not None and seq != previous_seq + 1:
            raise CorruptWalError(
                f"sequence gap in WAL: {previous_seq} -> {seq}")
        previous_seq = seq
        if seq <= after_seq:
            continue
        if record.get("op") == "commit":
            replay.operations.extend(pending)
            replay.commits.append(record)
            replay.last_seq = seq
            pending = []
        else:
            pending.append(record)
    replay.uncommitted_records = len(pending)
    return replay
