"""Embedded time-series store (Amazon Timestream stand-in).

Dimensioned records, change-point (dedup) compression, filtered range
queries, resampling, aggregation, and retention sweeps.
"""

from .cache import CacheStats, QueryCache
from .compression import ChangePointSeries, values_equal
from .query import QuerySpec, group_aggregate, resample_matrix, run_query, update_intervals
from .record import DimensionKey, Record, SeriesKey, Value, dimension_key
from .persistence import (
    dump_store,
    dump_table,
    load_store,
    load_table,
    load_table_with_policy,
)
from .store import RetentionPolicy, TimeSeriesStore
from .table import Table, TableStats
from .vector import (
    AGGREGATES,
    AggResult,
    AggSpec,
    Partials,
    TierColumns,
    bucket_edges,
    compute_partials,
    finish_aggregates,
    merge_partials,
)

__all__ = [
    "CacheStats", "QueryCache",
    "ChangePointSeries", "values_equal",
    "QuerySpec", "group_aggregate", "resample_matrix", "run_query", "update_intervals",
    "DimensionKey", "Record", "SeriesKey", "Value", "dimension_key",
    "RetentionPolicy", "TimeSeriesStore",
    "dump_store", "dump_table", "load_store", "load_table",
    "load_table_with_policy",
    "Table", "TableStats",
    "AGGREGATES", "AggResult", "AggSpec", "Partials", "TierColumns",
    "bucket_edges", "compute_partials", "finish_aggregates",
    "merge_partials",
]
