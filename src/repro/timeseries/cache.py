"""Generation-stamped read cache over one :class:`~.table.Table`.

The serving layer answers the same dashboard-style queries over and over
(the paper's API Gateway -> Lambda -> Timestream path; see DESIGN.md,
"Serving & caching").  An uncached ``Table.scan`` re-walks and re-sorts
every matching series per request; this cache memoizes ``scan`` /
``latest`` / ``value_at`` results keyed by *(query spec, generation
stamp)* so a repeated query is an O(1) dict probe until an overlapping
write lands.

Invalidation rule (the generation-stamp contract):

* every query-visible table mutation (change-point write, eviction) bumps
  the table's ``generation`` and stamps it onto the touched series, its
  measure, and each of its dimension items;
* a query's stamp is the *minimum* over its constraint generations
  (measure + each filter item; the table-wide generation when
  unconstrained).  A write overlapping the query bumps **all** of its
  constraints past the old minimum, so the stamp moves and the entry is
  recomputed.  Non-overlapping writes may bump a subset -- at worst a
  spurious recompute, never a stale answer.

Cached results are shared between callers: treat them as immutable.

Thread-safety (ROADMAP item 1): the cache serializes on its table's
reentrant :attr:`~repro.timeseries.table.Table.lock` -- the same lock
every table mutator takes -- so a (generation stamp, result) pair is
always read atomically with respect to writes, and a cold entry is
computed exactly once even when N serving workers race on it (the first
holder renders, the rest hit).  The lock must be reentrant because a
``derived`` computation re-enters ``scan`` while rendering rows.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from .record import Record, SeriesKey, Value, dimension_key
from .table import Table

#: Default per-table entry bound (LRU beyond it).
DEFAULT_MAX_ENTRIES = 1024


@dataclass
class CacheStats:
    """Hit/miss accounting for one table's query cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


def _filters_key(filters: Optional[Dict[str, str]]) -> Tuple[Tuple[str, str], ...]:
    """Canonical hashable form of a filters mapping."""
    if not filters:
        return ()
    return tuple(sorted(filters.items()))


class QueryCache:
    """Memoizes table reads, invalidated by the generation-stamp rule."""

    def __init__(self, table: Table, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.table = table
        self.max_entries = max_entries
        # key -> (stamp, value); ordered for LRU eviction
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self.table.lock:
            return len(self._entries)

    # -- core memoization ------------------------------------------------------

    def memo(self, key: Hashable, stamp: int,
             compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key`` at ``stamp``, computing on
        miss.  A stamp mismatch counts as an invalidation + miss.

        Runs entirely under the table lock: the computed value is
        guaranteed to describe the table state the stamp was taken from
        (no write can land in between), and concurrent workers missing on
        the same cold key serialize into one compute + N-1 hits.
        """
        with self.table.lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry[0] == stamp:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return entry[1]
                self.stats.invalidations += 1
            self.stats.misses += 1
            value = compute()
            self._entries[key] = (stamp, value)
            self._entries.move_to_end(key)
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return value

    def clear(self) -> None:
        with self.table.lock:
            self._entries.clear()

    # -- cached table reads ----------------------------------------------------

    def scan(self, measure_name: Optional[str] = None,
             filters: Optional[Dict[str, str]] = None,
             start: float = float("-inf"),
             end: float = float("inf")) -> List[Record]:
        """Cached :meth:`Table.scan`."""
        with self.table.lock:
            stamp = self.table.generation_stamp(measure_name, filters)
            key = ("scan", measure_name, _filters_key(filters), start, end)
            return self.memo(key, stamp,
                             lambda: self.table.scan(measure_name, filters,
                                                     start, end))

    def latest(self, measure_name: str,
               filters: Optional[Dict[str, str]] = None) -> List[Record]:
        """Cached :meth:`Table.latest`."""
        with self.table.lock:
            stamp = self.table.generation_stamp(measure_name, filters)
            key = ("latest", measure_name, _filters_key(filters))
            return self.memo(key, stamp,
                             lambda: self.table.latest(measure_name, filters))

    def value_at(self, measure_name: str, dimensions: Dict[str, str],
                 time: float) -> Optional[Value]:
        """Cached :meth:`Table.value_at` (exact per-series stamp)."""
        with self.table.lock:
            series_key = SeriesKey(measure_name, dimension_key(dimensions))
            stamp = self.table.series_generation(series_key)
            key = ("value_at", series_key, time)
            return self.memo(key, stamp,
                             lambda: self.table.value_at(measure_name,
                                                         dimensions, time))

    def derived(self, tag: str, measure_name: Optional[str],
                filters: Optional[Dict[str, str]],
                extra: Tuple[Hashable, ...],
                compute: Callable[[], Any]) -> Any:
        """Memoize a value *derived* from one (measure, filters) slice.

        The serving layer uses this to keep rendered response rows hot
        under the same invalidation rule as the records they came from.
        """
        with self.table.lock:
            stamp = self.table.generation_stamp(measure_name, filters)
            key = (tag, measure_name, _filters_key(filters)) + tuple(extra)
            return self.memo(key, stamp, compute)
