"""Change-point (dedup) compression for step-valued series.

SpotLake's datasets are step functions: the placement score, the advisor
bucket and the spot price hold their value for long stretches.  Storing one
row per collection round wastes space and hides the update events the
paper's Figure 10 analyses.  The codec therefore stores only *changes*
(plus the first observation), and can reconstruct the value at any observed
instant or the full step series.

Besides the in-memory series this module provides the *columnar* primitives
the binary segment format (``repro.storage.columnar``) is built from:
self-describing packed time columns (delta-encoded against the first
timestamp when that round-trips exactly, raw float64 otherwise) and packed
numeric/index value columns.  They live here rather than in ``storage``
because they are properties of the series representation itself, not of
any particular file layout.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .record import Value


def values_equal(a: Value, b: Value) -> bool:
    """Type-and-NaN-aware equality for change-point deduplication.

    Plain ``==`` is wrong on both edges the archive actually hits:
    ``float("nan") != float("nan")`` turns every repeated-NaN observation
    into a fresh change point, and ``True == 1 == 1.0`` collapses values
    that serialize (and therefore recover) differently.  Two values are
    dedup-equal only when they have the *same concrete type* and are
    either ``==`` or both NaN.
    """
    if type(a) is not type(b):
        return False
    if a != a:  # NaN never equals itself; type already matched
        return b != b
    return a == b


@dataclass
class ChangePointSeries:
    """A compressed step-valued series.

    Appends must be in non-decreasing time order.  ``observed_until`` tracks
    the last time a value was *observed* (even if unchanged), so the series
    distinguishes "no data yet" from "unchanged since".
    """

    times: List[float] = field(default_factory=list)
    values: List[Value] = field(default_factory=list)
    observed_until: float = float("-inf")
    observation_count: int = 0

    def append(self, time: float, value: Value) -> bool:
        """Record an observation; returns True when it was a change point."""
        if time < self.observed_until:
            raise ValueError(
                f"out-of-order append: {time} < {self.observed_until}")
        self.observed_until = time
        self.observation_count += 1
        if self.values and values_equal(self.values[-1], value):
            return False
        self.times.append(time)
        self.values.append(value)
        return True

    def __len__(self) -> int:
        return len(self.times)

    @property
    def is_empty(self) -> bool:
        return not self.times

    def value_at(self, time: float) -> Optional[Value]:
        """Value in force at ``time`` (None before the first observation)."""
        idx = bisect_right(self.times, time)
        if idx == 0:
            return None
        return self.values[idx - 1]

    def change_points(self, start: float = float("-inf"),
                      end: float = float("inf")) -> List[Tuple[float, Value]]:
        """Change events inside [start, end].

        ``times`` is sorted, so the window is located with two bisects
        instead of a linear scan over the full series -- O(log n + k) for
        k events in range, which is what keeps narrow-window queries on
        long archival series cheap.
        """
        lo = bisect_left(self.times, start)
        hi = bisect_right(self.times, end, lo)
        return list(zip(self.times[lo:hi], self.values[lo:hi]))

    def update_intervals(self) -> List[float]:
        """Elapsed seconds between consecutive change points (Figure 10)."""
        return [b - a for a, b in zip(self.times, self.times[1:])]

    def resample(self, sample_times: Sequence[float]) -> List[Optional[Value]]:
        """Step-function values at each of the given instants."""
        return [self.value_at(t) for t in sample_times]

    def compression_ratio(self) -> float:
        """Observations stored per observation ingested (lower is better)."""
        if self.observation_count == 0:
            return 1.0
        return len(self.times) / self.observation_count


# -- columnar packing ------------------------------------------------------
#
# Every packed column is a self-describing blob: one ASCII tag byte, then
# raw little-endian data.  Blobs round-trip exactly (bit-for-bit for
# floats, type-preserving for ints) -- the storage layer's byte-identity
# contract depends on it.

#: tag -> (numpy dtype, delta flag) for packed time columns
_TIME_TAGS = {
    b"F": ("<f8", False),   # raw float64 timestamps
    b"1": ("<i1", True),    # float64 first + int8 deltas
    b"2": ("<i2", True),
    b"4": ("<i4", True),
    b"8": ("<i8", True),
}

_DELTA_WIDTHS = (
    (b"1", np.iinfo(np.int8)),
    (b"2", np.iinfo(np.int16)),
    (b"4", np.iinfo(np.int32)),
    (b"8", np.iinfo(np.int64)),
)


def pack_time_column(times: Sequence[float]) -> bytes:
    """Pack sorted float timestamps, delta-encoded when exactly invertible.

    Collection timestamps are overwhelmingly whole numbers of seconds at a
    fixed cadence, so consecutive deltas are small integers: the packed
    form stores the first timestamp as float64 plus deltas at the
    narrowest integer width that fits.  The encoding is used only when
    ``first + cumsum(deltas)`` reproduces every input bit-exactly;
    anything else (fractional or huge timestamps) falls back to a raw
    float64 column.
    """
    arr = np.asarray(times, dtype="<f8")
    if arr.size >= 2:
        deltas = np.diff(arr)
        ints = deltas.astype("<i8", copy=True)
        # the cast truncates; candidate only when every delta is integral
        if np.array_equal(ints.astype("<f8"), deltas):
            recon = arr[0] + np.concatenate(
                ([0.0], np.cumsum(ints, dtype="<f8")))
            if np.array_equal(recon, arr):
                lo, hi = int(ints.min()), int(ints.max())
                for tag, info in _DELTA_WIDTHS:
                    if info.min <= lo and hi <= info.max:
                        dtype = _TIME_TAGS[tag][0]
                        return (tag + arr[:1].tobytes()
                                + ints.astype(dtype).tobytes())
    return b"F" + arr.tobytes()


def unpack_time_column(blob: bytes) -> List[float]:
    """Invert :func:`pack_time_column`; returns plain Python floats."""
    return unpack_time_array(blob).tolist()


def unpack_time_array(blob: bytes) -> np.ndarray:
    """Invert :func:`pack_time_column` straight into a float64 array.

    The array form is the analytics fast path: column decode without the
    list materialization (and re-boxing) ``unpack_time_column`` pays.
    """
    tag = blob[:1]
    try:
        dtype, delta = _TIME_TAGS[tag]
    except KeyError:
        raise ValueError(f"unknown time column tag {tag!r}") from None
    if not delta:
        # frombuffer views the immutable bytes; copy so callers can hold
        # the array after the segment buffer is released
        return np.frombuffer(blob, dtype="<f8", offset=1).copy()
    first = np.frombuffer(blob, dtype="<f8", count=1, offset=1)[0]
    deltas = np.frombuffer(blob, dtype=dtype, offset=9)
    return first + np.concatenate(([0.0], np.cumsum(deltas, dtype="<f8")))


#: tag -> numpy dtype for packed value/index columns
_VALUE_TAGS = {
    b"f": "<f8",  # raw float64 values
    b"i": "<i8",  # raw int64 values (plain ints only, never bools)
    b"u": "<u1",  # dictionary indices, 1 byte
    b"v": "<u2",  # dictionary indices, 2 bytes
    b"w": "<u4",  # dictionary indices, 4 bytes
}

#: int64 bounds for the raw-int value column fast path
_I8 = np.iinfo(np.int64)


def pack_float_column(values: Sequence[float]) -> bytes:
    """Raw float64 value column (NaN-safe, bit-exact round trip)."""
    return b"f" + np.asarray(values, dtype="<f8").tobytes()


def pack_int_column(values: Sequence[int]) -> bytes:
    """Raw int64 value column; caller guarantees values fit int64."""
    return b"i" + np.asarray(values, dtype="<i8").tobytes()


def int_column_fits(values: Sequence[int]) -> bool:
    """True when every (plain) int packs losslessly into int64."""
    return all(_I8.min <= v <= _I8.max for v in values)


def pack_index_column(indices: Sequence[int]) -> bytes:
    """Dictionary-index column at the narrowest unsigned width."""
    top = max(indices, default=0)
    if top < 1 << 8:
        return b"u" + np.asarray(indices, dtype="<u1").tobytes()
    if top < 1 << 16:
        return b"v" + np.asarray(indices, dtype="<u2").tobytes()
    return b"w" + np.asarray(indices, dtype="<u4").tobytes()


def unpack_value_column(blob: bytes) -> Tuple[bool, list]:
    """Invert a packed value column.

    Returns ``(is_indices, items)``: raw columns come back as typed
    Python scalars (floats or ints), index columns as plain ints the
    caller resolves against its value dictionary.
    """
    is_indices, arr = unpack_value_array(blob)
    return is_indices, arr.tolist()


def unpack_value_array(blob: bytes) -> Tuple[bool, np.ndarray]:
    """Invert a packed value column without boxing into Python scalars.

    Returns ``(is_indices, array)``: raw columns come back as float64 /
    int64 arrays, index columns as their stored unsigned index arrays
    for the caller to resolve (typically via a vectorized dictionary
    lookup table).
    """
    tag = blob[:1]
    try:
        dtype = _VALUE_TAGS[tag]
    except KeyError:
        raise ValueError(f"unknown value column tag {tag!r}") from None
    return tag not in (b"f", b"i"), \
        np.frombuffer(blob, dtype=dtype, offset=1).copy()
