"""Change-point (dedup) compression for step-valued series.

SpotLake's datasets are step functions: the placement score, the advisor
bucket and the spot price hold their value for long stretches.  Storing one
row per collection round wastes space and hides the update events the
paper's Figure 10 analyses.  The codec therefore stores only *changes*
(plus the first observation), and can reconstruct the value at any observed
instant or the full step series.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .record import Value


@dataclass
class ChangePointSeries:
    """A compressed step-valued series.

    Appends must be in non-decreasing time order.  ``observed_until`` tracks
    the last time a value was *observed* (even if unchanged), so the series
    distinguishes "no data yet" from "unchanged since".
    """

    times: List[float] = field(default_factory=list)
    values: List[Value] = field(default_factory=list)
    observed_until: float = float("-inf")
    observation_count: int = 0

    def append(self, time: float, value: Value) -> bool:
        """Record an observation; returns True when it was a change point."""
        if time < self.observed_until:
            raise ValueError(
                f"out-of-order append: {time} < {self.observed_until}")
        self.observed_until = time
        self.observation_count += 1
        if self.values and self.values[-1] == value:
            return False
        self.times.append(time)
        self.values.append(value)
        return True

    def __len__(self) -> int:
        return len(self.times)

    @property
    def is_empty(self) -> bool:
        return not self.times

    def value_at(self, time: float) -> Optional[Value]:
        """Value in force at ``time`` (None before the first observation)."""
        idx = bisect_right(self.times, time)
        if idx == 0:
            return None
        return self.values[idx - 1]

    def change_points(self, start: float = float("-inf"),
                      end: float = float("inf")) -> List[Tuple[float, Value]]:
        """Change events inside [start, end]."""
        return [(t, v) for t, v in zip(self.times, self.values)
                if start <= t <= end]

    def update_intervals(self) -> List[float]:
        """Elapsed seconds between consecutive change points (Figure 10)."""
        return [b - a for a, b in zip(self.times, self.times[1:])]

    def resample(self, sample_times: Sequence[float]) -> List[Optional[Value]]:
        """Step-function values at each of the given instants."""
        return [self.value_at(t) for t in sample_times]

    def compression_ratio(self) -> float:
        """Observations stored per observation ingested (lower is better)."""
        if self.observation_count == 0:
            return 1.0
        return len(self.times) / self.observation_count
